//! Deterministic fault injection for chaos testing detector pools.
//!
//! Production zoos treat detector failure as routine: a model may panic,
//! emit NaN scores, or silently take 50x its forecast cost. Exercising
//! the orchestrator's quarantine / retry / straggler paths in tests
//! requires failures that are **injected on purpose and reproducible**
//! bit-for-bit — a flaky test of the fault-tolerance layer would defeat
//! its own point.
//!
//! [`ChaosDetector`] wraps any inner [`Detector`] and injects failures
//! according to a [`ChaosConfig`] of per-channel rates. Every injection
//! decision is a pure function of `(seed, channel)` via splitmix64 — no
//! global state, no clocks — so the same seed always produces the same
//! failure pattern regardless of thread count or execution order.
//!
//! The high-level [`ChaosMode`] enum covers the common test shapes
//! (always panic, panic-on-even-seed for retry tests, NaN scores, slow
//! fit, plus the predict-time panic/slow/NaN variants the serving layer's
//! quarantine machinery is tested against) and maps onto rate configs via
//! [`ChaosDetector::from_mode`].

use crate::{Detector, FitContext, Result};
use suod_linalg::Matrix;

/// splitmix64 finalizer: uncorrelated 64-bit stream from seed + channel.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level fault shapes for tests; see [`ChaosDetector::from_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChaosMode {
    /// Inject nothing: behaves exactly like the wrapped detector. The
    /// control arm of chaos experiments.
    Passthrough,
    /// Panic unconditionally during `fit`.
    PanicOnFit,
    /// Panic during `fit` iff the seed is even. Retrying with an
    /// odd-salted seed then succeeds deterministically — the shape the
    /// bounded-retry path needs.
    FlakyPanic,
    /// Fit succeeds but every score (training and query) is NaN.
    NanScores,
    /// Sleep the given number of milliseconds before fitting — a
    /// deterministic straggler.
    SlowFit(u64),
    /// Fit succeeds with clean training scores, but every
    /// `decision_function` call panics — the serve-time fault the
    /// predict-phase quarantine machinery must score around.
    PanicOnPredict,
    /// Fit succeeds with clean training scores, but every
    /// `decision_function` call sleeps the given number of milliseconds
    /// first — a deterministic predict-time straggler for the serving
    /// layer's timeout watchdog.
    SlowPredict(u64),
    /// Fit succeeds with clean training scores, but every
    /// `decision_function` call returns all-NaN query scores. Unlike
    /// [`ChaosMode::NanScores`] the model survives fit-time quarantine
    /// and only degrades at predict time.
    NanOnPredict,
}

/// Per-channel injection rates, each decided by a seeded hash.
///
/// Rates are probabilities in `[0, 1]`: `0.0` never triggers, `1.0`
/// always does, and anything between triggers for that fraction of seeds
/// (deterministically per seed — re-running with the same seed gives the
/// same decision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability of panicking during `fit`.
    pub panic_rate: f64,
    /// Probability that all emitted scores are NaN.
    pub nan_score_rate: f64,
    /// Probability of sleeping [`slow_millis`](Self::slow_millis) before
    /// fitting.
    pub slow_rate: f64,
    /// Sleep duration for triggered slowdowns, in milliseconds.
    pub slow_millis: u64,
    /// Probability of panicking during `decision_function` (fit stays
    /// clean).
    pub predict_panic_rate: f64,
    /// Probability that `decision_function` scores are NaN while
    /// training scores stay clean.
    pub predict_nan_rate: f64,
    /// Probability of sleeping [`slow_millis`](Self::slow_millis) at the
    /// start of every `decision_function` call.
    pub predict_slow_rate: f64,
    /// Seed all injection decisions derive from.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            panic_rate: 0.0,
            nan_score_rate: 0.0,
            slow_rate: 0.0,
            slow_millis: 0,
            predict_panic_rate: 0.0,
            predict_nan_rate: 0.0,
            predict_slow_rate: 0.0,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// Whether the channel with the given salt triggers under `rate`.
    fn triggers(&self, salt: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(self.seed ^ salt);
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }
}

const PANIC_SALT: u64 = 0xC0A5_7A11_0001;
const NAN_SALT: u64 = 0xC0A5_7A11_0002;
const SLOW_SALT: u64 = 0xC0A5_7A11_0003;
const PREDICT_PANIC_SALT: u64 = 0xC0A5_7A11_0004;
const PREDICT_NAN_SALT: u64 = 0xC0A5_7A11_0005;
const PREDICT_SLOW_SALT: u64 = 0xC0A5_7A11_0006;

/// Wraps a detector and injects deterministic, seeded failures.
///
/// See the [module docs](self). All injection decisions are resolved
/// from the config at construction time, so a `ChaosDetector` is as
/// deterministic as its inner detector.
pub struct ChaosDetector {
    inner: Box<dyn Detector>,
    panic_on_fit: bool,
    nan_scores: bool,
    slow_millis: u64,
    panic_on_predict: bool,
    nan_on_predict: bool,
    predict_slow_millis: u64,
    seed: u64,
}

impl std::fmt::Debug for ChaosDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosDetector")
            .field("inner", &self.inner.name())
            .field("panic_on_fit", &self.panic_on_fit)
            .field("nan_scores", &self.nan_scores)
            .field("slow_millis", &self.slow_millis)
            .field("panic_on_predict", &self.panic_on_predict)
            .field("nan_on_predict", &self.nan_on_predict)
            .field("predict_slow_millis", &self.predict_slow_millis)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ChaosDetector {
    /// Wraps `inner`, resolving each injection channel from `config`.
    pub fn new(inner: Box<dyn Detector>, config: ChaosConfig) -> Self {
        let panic_on_fit = config.triggers(PANIC_SALT, config.panic_rate);
        let nan_scores = config.triggers(NAN_SALT, config.nan_score_rate);
        let slow_millis = if config.triggers(SLOW_SALT, config.slow_rate) {
            config.slow_millis
        } else {
            0
        };
        let panic_on_predict = config.triggers(PREDICT_PANIC_SALT, config.predict_panic_rate);
        let nan_on_predict = config.triggers(PREDICT_NAN_SALT, config.predict_nan_rate);
        let predict_slow_millis = if config.triggers(PREDICT_SLOW_SALT, config.predict_slow_rate) {
            config.slow_millis
        } else {
            0
        };
        ChaosDetector {
            inner,
            panic_on_fit,
            nan_scores,
            slow_millis,
            panic_on_predict,
            nan_on_predict,
            predict_slow_millis,
            seed: config.seed,
        }
    }

    /// Wraps `inner` with one of the high-level [`ChaosMode`] shapes.
    ///
    /// `seed` only matters for [`ChaosMode::FlakyPanic`] (panics iff the
    /// seed is even) but is always recorded for panic messages.
    pub fn from_mode(inner: Box<dyn Detector>, mode: ChaosMode, seed: u64) -> Self {
        let config = match mode {
            ChaosMode::Passthrough => ChaosConfig {
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::PanicOnFit => ChaosConfig {
                panic_rate: 1.0,
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::FlakyPanic => ChaosConfig {
                panic_rate: if seed.is_multiple_of(2) { 1.0 } else { 0.0 },
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::NanScores => ChaosConfig {
                nan_score_rate: 1.0,
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::SlowFit(millis) => ChaosConfig {
                slow_rate: 1.0,
                slow_millis: millis,
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::PanicOnPredict => ChaosConfig {
                predict_panic_rate: 1.0,
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::SlowPredict(millis) => ChaosConfig {
                predict_slow_rate: 1.0,
                slow_millis: millis,
                seed,
                ..ChaosConfig::default()
            },
            ChaosMode::NanOnPredict => ChaosConfig {
                predict_nan_rate: 1.0,
                seed,
                ..ChaosConfig::default()
            },
        };
        ChaosDetector::new(inner, config)
    }

    /// `true` when the panic channel is armed for this instance.
    pub fn will_panic(&self) -> bool {
        self.panic_on_fit
    }

    /// `true` when the NaN-score channel is armed for this instance.
    pub fn will_emit_nan(&self) -> bool {
        self.nan_scores
    }

    /// `true` when the predict-time panic channel is armed.
    pub fn will_panic_on_predict(&self) -> bool {
        self.panic_on_predict
    }

    /// `true` when query scores (but not training scores) will be NaN.
    pub fn will_emit_nan_on_predict(&self) -> bool {
        self.nan_on_predict
    }

    fn inject_pre_fit(&self) {
        if self.slow_millis > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.slow_millis));
        }
        if self.panic_on_fit {
            panic!("chaos: injected fit panic (seed {})", self.seed);
        }
    }

    fn inject_pre_predict(&self) {
        if self.predict_slow_millis > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.predict_slow_millis));
        }
        if self.panic_on_predict {
            panic!("chaos: injected predict panic (seed {})", self.seed);
        }
    }

    fn poison(&self, scores: Vec<f64>) -> Vec<f64> {
        if self.nan_scores {
            vec![f64::NAN; scores.len()]
        } else {
            scores
        }
    }

    fn poison_predict(&self, scores: Vec<f64>) -> Vec<f64> {
        if self.nan_on_predict {
            vec![f64::NAN; scores.len()]
        } else {
            self.poison(scores)
        }
    }
}

impl Detector for ChaosDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.inject_pre_fit();
        self.inner.fit(x)
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        self.inject_pre_fit();
        self.inner.fit_with_context(x, ctx)
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        self.inject_pre_predict();
        self.inner
            .decision_function(x)
            .map(|s| self.poison_predict(s))
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        self.inner.training_scores().map(|s| self.poison(s))
    }

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn is_fitted(&self) -> bool {
        self.inner.is_fitted()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        // Injection decisions are resolved at construction, so the
        // serialized form is the *resolved* plan plus the wrapped
        // detector — a reloaded chaos model misbehaves identically.
        w.write_bool(self.panic_on_fit);
        w.write_bool(self.nan_scores);
        w.write_u64(self.slow_millis);
        w.write_bool(self.panic_on_predict);
        w.write_bool(self.nan_on_predict);
        w.write_u64(self.predict_slow_millis);
        w.write_u64(self.seed);
        crate::write_detector(self.inner.as_ref(), w)
    }
}

impl ChaosDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`suod_linalg::Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        let panic_on_fit = r.read_bool()?;
        let nan_scores = r.read_bool()?;
        let slow_millis = r.read_u64()?;
        let panic_on_predict = r.read_bool()?;
        let nan_on_predict = r.read_bool()?;
        let predict_slow_millis = r.read_u64()?;
        let seed = r.read_u64()?;
        let inner = crate::read_detector(r, n_threads)?;
        Ok(Self {
            inner,
            panic_on_fit,
            nan_scores,
            slow_millis,
            panic_on_predict,
            nan_on_predict,
            predict_slow_millis,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Error as DetError, HbosDetector};

    fn data() -> Matrix {
        Matrix::from_rows(
            &(0..24)
                .map(|i| vec![i as f64 * 0.25, (i % 5) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn inner() -> Box<dyn Detector> {
        Box::new(HbosDetector::new(5, 0.5).unwrap())
    }

    #[test]
    fn passthrough_matches_inner() {
        let x = data();
        let mut plain = HbosDetector::new(5, 0.5).unwrap();
        plain.fit(&x).unwrap();
        let mut wrapped = ChaosDetector::from_mode(inner(), ChaosMode::Passthrough, 7);
        wrapped.fit(&x).unwrap();
        assert_eq!(
            plain.training_scores().unwrap(),
            wrapped.training_scores().unwrap()
        );
        assert_eq!(wrapped.name(), "chaos");
        assert!(wrapped.is_fitted());
    }

    #[test]
    #[should_panic(expected = "chaos: injected fit panic")]
    fn panic_mode_panics_on_fit() {
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::PanicOnFit, 1);
        let _ = det.fit(&data());
    }

    #[test]
    fn flaky_panics_iff_seed_even() {
        assert!(ChaosDetector::from_mode(inner(), ChaosMode::FlakyPanic, 4).will_panic());
        assert!(!ChaosDetector::from_mode(inner(), ChaosMode::FlakyPanic, 5).will_panic());
    }

    #[test]
    fn nan_mode_poisons_all_scores() {
        let x = data();
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::NanScores, 3);
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_nan()));
        assert!(det
            .decision_function(&x)
            .unwrap()
            .iter()
            .all(|v| v.is_nan()));
    }

    #[test]
    fn slow_mode_delays_fit() {
        let x = data();
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::SlowFit(30), 3);
        let start = std::time::Instant::now();
        det.fit(&x).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn rate_decisions_are_deterministic_per_seed() {
        let decide = |seed| {
            let config = ChaosConfig {
                panic_rate: 0.5,
                seed,
                ..ChaosConfig::default()
            };
            ChaosDetector::new(inner(), config).will_panic()
        };
        let first: Vec<bool> = (0..64).map(decide).collect();
        let second: Vec<bool> = (0..64).map(decide).collect();
        assert_eq!(first, second);
        // A 0.5 rate over 64 seeds should trigger at least once each way.
        assert!(first.iter().any(|&b| b));
        assert!(first.iter().any(|&b| !b));
    }

    #[test]
    fn predict_panic_mode_fits_cleanly_then_panics_on_predict() {
        let x = data();
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::PanicOnPredict, 9);
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
        assert!(det.will_panic_on_predict());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = det.decision_function(&x);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn predict_nan_mode_keeps_training_scores_clean() {
        let x = data();
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::NanOnPredict, 9);
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
        assert!(det
            .decision_function(&x)
            .unwrap()
            .iter()
            .all(|v| v.is_nan()));
    }

    #[test]
    fn predict_slow_mode_delays_scoring_not_fit() {
        let x = data();
        let mut det = ChaosDetector::from_mode(inner(), ChaosMode::SlowPredict(30), 9);
        let fit_start = std::time::Instant::now();
        det.fit(&x).unwrap();
        assert!(fit_start.elapsed() < std::time::Duration::from_millis(25));
        let start = std::time::Instant::now();
        det.decision_function(&x).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn unfitted_wrapper_propagates_not_fitted() {
        let det = ChaosDetector::from_mode(inner(), ChaosMode::Passthrough, 0);
        assert!(matches!(det.training_scores(), Err(DetError::NotFitted(_))));
    }
}
