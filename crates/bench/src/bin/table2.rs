//! Table 2 + Table C.1 reproduction: prediction quality of unsupervised
//! models (Orig) vs their pseudo-supervised approximators (Appr).
//!
//! Six costly algorithms × ten datasets, 60/40 train/validation split,
//! metrics averaged over independent trials. Table 2 reports ROC, Table
//! C.1 reports P@N; this binary emits both.
//!
//! Flags: `--quick`, `--paper-scale`.

use suod::prelude::*;
use suod_bench::{mean, CsvSink, Scale};
use suod_datasets::{registry, train_test_split};
use suod_metrics::{precision_at_n, roc_auc};
use suod_supervised::{RandomForestRegressor, Regressor};

const DATASETS: &[&str] = &[
    "annthyroid",
    "breastw",
    "cardio",
    "http",
    "mnist",
    "pendigits",
    "pima",
    "satellite",
    "satimage-2",
    "thyroid",
];

fn algorithms() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("abod", ModelSpec::Abod { n_neighbors: 10 }),
        ("cblof", ModelSpec::Cblof { n_clusters: 8 }),
        ("fb", ModelSpec::FeatureBagging { n_estimators: 10 }),
        (
            "knn",
            ModelSpec::Knn {
                n_neighbors: 10,
                method: KnnMethod::Largest,
            },
        ),
        (
            "aknn",
            ModelSpec::Knn {
                n_neighbors: 10,
                method: KnnMethod::Mean,
            },
        ),
        (
            "lof",
            ModelSpec::Lof {
                n_neighbors: 10,
                metric: Metric::Euclidean,
            },
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    // http is half a million rows in the paper; scale it harder.
    let base_scale = scale.pick(0.03, 0.15, 1.0);
    let n_trials = scale.pick(1usize, 3, 10);
    let mut csv = CsvSink::create(
        "table2",
        "algorithm,dataset,orig_roc,appr_roc,orig_pan,appr_pan",
    );

    println!("Table 2 / C.1: Orig vs Appr prediction quality ({n_trials} trials, 60/40 split)");
    for (alg_name, spec) in algorithms() {
        println!("\n== {alg_name} ==");
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9}",
            "dataset", "ROC orig", "ROC appr", "P@N orig", "P@N appr"
        );
        for ds_name in DATASETS {
            let extra: f64 = if *ds_name == "http" { 0.02 } else { 1.0 };
            let ds = match registry::load_scaled(ds_name, 11, (base_scale * extra).min(1.0)) {
                Ok(ds) => ds,
                Err(e) => {
                    eprintln!("skipping {ds_name}: {e}");
                    continue;
                }
            };
            let mut roc_o = Vec::new();
            let mut roc_a = Vec::new();
            let mut pan_o = Vec::new();
            let mut pan_a = Vec::new();
            for trial in 0..n_trials {
                let seed = 31 * trial as u64 + 5;
                let split = train_test_split(&ds, 0.4, seed).expect("valid split");

                let mut det = spec.build(seed).expect("valid spec");
                if det.fit(&split.x_train).is_err() {
                    continue;
                }
                let truth = det.training_scores().expect("fitted");
                let orig_scores = det
                    .decision_function(&split.x_test)
                    .expect("scoring fitted detector");

                let mut rf = RandomForestRegressor::new(50, seed).with_max_depth(12);
                rf.fit(&split.x_train, &truth).expect("approximator fit");
                let appr_scores = rf.predict(&split.x_test).expect("approximator predict");

                if let (Ok(ro), Ok(ra)) = (
                    roc_auc(&split.y_test, &orig_scores),
                    roc_auc(&split.y_test, &appr_scores),
                ) {
                    roc_o.push(ro);
                    roc_a.push(ra);
                }
                if let (Ok(po), Ok(pa)) = (
                    precision_at_n(&split.y_test, &orig_scores, None),
                    precision_at_n(&split.y_test, &appr_scores, None),
                ) {
                    pan_o.push(po);
                    pan_a.push(pa);
                }
            }
            let (ro, ra, po, pa) = (mean(&roc_o), mean(&roc_a), mean(&pan_o), mean(&pan_a));
            println!("{ds_name:<12} {ro:>9.3} {ra:>9.3} {po:>9.3} {pa:>9.3}");
            csv.row(&format!(
                "{alg_name},{ds_name},{ro:.4},{ra:.4},{po:.4},{pa:.4}"
            ));
        }
    }
    println!("\nwrote {}", csv.path().display());
    println!("(expected shape: Appr within a few points of Orig, often above it");
    println!(" for kNN/akNN/LOF; ABOD is the family that may lose ground.)");
}
