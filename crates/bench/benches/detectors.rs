//! Criterion micro-benchmarks: detector fit and predict throughput.
//!
//! Quantifies the per-family cost asymmetry that motivates both PSA (slow
//! predictors get approximated) and BPS (heterogeneous fit costs need
//! balanced scheduling).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use suod::prelude::*;
use suod_datasets::synthetic::{generate, SyntheticConfig};

fn dataset() -> Matrix {
    generate(&SyntheticConfig {
        n_samples: 300,
        n_features: 10,
        contamination: 0.1,
        seed: 5,
        ..Default::default()
    })
    .expect("valid config")
    .x
}

fn specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "knn",
            ModelSpec::Knn {
                n_neighbors: 10,
                method: KnnMethod::Largest,
            },
        ),
        (
            "lof",
            ModelSpec::Lof {
                n_neighbors: 10,
                metric: Metric::Euclidean,
            },
        ),
        ("abod", ModelSpec::Abod { n_neighbors: 10 }),
        (
            "hbos",
            ModelSpec::Hbos {
                n_bins: 20,
                tolerance: 0.3,
            },
        ),
        (
            "iforest",
            ModelSpec::IForest {
                n_estimators: 50,
                max_features: 0.8,
            },
        ),
        ("cblof", ModelSpec::Cblof { n_clusters: 5 }),
    ]
}

fn bench_fit(c: &mut Criterion) {
    let x = dataset();
    let mut group = c.benchmark_group("detector_fit_300x10");
    group.sample_size(10);
    for (name, spec) in specs() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || spec.build(1).expect("valid spec"),
                |mut det| {
                    det.fit(black_box(&x)).expect("fit");
                    det
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let x = dataset();
    let mut group = c.benchmark_group("detector_predict_300x10");
    group.sample_size(10);
    for (name, spec) in specs() {
        let mut det = spec.build(1).expect("valid spec");
        det.fit(&x).expect("fit");
        group.bench_function(name, |b| {
            b.iter(|| det.decision_function(black_box(&x)).expect("score"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
