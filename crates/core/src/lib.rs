#![warn(missing_docs)]

//! # SUOD: Scalable Unsupervised Outlier Detection (Rust reproduction)
//!
//! A from-scratch Rust implementation of **SUOD — Accelerating Large-Scale
//! Unsupervised Heterogeneous Outlier Detection** (MLSys 2021): a
//! three-module acceleration system for training and predicting with large
//! pools of heterogeneous unsupervised outlier detectors.
//!
//! The three independent, composable modules (paper §3):
//!
//! 1. **Random Projection** (data level, §3.3) — each base detector trains
//!    in its own Johnson–Lindenstrauss subspace, cutting dimensionality
//!    while preserving pairwise distances and injecting ensemble
//!    diversity. Subspace-based families (Isolation Forest, HBOS) are
//!    exempted, as the paper advises.
//! 2. **Pseudo-Supervised Approximation** (model level, §3.4) — after
//!    fitting, each *costly* detector's decision boundary is distilled
//!    into a fast supervised regressor (random forest by default) trained
//!    on the detector's own training scores, which then serves
//!    predictions on new samples.
//! 3. **Balanced Parallel Scheduling** (execution level, §3.5) — a cost
//!    model forecasts per-detector cost and tasks are assigned to workers
//!    by balanced discounted-rank sums instead of naive contiguous
//!    chunking.
//!
//! # Quickstart
//!
//! The API mirrors the paper's scikit-learn-style demo (initialize with a
//! pool of base estimators and module flags, then `fit` /
//! `decision_function` / `predict`):
//!
//! ```
//! use suod::prelude::*;
//!
//! # fn main() -> Result<(), suod::Error> {
//! let ds = suod_datasets::registry::load_scaled("cardio", 42, 0.1).unwrap();
//!
//! let base_estimators = vec![
//!     ModelSpec::Lof { n_neighbors: 10, metric: Metric::Euclidean },
//!     ModelSpec::Knn { n_neighbors: 10, method: KnnMethod::Largest },
//!     ModelSpec::Hbos { n_bins: 10, tolerance: 0.3 },
//!     ModelSpec::IForest { n_estimators: 30, max_features: 1.0 },
//! ];
//! let mut clf = Suod::builder()
//!     .base_estimators(base_estimators)
//!     .with_projection(true)
//!     .with_approximation(true)
//!     .with_bps(true)
//!     .n_workers(2)
//!     .seed(7)
//!     .build()?;
//!
//! clf.fit(&ds.x)?;
//! let scores = clf.decision_function(&ds.x)?;   // n x m score matrix
//! let combined = clf.combined_scores(&ds.x)?;   // averaged ensemble score
//! let labels = clf.predict(&ds.x)?;             // thresholded 0/1 labels
//! assert_eq!(scores.nrows(), ds.n_samples());
//! assert_eq!(combined.len(), labels.len());
//! # Ok(())
//! # }
//! ```

pub mod diagnostics;
pub mod grid;
pub mod health;
pub mod lscp;
pub mod pseudo;
pub mod snapshot;
pub mod spec;
pub mod streaming;
pub mod suod;
pub mod xgbod;

pub use crate::snapshot::{SNAPSHOT_FORMAT, SNAPSHOT_VERSION};
pub use crate::suod::{Suod, SuodBuilder};
pub use diagnostics::{
    CpuFeatures, FitDiagnostics, ModelDiagnostics, PredictFailure, PredictReport,
};
pub use grid::{full_grid, random_pool};
pub use health::{ModelHealth, ModelReport, ModelStatus};
pub use lscp::{lscp_scores, LscpConfig, LscpVariant};
pub use pseudo::ApproxSpec;
pub use spec::ModelSpec;
pub use streaming::StreamingSuod;
pub use xgbod::Xgbod;

/// The observability layer, re-exported so downstream code can attach
/// observers and export traces without a separate dependency on
/// `suod-observe`.
pub use suod_observe as observe;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::diagnostics::{
        CpuFeatures, FitDiagnostics, ModelDiagnostics, PredictFailure, PredictReport,
    };
    pub use crate::health::{ModelHealth, ModelReport, ModelStatus};
    pub use crate::pseudo::ApproxSpec;
    pub use crate::spec::ModelSpec;
    pub use crate::suod::{Suod, SuodBuilder};
    pub use suod_detectors::ChaosMode;
    pub use suod_detectors::{Kernel, KnnMethod};
    pub use suod_linalg::DistanceMetric as Metric;
    pub use suod_linalg::Matrix;
    pub use suod_linalg::{
        DistanceBackend, HnswParams, KernelConfig, NeighborBackend, Precision, SimdLane,
    };
    pub use suod_observe::{NoopObserver, Observer, RecordingObserver};
    pub use suod_projection::JlVariant;
}

use std::fmt;

/// Errors produced by the SUOD estimator.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Configuration was invalid (empty pool, bad fractions, ...).
    InvalidConfig(String),
    /// `decision_function`/`predict` called before `fit`.
    NotFitted,
    /// A base detector failed.
    Detector(suod_detectors::Error),
    /// A projector failed.
    Projection(suod_projection::Error),
    /// An approximation regressor failed.
    Approximation(suod_supervised::Error),
    /// The scheduler failed.
    Scheduler(suod_scheduler::Error),
    /// A matrix operation failed.
    Linalg(suod_linalg::Error),
    /// Score combination failed.
    Metrics(suod_metrics::Error),
    /// Too few models survived fit for the ensemble to be trusted: fewer
    /// than `ceil(min_healthy_fraction * pool size)` models escaped
    /// quarantine. The fitted state is discarded; the per-model health
    /// report remains available via `Suod::diagnostics`.
    PoolDegraded {
        /// Models that fitted successfully.
        healthy: usize,
        /// Configured pool size.
        total: usize,
        /// Minimum survivors required by `min_healthy_fraction`.
        required: usize,
        /// The first quarantined model's failure cause.
        cause: suod_detectors::Error,
    },
    /// A snapshot's stored integrity signature does not match the
    /// signature recomputed over its payload: the bytes were truncated
    /// or modified after `save`. Loading never panics on corrupt input.
    SnapshotCorrupt {
        /// Signature stored in the snapshot header.
        expected: String,
        /// Signature recomputed over the payload actually read.
        actual: String,
    },
    /// The bytes are not a `suod-pool` snapshot this build understands
    /// (wrong magic, or a format version newer than
    /// [`SNAPSHOT_VERSION`]).
    SnapshotFormat(String),
    /// Reading or writing the snapshot file failed at the OS level.
    SnapshotIo(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid SUOD configuration: {msg}"),
            Error::NotFitted => write!(f, "SUOD must be fitted before prediction"),
            Error::Detector(e) => write!(f, "detector error: {e}"),
            Error::Projection(e) => write!(f, "projection error: {e}"),
            Error::Approximation(e) => write!(f, "approximation error: {e}"),
            Error::Scheduler(e) => write!(f, "scheduler error: {e}"),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::Metrics(e) => write!(f, "metrics error: {e}"),
            Error::PoolDegraded {
                healthy,
                total,
                required,
                cause,
            } => write!(
                f,
                "ensemble degraded below min_healthy_fraction: {healthy}/{total} models \
                 healthy, {required} required (first failure: {cause})"
            ),
            Error::SnapshotCorrupt { expected, actual } => write!(
                f,
                "snapshot integrity check failed: header signature {expected}, \
                 payload hashes to {actual}"
            ),
            Error::SnapshotFormat(msg) => write!(f, "unsupported snapshot format: {msg}"),
            Error::SnapshotIo(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Detector(e) => Some(e),
            Error::Projection(e) => Some(e),
            Error::Approximation(e) => Some(e),
            Error::Scheduler(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Metrics(e) => Some(e),
            Error::PoolDegraded { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<suod_detectors::Error> for Error {
    fn from(e: suod_detectors::Error) -> Self {
        Error::Detector(e)
    }
}
impl From<suod_projection::Error> for Error {
    fn from(e: suod_projection::Error) -> Self {
        Error::Projection(e)
    }
}
impl From<suod_supervised::Error> for Error {
    fn from(e: suod_supervised::Error) -> Self {
        Error::Approximation(e)
    }
}
impl From<suod_scheduler::Error> for Error {
    fn from(e: suod_scheduler::Error) -> Self {
        Error::Scheduler(e)
    }
}
impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}
impl From<suod_metrics::Error> for Error {
    fn from(e: suod_metrics::Error) -> Self {
        Error::Metrics(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
