//! The `suod-wire/1` binary wire protocol.
//!
//! The serving front end's framed request/response format — hand-rolled
//! and dependency-free in the style of the `suod-pool/1` snapshot
//! format. Scores cross the wire as raw little-endian `f64` bits, so a
//! client reads back **exactly** the bytes `decision_function` produced:
//! no float formatting, no parsing, no round-trip loss. Frames are
//! length-prefixed and carry a client-chosen request id, so many
//! requests can pipeline over one keep-alive connection and each
//! response names the request it answers.
//!
//! # Frame layout
//!
//! ```text
//! 4 bytes   magic b"SWIR"
//! u8        version (1)
//! u8        frame type
//! u64 LE    request id (echoed verbatim in the response)
//! u32 LE    body length in bytes
//! [body]
//! ```
//!
//! Request body (`FRAME_REQUEST`):
//!
//! ```text
//! u8        lane (0 = normal, 1 = high priority)
//! u8        deadline flag (0 = none, 1 = present)
//! u64 LE    deadline budget in ms (only when the flag is 1)
//! u32 LE    n_rows · u32 LE n_cols
//! n_rows x n_cols f64 LE   row-major feature payload
//! ```
//!
//! Response bodies:
//!
//! * `FRAME_OK` — `u32 n_scores · n_scores x f64 LE · u32 healthy ·
//!   u32 total · u64 latency_ms`
//! * `FRAME_BUSY` — `u32 capacity · u8 reason (0 = queue, 1 = quota,
//!   2 = lane)`
//! * `FRAME_SHED` — `u64 waited_ms · u64 deadline_ms`
//! * `FRAME_ERROR` — `u32 msg_len · UTF-8 bytes`
//!
//! Every multi-byte integer is little-endian. Decoding is strict: a bad
//! magic, unknown version, unknown frame type, truncated body, or
//! trailing body bytes is a typed [`WireError::Malformed`], never a
//! panic — and never trusted enough to keep reading the stream.

use std::io::{self, Read, Write};
use suod_linalg::Matrix;

/// Leading magic bytes of every `suod-wire` frame.
pub const WIRE_MAGIC: &[u8; 4] = b"SWIR";

/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Human-readable protocol name (magic + version), printed by the CLI.
pub const WIRE_FORMAT: &str = "suod-wire/1";

/// Upper bound on a frame body — a sanity guard so a corrupt or hostile
/// length prefix can never ask the server for an absurd allocation.
/// 1 GiB comfortably fits any realistic score batch (a 1024-row x
/// 16k-feature request is 128 MiB).
pub const MAX_FRAME_BODY: u32 = 1 << 30;

/// Frame type tags. Requests use the low range, responses the high bit.
pub const FRAME_REQUEST: u8 = 0x01;
/// Response: scored.
pub const FRAME_OK: u8 = 0x81;
/// Response: turned away at admission (queue, quota, or lane).
pub const FRAME_BUSY: u8 = 0x82;
/// Response: shed at batch assembly after the deadline expired.
pub const FRAME_SHED: u8 = 0x83;
/// Response: request-level failure, answered in-band.
pub const FRAME_ERROR: u8 = 0x84;

/// Admission lane a request rides in. The high lane keeps being
/// admitted after queue occupancy crosses the normal lane's headroom —
/// the two-lane overload policy (see `suod_serve::lanes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Best-effort traffic: turned away first under overload.
    #[default]
    Normal,
    /// Priority traffic: admitted up to the queue's full capacity.
    High,
}

impl Lane {
    fn tag(self) -> u8 {
        match self {
            Lane::Normal => 0,
            Lane::High => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(Lane::Normal),
            1 => Ok(Lane::High),
            other => Err(WireError::Malformed(format!("unknown lane tag {other}"))),
        }
    }

    /// Stable CLI/debug spelling.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Normal => "normal",
            Lane::High => "high",
        }
    }
}

/// Why a wire request was answered `busy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The service's bounded admission queue was full.
    Queue,
    /// The client identity was already at its in-flight quota.
    Quota,
    /// A normal-lane request arrived past the lane headroom.
    Lane,
}

impl BusyReason {
    fn tag(self) -> u8 {
        match self {
            BusyReason::Queue => 0,
            BusyReason::Quota => 1,
            BusyReason::Lane => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(BusyReason::Queue),
            1 => Ok(BusyReason::Quota),
            2 => Ok(BusyReason::Lane),
            other => Err(WireError::Malformed(format!(
                "unknown busy reason tag {other}"
            ))),
        }
    }

    /// Stable debug spelling.
    pub fn name(self) -> &'static str {
        match self {
            BusyReason::Queue => "queue",
            BusyReason::Quota => "quota",
            BusyReason::Lane => "lane",
        }
    }
}

/// One framed score request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen id echoed verbatim in the response frame.
    pub id: u64,
    /// Admission lane.
    pub lane: Lane,
    /// Optional per-request deadline budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Feature rows to score.
    pub rows: Matrix,
}

/// One framed response.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Scores plus the batch-health summary the text protocol never had.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Combined ensemble score per submitted row (exact bits).
        scores: Vec<f64>,
        /// Models that produced usable columns for the carrying batch.
        healthy_models: u32,
        /// Models in the served ensemble.
        total_models: u32,
        /// Admission-to-response latency in service-clock ms.
        latency_ms: u64,
    },
    /// Turned away at admission; retry later.
    Busy {
        /// Echoed request id.
        id: u64,
        /// The admission-queue capacity in force.
        capacity: u32,
        /// Which admission gate said no.
        reason: BusyReason,
    },
    /// Shed at batch assembly because the deadline had already passed.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Milliseconds the request waited before being dropped.
        waited_ms: u64,
        /// The deadline budget it was admitted with.
        deadline_ms: u64,
    },
    /// Request-level failure, answered in-band (the connection stays
    /// usable unless the error was a framing fault).
    Error {
        /// Echoed request id.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
}

impl WireResponse {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            WireResponse::Ok { id, .. }
            | WireResponse::Busy { id, .. }
            | WireResponse::Shed { id, .. }
            | WireResponse::Error { id, .. } => *id,
        }
    }
}

/// Errors surfaced by the wire codec.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes read/write timeouts).
    Io(io::Error),
    /// The bytes violated the `suod-wire/1` framing. The stream can no
    /// longer be trusted and should be closed.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(msg) => write!(f, "malformed {WIRE_FORMAT} frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` when the error is a read timeout — the signal the server's
    /// keep-alive loop uses to tell an idle client from a dead one.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

// ---------------------------------------------------------------------
// Little-endian body builders/readers. The body is assembled in memory
// and written with one `write_all`, so a frame is never interleaved
// with another thread's bytes and short writes cannot tear it.
// ---------------------------------------------------------------------

struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn new() -> Self {
        BodyWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64s(&mut self, v: &[f64]) {
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError::Malformed(format!(
                    "body truncated: wanted {n} bytes at offset {}, body is {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing body bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn write_frame<W: Write>(w: &mut W, frame_type: u8, id: u64, body: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(4 + 1 + 1 + 8 + 4 + body.len());
    frame.extend_from_slice(WIRE_MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(frame_type);
    frame.extend_from_slice(&id.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Reads one frame header + body. `Ok(None)` is a clean EOF *before any
/// header byte* — the peer closed its keep-alive connection between
/// requests. EOF mid-frame is [`WireError::Malformed`].
fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, u64, Vec<u8>)>, WireError> {
    let mut header = [0u8; 4 + 1 + 1 + 8 + 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "eof after {filled} header bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if &header[..4] != WIRE_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad magic {:02x?} (expected {WIRE_MAGIC:02x?})",
            &header[..4]
        )));
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported version {} (this build speaks {WIRE_VERSION})",
            header[4]
        )));
    }
    let frame_type = header[5];
    let id = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let body_len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
    if body_len > MAX_FRAME_BODY {
        return Err(WireError::Malformed(format!(
            "body length {body_len} exceeds the {MAX_FRAME_BODY}-byte cap"
        )));
    }
    let mut body = vec![0u8; body_len as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => WireError::Malformed("eof inside frame body".to_string()),
        _ => WireError::Io(e),
    })?;
    Ok(Some((frame_type, id, body)))
}

/// Encodes and writes one request frame.
///
/// # Errors
///
/// Propagates stream I/O failures.
pub fn write_request<W: Write>(w: &mut W, request: &WireRequest) -> io::Result<()> {
    let mut body = BodyWriter::new();
    body.u8(request.lane.tag());
    match request.deadline_ms {
        None => body.u8(0),
        Some(ms) => {
            body.u8(1);
            body.u64(ms);
        }
    }
    body.u32(request.rows.nrows() as u32);
    body.u32(request.rows.ncols() as u32);
    body.f64s(request.rows.as_slice());
    write_frame(w, FRAME_REQUEST, request.id, &body.buf)
}

/// Reads one request frame. `Ok(None)` on clean EOF between frames.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure (including read timeouts — see
/// [`WireError::is_timeout`]); [`WireError::Malformed`] when the bytes
/// violate the framing, after which the stream should be closed.
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<WireRequest>, WireError> {
    let Some((frame_type, id, body)) = read_frame(r)? else {
        return Ok(None);
    };
    if frame_type != FRAME_REQUEST {
        return Err(WireError::Malformed(format!(
            "expected a request frame, got type {frame_type:#04x}"
        )));
    }
    let mut body = BodyReader::new(&body);
    let lane = Lane::from_tag(body.u8()?)?;
    let deadline_ms = match body.u8()? {
        0 => None,
        1 => Some(body.u64()?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown deadline flag {other}"
            )))
        }
    };
    let n_rows = body.u32()? as usize;
    let n_cols = body.u32()? as usize;
    let expected = n_rows
        .checked_mul(n_cols)
        .filter(|&cells| cells * 8 <= MAX_FRAME_BODY as usize)
        .ok_or_else(|| {
            WireError::Malformed(format!("implausible payload shape {n_rows} x {n_cols}"))
        })?;
    let data = body.f64s(expected)?;
    body.finish()?;
    let rows = Matrix::from_vec(n_rows, n_cols, data)
        .map_err(|e| WireError::Malformed(format!("payload is not a matrix: {e}")))?;
    Ok(Some(WireRequest {
        id,
        lane,
        deadline_ms,
        rows,
    }))
}

/// Encodes and writes one response frame.
///
/// # Errors
///
/// Propagates stream I/O failures.
pub fn write_response<W: Write>(w: &mut W, response: &WireResponse) -> io::Result<()> {
    let mut body = BodyWriter::new();
    match response {
        WireResponse::Ok {
            id,
            scores,
            healthy_models,
            total_models,
            latency_ms,
        } => {
            body.u32(scores.len() as u32);
            body.f64s(scores);
            body.u32(*healthy_models);
            body.u32(*total_models);
            body.u64(*latency_ms);
            write_frame(w, FRAME_OK, *id, &body.buf)
        }
        WireResponse::Busy {
            id,
            capacity,
            reason,
        } => {
            body.u32(*capacity);
            body.u8(reason.tag());
            write_frame(w, FRAME_BUSY, *id, &body.buf)
        }
        WireResponse::Shed {
            id,
            waited_ms,
            deadline_ms,
        } => {
            body.u64(*waited_ms);
            body.u64(*deadline_ms);
            write_frame(w, FRAME_SHED, *id, &body.buf)
        }
        WireResponse::Error { id, message } => {
            let bytes = message.as_bytes();
            body.u32(bytes.len() as u32);
            body.buf.extend_from_slice(bytes);
            write_frame(w, FRAME_ERROR, *id, &body.buf)
        }
    }
}

/// Reads one response frame. `Ok(None)` on clean EOF between frames.
///
/// # Errors
///
/// Same conditions as [`read_request`].
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<WireResponse>, WireError> {
    let Some((frame_type, id, body)) = read_frame(r)? else {
        return Ok(None);
    };
    let mut body = BodyReader::new(&body);
    let response = match frame_type {
        FRAME_OK => {
            let n = body.u32()? as usize;
            if n * 8 > MAX_FRAME_BODY as usize {
                return Err(WireError::Malformed(format!("implausible score count {n}")));
            }
            let scores = body.f64s(n)?;
            let healthy_models = body.u32()?;
            let total_models = body.u32()?;
            let latency_ms = body.u64()?;
            WireResponse::Ok {
                id,
                scores,
                healthy_models,
                total_models,
                latency_ms,
            }
        }
        FRAME_BUSY => {
            let capacity = body.u32()?;
            let reason = BusyReason::from_tag(body.u8()?)?;
            WireResponse::Busy {
                id,
                capacity,
                reason,
            }
        }
        FRAME_SHED => {
            let waited_ms = body.u64()?;
            let deadline_ms = body.u64()?;
            WireResponse::Shed {
                id,
                waited_ms,
                deadline_ms,
            }
        }
        FRAME_ERROR => {
            let len = body.u32()? as usize;
            let bytes = body.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| WireError::Malformed("error message is not UTF-8".to_string()))?;
            WireResponse::Error { id, message }
        }
        other => {
            return Err(WireError::Malformed(format!(
                "expected a response frame, got type {other:#04x}"
            )))
        }
    };
    body.finish()?;
    Ok(Some(response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, d: usize) -> Matrix {
        let data: Vec<f64> = (0..n * d)
            .map(|i| (i as f64 * 0.37 - 3.0) * 1e-3 + (i % 7) as f64)
            .collect();
        Matrix::from_vec(n, d, data).unwrap()
    }

    #[test]
    fn request_round_trips_exact_bits() {
        for (lane, deadline) in [
            (Lane::Normal, None),
            (Lane::High, Some(250)),
            (Lane::Normal, Some(0)),
        ] {
            let request = WireRequest {
                id: 0xdead_beef_cafe_f00d,
                lane,
                deadline_ms: deadline,
                rows: rows(5, 3),
            };
            let mut buf = Vec::new();
            write_request(&mut buf, &request).unwrap();
            let decoded = read_request(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(decoded, request);
            // The payload crossed as raw bits, not formatted text.
            assert_eq!(
                decoded
                    .rows
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                request
                    .rows
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            WireResponse::Ok {
                id: 7,
                scores: vec![1.5, -0.25, f64::MIN_POSITIVE, 1e300],
                healthy_models: 5,
                total_models: 6,
                latency_ms: 12,
            },
            WireResponse::Busy {
                id: 8,
                capacity: 64,
                reason: BusyReason::Quota,
            },
            WireResponse::Shed {
                id: 9,
                waited_ms: 120,
                deadline_ms: 100,
            },
            WireResponse::Error {
                id: 10,
                message: "expected 3 features, got 5".into(),
            },
        ];
        let mut buf = Vec::new();
        for case in &cases {
            write_response(&mut buf, case).unwrap();
        }
        let mut cursor = buf.as_slice();
        for case in &cases {
            let decoded = read_response(&mut cursor).unwrap().unwrap();
            assert_eq!(&decoded, case);
            assert_eq!(decoded.id(), case.id());
        }
        // Clean EOF after the last frame.
        assert!(read_response(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_decode_in_order() {
        let mut buf = Vec::new();
        for id in 0..5u64 {
            write_request(
                &mut buf,
                &WireRequest {
                    id,
                    lane: Lane::Normal,
                    deadline_ms: None,
                    rows: rows(2, 2),
                },
            )
            .unwrap();
        }
        let mut cursor = buf.as_slice();
        for id in 0..5u64 {
            assert_eq!(read_request(&mut cursor).unwrap().unwrap().id, id);
        }
        assert!(read_request(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Bad magic.
        let err = read_request(&mut &b"NOPE\x01\x01aaaaaaaa\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");

        // Unknown version.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &WireRequest {
                id: 1,
                lane: Lane::Normal,
                deadline_ms: None,
                rows: rows(1, 1),
            },
        )
        .unwrap();
        let mut skewed = buf.clone();
        skewed[4] = 99;
        assert!(matches!(
            read_request(&mut skewed.as_slice()).unwrap_err(),
            WireError::Malformed(_)
        ));

        // Truncated body: eof inside the frame is malformed, not clean.
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            read_request(&mut &truncated[..]).unwrap_err(),
            WireError::Malformed(_)
        ));

        // Trailing garbage inside a declared body.
        let mut padded = buf.clone();
        let body_len_at = 14;
        let old = u32::from_le_bytes(padded[body_len_at..body_len_at + 4].try_into().unwrap());
        padded[body_len_at..body_len_at + 4].copy_from_slice(&(old + 2).to_le_bytes());
        padded.extend_from_slice(&[0, 0]);
        assert!(matches!(
            read_request(&mut padded.as_slice()).unwrap_err(),
            WireError::Malformed(_)
        ));

        // A response frame on the request channel is rejected.
        let mut resp = Vec::new();
        write_response(
            &mut resp,
            &WireResponse::Busy {
                id: 1,
                capacity: 4,
                reason: BusyReason::Queue,
            },
        )
        .unwrap();
        assert!(matches!(
            read_request(&mut resp.as_slice()).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(WIRE_MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(FRAME_REQUEST);
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_request(&mut frame.as_slice()).unwrap_err(),
            WireError::Malformed(_)
        ));
    }
}
