#![allow(clippy::needless_range_loop)] // indexed loops mirror the papers' pseudocode in numeric kernels
#![warn(missing_docs)]
//! Unsupervised outlier-detector zoo for the SUOD reproduction.
//!
//! The paper's experiments draw heterogeneous model pools from eight
//! algorithm families (Table B.1): ABOD, CBLOF, Feature Bagging, HBOS,
//! Isolation Forest, kNN, LOF, and OCSVM, plus the average-kNN and LoOP
//! variants referenced in §4.2 and §1. Rust has no PyOD equivalent, so
//! this crate reimplements each detector from its original paper:
//!
//! | Module | Algorithm | Reference |
//! |---|---|---|
//! | [`knn`] | k-nearest-neighbour distance (largest/mean/median) | Ramaswamy et al. 2000 |
//! | [`lof`] | Local Outlier Factor | Breunig et al. 2000 |
//! | [`abod`] | (Fast) Angle-Based Outlier Detection | Kriegel et al. 2008 |
//! | [`hbos`] | Histogram-Based Outlier Score | Goldstein & Dengel 2012 |
//! | [`iforest`] | Isolation Forest | Liu et al. 2008 |
//! | [`cblof`] | Clustering-Based LOF (+ [`kmeans`] substrate) | He et al. 2003 |
//! | [`ocsvm`] | One-Class SVM via SMO | Schölkopf et al. 2001 |
//! | [`feature_bagging`] | Feature Bagging meta-ensemble | Lazarevic & Kumar 2005 |
//! | [`loop_detector`] | Local Outlier Probabilities | Kriegel et al. 2009 |
//!
//! # Conventions
//!
//! All detectors implement [`Detector`]: `fit` learns from an unlabeled
//! training matrix, `decision_function` scores new rows with **larger =
//! more outlying** (the PyOD convention; detectors whose native score is
//! inverted, like ABOD, negate internally), and `training_scores` exposes
//! the scores of the training rows themselves — the "pseudo ground truth"
//! that SUOD's model-approximation module trains regressors on.
//!
//! # Example
//!
//! ```
//! use suod_detectors::{Detector, KnnDetector, KnnMethod};
//! use suod_linalg::Matrix;
//!
//! # fn main() -> Result<(), suod_detectors::Error> {
//! let train = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1], vec![9.0, 9.0],
//! ]).unwrap();
//! let mut det = KnnDetector::new(2, KnnMethod::Largest)?;
//! det.fit(&train)?;
//! let scores = det.training_scores()?;
//! // The far point is the most outlying.
//! assert!(scores[3] > scores[0]);
//! # Ok(())
//! # }
//! ```

pub mod abod;
pub mod cblof;
pub mod chaos;
pub mod cof;
pub mod feature_bagging;
pub mod hbos;
pub mod iforest;
pub mod kmeans;
pub mod knn;
pub mod loda;
pub mod lof;
pub mod loop_detector;
pub mod ocsvm;
pub mod pca_detector;

pub use abod::AbodDetector;
pub use cblof::CblofDetector;
pub use chaos::{ChaosConfig, ChaosDetector, ChaosMode};
pub use cof::CofDetector;
pub use feature_bagging::FeatureBagging;
pub use hbos::HbosDetector;
pub use iforest::IsolationForest;
pub use kmeans::KMeans;
pub use knn::{KnnDetector, KnnMethod};
pub use loda::LodaDetector;
pub use lof::LofDetector;
pub use loop_detector::LoopDetector;
pub use ocsvm::{Kernel, OcsvmDetector};
pub use pca_detector::PcaDetector;

use std::fmt;
use std::sync::Arc;
use suod_linalg::{
    emit_kernel_counters, DataFingerprint, DistanceMetric, KernelConfig, KnnIndex, Matrix,
    NeighborCache, SelfNeighbors, SnapshotReader, SnapshotWriter,
};
use suod_observe::{Counter, Observer, SpanAttrs};

/// Errors produced by detector training and scoring.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// `decision_function`/`training_scores` called before `fit`.
    NotFitted(&'static str),
    /// A hyperparameter was outside its valid domain.
    InvalidParameter(String),
    /// Training data was empty or too small for the configuration.
    InsufficientData {
        /// What the detector needed.
        needed: String,
        /// How many samples were provided.
        got: usize,
    },
    /// Query dimensionality differs from the fitted dimensionality.
    DimensionMismatch {
        /// Dimensionality seen at fit time.
        expected: usize,
        /// Dimensionality of the query.
        actual: usize,
    },
    /// Propagated linear-algebra failure.
    Linalg(suod_linalg::Error),
    /// Input contained NaN or infinite values. The payload names the
    /// boundary that rejected the data (e.g. `"fit"`).
    NonFiniteInput(&'static str),
    /// The training data was numerically degenerate for this algorithm
    /// (singular covariance, zero variance, non-finite scores, ...).
    DegenerateData(String),
    /// An iterative solver failed to converge to a finite solution.
    NonConvergence(String),
    /// The model panicked during fit and was caught at a task fault
    /// boundary. The payload is the panic message.
    Panicked(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFitted(model) => write!(f, "{model} must be fitted before scoring"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient training data: needed {needed}, got {got} samples"
                )
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected}-dimensional rows, got {actual}")
            }
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::NonFiniteInput(boundary) => {
                write!(f, "non-finite (NaN/inf) values in input at {boundary}")
            }
            Error::DegenerateData(msg) => write!(f, "numerically degenerate data: {msg}"),
            Error::NonConvergence(msg) => write!(f, "solver failed to converge: {msg}"),
            Error::Panicked(msg) => write!(f, "model panicked during fit: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Shared resources a pool orchestrator hands to `fit_with_context`.
///
/// Proximity detectors (kNN, LOF, LoOP, COF, ABOD) all start their fit
/// with the same expensive step: build a [`KnnIndex`] over the training
/// matrix, then run a leave-one-out neighbour sweep. A `FitContext`
/// optionally carries a pool-wide [`NeighborCache`] so detectors sharing
/// a training matrix share one index build and one sweep (served as exact
/// sorted-prefix views), plus the thread budget the standalone sweep
/// should use. The default context (`FitContext::default()`) is
/// cache-less and single-threaded, matching a bare [`Detector::fit`].
///
/// A context also carries an [`Observer`]: standalone neighbour sweeps
/// report through the same hooks the pooled cache uses (a private build
/// is a [`Counter::CacheMiss`] plus a `NeighborBuild` span), so telemetry
/// reconciles between pooled and standalone fits. The default is the
/// no-op observer.
#[derive(Clone)]
pub struct FitContext {
    cache: Option<Arc<NeighborCache>>,
    fingerprint: Option<DataFingerprint>,
    n_threads: usize,
    observer: Arc<dyn Observer>,
    kernel: KernelConfig,
}

impl std::fmt::Debug for FitContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitContext")
            .field("has_cache", &self.cache.is_some())
            .field("fingerprint", &self.fingerprint)
            .field("n_threads", &self.n_threads)
            .finish_non_exhaustive()
    }
}

impl Default for FitContext {
    fn default() -> Self {
        Self::standalone(1)
    }
}

impl FitContext {
    /// A cache-less context whose neighbour sweeps use `n_threads`
    /// threads (clamped to at least 1).
    pub fn standalone(n_threads: usize) -> Self {
        Self {
            cache: None,
            fingerprint: None,
            n_threads,
            observer: suod_observe::noop(),
            kernel: KernelConfig::default(),
        }
    }

    /// A context that routes neighbour queries through a shared `cache`.
    ///
    /// `fingerprint` is the precomputed identity of the training matrix
    /// this context will be used with; passing `None` makes the detector
    /// compute it on first use (one extra `O(n d)` pass).
    pub fn cached(
        cache: Arc<NeighborCache>,
        fingerprint: Option<DataFingerprint>,
        n_threads: usize,
    ) -> Self {
        Self {
            cache: Some(cache),
            fingerprint,
            n_threads,
            observer: suod_observe::noop(),
            kernel: KernelConfig::default(),
        }
    }

    /// Attaches an instrumentation sink. Standalone neighbour sweeps then
    /// emit the same telemetry a pooled cache miss would (one
    /// [`Counter::CacheMiss`] plus a
    /// [`Stage::NeighborBuild`](suod_observe::Stage::NeighborBuild) span);
    /// cached contexts report through the cache's own observer instead.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// Sets the kernel tuning (distance backend + KD-tree crossover) for
    /// standalone neighbour sweeps. Cached contexts build through the
    /// cache, which carries its own [`KernelConfig`] — a pool orchestrator
    /// should configure both from the same source.
    #[must_use]
    pub fn with_kernel_config(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel tuning this context applies to standalone sweeps.
    pub fn kernel_config(&self) -> KernelConfig {
        self.kernel
    }

    /// Thread budget for neighbour sweeps (at least 1).
    pub fn n_threads(&self) -> usize {
        self.n_threads.max(1)
    }

    /// `true` when a shared neighbour cache is attached.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Index + leave-one-out neighbour lists at `k` for the rows of `x`.
    ///
    /// With a cache attached this is served from (or builds) the shared
    /// [`NeighborGraph`](suod_linalg::NeighborGraph) for `(x, metric)`;
    /// standalone it builds a private index and sweeps directly. Both
    /// paths return bit-identical neighbour slices for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures (empty training matrix).
    pub fn self_neighbors(
        &self,
        x: &Matrix,
        metric: DistanceMetric,
        k: usize,
    ) -> suod_linalg::Result<(Arc<KnnIndex>, SelfNeighbors)> {
        match &self.cache {
            Some(cache) => {
                let fp = self.fingerprint.unwrap_or_else(|| DataFingerprint::of(x));
                let graph = cache.get_or_build_keyed(fp, x, metric, k, self.n_threads())?;
                let index = Arc::clone(graph.index());
                Ok((index, SelfNeighbors::Shared { graph, k }))
            }
            None => {
                // Standalone fits pay a private build every time — telemetry
                // reports it exactly like a pooled cache miss so counters
                // stay comparable between the two paths.
                self.observer.counter(Counter::CacheMiss, 1);
                let result = (|| {
                    // Same two-span split as the pooled path: NeighborBuild
                    // wraps index construction, NeighborQuery the sweep.
                    let span = self
                        .observer
                        .span_begin(suod_observe::Stage::NeighborBuild, SpanAttrs::none());
                    let index =
                        KnnIndex::build_with_threads(x, metric, self.kernel, self.n_threads());
                    self.observer.span_end(span);
                    let index = Arc::new(index?);
                    let span = self
                        .observer
                        .span_begin(suod_observe::Stage::NeighborQuery, SpanAttrs::none());
                    let lists = index.self_query_batch(k, self.n_threads());
                    self.observer.span_end(span);
                    Ok((index, SelfNeighbors::Owned(lists)))
                })();
                if let Ok((index, _)) = &result {
                    // Fresh index: the snapshot is exactly this build's
                    // kernel work, mirroring the pooled cache-miss path.
                    emit_kernel_counters(self.observer.as_ref(), index.kernel_counters());
                }
                result
            }
        }
    }
}

/// An unsupervised outlier detector.
///
/// Implementations are [`Send`] so SUOD's scheduler can move them across
/// worker threads. Scores follow the PyOD convention: **larger = more
/// outlying**.
pub trait Detector: Send + Sync {
    /// Learns the detector from unlabeled training rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsufficientData`] when `x` is too small for the
    /// configuration, plus detector-specific parameter failures.
    fn fit(&mut self, x: &Matrix) -> Result<()>;

    /// [`fit`](Self::fit) with pool-shared resources.
    ///
    /// Proximity detectors use `ctx` to draw their leave-one-out
    /// neighbour lists from a shared [`NeighborCache`] (and to size their
    /// standalone sweeps to `ctx.n_threads()`); the default
    /// implementation ignores the context, so non-proximity detectors
    /// behave exactly as before.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`fit`](Self::fit).
    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        let _ = ctx;
        self.fit(x)
    }

    /// Outlyingness scores for each row of `x` (larger = more outlying).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::DimensionMismatch`] when `x` has the wrong width.
    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Outlyingness scores of the training rows, computed at fit time.
    ///
    /// For neighbourhood methods this is the leave-one-out score (a point
    /// is not its own neighbour), matching PyOD's `decision_scores_`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    fn training_scores(&self) -> Result<Vec<f64>>;

    /// Short algorithm name for logs and reports (e.g. `"lof"`).
    fn name(&self) -> &'static str;

    /// `true` once `fit` has succeeded.
    fn is_fitted(&self) -> bool;

    /// Appends the detector's full state (parameters + fitted model) to a
    /// `suod-pool/1` snapshot body.
    ///
    /// Implementations write every field in a fixed order so that
    /// save → load → save is byte-identical; the matching reader is the
    /// type's `snapshot_read` associated function, dispatched by
    /// [`read_detector`]. The default implementation rejects the call so
    /// a newly added detector cannot silently persist nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the detector does not
    /// support snapshots.
    fn snapshot_write(&self, w: &mut SnapshotWriter) -> Result<()> {
        let _ = w;
        Err(Error::InvalidParameter(format!(
            "{} does not support snapshots",
            self.name()
        )))
    }
}

/// Writes `det` as a dispatchable snapshot record: name string followed by
/// a length-prefixed state body.
///
/// The length prefix lets [`read_detector`] validate that a detector's
/// reader consumed exactly the bytes its writer produced, catching codec
/// drift as a typed error instead of silent misalignment.
///
/// # Errors
///
/// Propagates the detector's [`Detector::snapshot_write`] failure.
pub fn write_detector(det: &dyn Detector, w: &mut SnapshotWriter) -> Result<()> {
    w.write_str(det.name());
    let mut body = SnapshotWriter::new();
    det.snapshot_write(&mut body)?;
    w.write_bytes(body.as_bytes());
    Ok(())
}

/// Reads a detector record written by [`write_detector`], dispatching on
/// the stored name.
///
/// `n_threads` sizes the neighbour-index rebuild for proximity detectors;
/// rebuilt indexes are bit-identical for every thread count, so the value
/// only affects load latency.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for unknown detector names,
/// truncated state, or trailing bytes left by a mismatched reader.
pub fn read_detector(r: &mut SnapshotReader<'_>, n_threads: usize) -> Result<Box<dyn Detector>> {
    let name = r.read_str()?;
    let body = r.read_bytes()?;
    let mut br = SnapshotReader::new(body);
    let det: Box<dyn Detector> = match name.as_str() {
        "knn" | "aknn" => Box::new(KnnDetector::snapshot_read(&mut br, n_threads)?),
        "lof" => Box::new(LofDetector::snapshot_read(&mut br, n_threads)?),
        "abod" => Box::new(AbodDetector::snapshot_read(&mut br, n_threads)?),
        "cof" => Box::new(CofDetector::snapshot_read(&mut br, n_threads)?),
        "loop" => Box::new(LoopDetector::snapshot_read(&mut br, n_threads)?),
        "hbos" => Box::new(HbosDetector::snapshot_read(&mut br, n_threads)?),
        "iforest" => Box::new(IsolationForest::snapshot_read(&mut br, n_threads)?),
        "cblof" => Box::new(CblofDetector::snapshot_read(&mut br, n_threads)?),
        "ocsvm" => Box::new(OcsvmDetector::snapshot_read(&mut br, n_threads)?),
        "loda" => Box::new(LodaDetector::snapshot_read(&mut br, n_threads)?),
        "pca" => Box::new(PcaDetector::snapshot_read(&mut br, n_threads)?),
        "feature_bagging" => Box::new(FeatureBagging::snapshot_read(&mut br, n_threads)?),
        "chaos" => Box::new(ChaosDetector::snapshot_read(&mut br, n_threads)?),
        other => {
            return Err(Error::InvalidParameter(format!(
                "snapshot: unknown detector name {other:?}"
            )))
        }
    };
    if !br.is_exhausted() {
        return Err(Error::InvalidParameter(format!(
            "snapshot: detector {name:?} left {} trailing bytes",
            br.remaining()
        )));
    }
    Ok(det)
}

pub(crate) fn write_opt_index(index: Option<&KnnIndex>, w: &mut SnapshotWriter) {
    match index {
        Some(ix) => {
            w.write_bool(true);
            ix.snapshot_write(w);
        }
        None => w.write_bool(false),
    }
}

pub(crate) fn read_opt_index(
    r: &mut SnapshotReader<'_>,
    n_threads: usize,
) -> Result<Option<Arc<KnnIndex>>> {
    Ok(if r.read_bool()? {
        Some(Arc::new(KnnIndex::snapshot_read(r, n_threads)?))
    } else {
        None
    })
}

/// Static strings that appear inside [`Error::NotFitted`],
/// [`Error::NonFiniteInput`], and the `&'static str` payloads of
/// [`suod_linalg::Error`]. Snapshot decoding restores these without
/// allocation; strings written by a newer build fall back to a one-time
/// leak (bounded by snapshot content, and loads are rare).
const KNOWN_STATIC_STRS: &[&str] = &[
    "AbodDetector",
    "CblofDetector",
    "CofDetector",
    "FeatureBagging",
    "HbosDetector",
    "IsolationForest",
    "KnnDetector",
    "LodaDetector",
    "LofDetector",
    "LoopDetector",
    "OcsvmDetector",
    "PcaDetector",
    "abod fit",
    "decision_function",
    "fit",
    "serve",
];

fn intern_static(s: String) -> &'static str {
    for &known in KNOWN_STATIC_STRS {
        if known == s {
            return known;
        }
    }
    Box::leak(s.into_boxed_str())
}

/// Writes an [`enum@Error`] value (e.g. a quarantine cause) to a snapshot.
///
/// The encoding is canonical: decoding with [`read_error`] and re-encoding
/// produces identical bytes, which the pool-level byte-identity contract
/// relies on.
pub fn write_error(err: &Error, w: &mut SnapshotWriter) {
    match err {
        Error::NotFitted(what) => {
            w.write_u8(0);
            w.write_str(what);
        }
        Error::InvalidParameter(msg) => {
            w.write_u8(1);
            w.write_str(msg);
        }
        Error::InsufficientData { needed, got } => {
            w.write_u8(2);
            w.write_str(needed);
            w.write_usize(*got);
        }
        Error::DimensionMismatch { expected, actual } => {
            w.write_u8(3);
            w.write_usize(*expected);
            w.write_usize(*actual);
        }
        Error::Linalg(inner) => {
            w.write_u8(4);
            write_linalg_error(inner, w);
        }
        Error::NonFiniteInput(boundary) => {
            w.write_u8(5);
            w.write_str(boundary);
        }
        Error::DegenerateData(msg) => {
            w.write_u8(6);
            w.write_str(msg);
        }
        Error::NonConvergence(msg) => {
            w.write_u8(7);
            w.write_str(msg);
        }
        Error::Panicked(msg) => {
            w.write_u8(8);
            w.write_str(msg);
        }
    }
}

/// Reads an [`enum@Error`] value written by [`write_error`].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on unknown variant tags or
/// truncated payloads.
pub fn read_error(r: &mut SnapshotReader<'_>) -> Result<Error> {
    Ok(match r.read_u8()? {
        0 => Error::NotFitted(intern_static(r.read_str()?)),
        1 => Error::InvalidParameter(r.read_str()?),
        2 => Error::InsufficientData {
            needed: r.read_str()?,
            got: r.read_usize()?,
        },
        3 => Error::DimensionMismatch {
            expected: r.read_usize()?,
            actual: r.read_usize()?,
        },
        4 => Error::Linalg(read_linalg_error(r)?),
        5 => Error::NonFiniteInput(intern_static(r.read_str()?)),
        6 => Error::DegenerateData(r.read_str()?),
        7 => Error::NonConvergence(r.read_str()?),
        8 => Error::Panicked(r.read_str()?),
        other => {
            return Err(Error::InvalidParameter(format!(
                "snapshot: unknown error tag {other}"
            )))
        }
    })
}

fn write_linalg_error(err: &suod_linalg::Error, w: &mut SnapshotWriter) {
    match err {
        suod_linalg::Error::ShapeMismatch { op, lhs, rhs } => {
            w.write_u8(0);
            w.write_str(op);
            w.write_usize(lhs.0);
            w.write_usize(lhs.1);
            w.write_usize(rhs.0);
            w.write_usize(rhs.1);
        }
        suod_linalg::Error::BadDimensions { expected, actual } => {
            w.write_u8(1);
            w.write_usize(*expected);
            w.write_usize(*actual);
        }
        suod_linalg::Error::Empty(op) => {
            w.write_u8(2);
            w.write_str(op);
        }
        suod_linalg::Error::NoConvergence(what) => {
            w.write_u8(3);
            w.write_str(what);
        }
        suod_linalg::Error::InvalidParameter(msg) => {
            w.write_u8(4);
            w.write_str(msg);
        }
        // `suod_linalg::Error` is #[non_exhaustive]; a variant added later
        // must also extend this codec, so fail loudly in debug builds.
        #[allow(unreachable_patterns)]
        other => unreachable!("unhandled linalg error variant {other:?}"),
    }
}

fn read_linalg_error(r: &mut SnapshotReader<'_>) -> Result<suod_linalg::Error> {
    Ok(match r.read_u8()? {
        0 => suod_linalg::Error::ShapeMismatch {
            op: intern_static(r.read_str()?),
            lhs: (r.read_usize()?, r.read_usize()?),
            rhs: (r.read_usize()?, r.read_usize()?),
        },
        1 => suod_linalg::Error::BadDimensions {
            expected: r.read_usize()?,
            actual: r.read_usize()?,
        },
        2 => suod_linalg::Error::Empty(intern_static(r.read_str()?)),
        3 => suod_linalg::Error::NoConvergence(intern_static(r.read_str()?)),
        4 => suod_linalg::Error::InvalidParameter(r.read_str()?),
        other => {
            return Err(Error::InvalidParameter(format!(
                "snapshot: unknown linalg error tag {other}"
            )))
        }
    })
}

/// Converts scores to binary labels by thresholding at the
/// `(1 - contamination)` quantile: the top `contamination` fraction of
/// scores become outliers (label 1).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `contamination` is outside
/// `(0, 0.5]` or `scores` is empty.
pub fn labels_from_scores(scores: &[f64], contamination: f64) -> Result<Vec<i32>> {
    if scores.is_empty() {
        return Err(Error::InvalidParameter(
            "labels_from_scores received no scores".into(),
        ));
    }
    if !(contamination > 0.0 && contamination <= 0.5) {
        return Err(Error::InvalidParameter(format!(
            "contamination must be in (0, 0.5], got {contamination}"
        )));
    }
    let n_out = ((scores.len() as f64) * contamination).round() as usize;
    let n_out = n_out.clamp(1, scores.len());
    let threshold = suod_linalg::rank::kth_largest(scores, n_out)
        .expect("n_out is within bounds by construction");
    Ok(scores.iter().map(|&s| i32::from(s >= threshold)).collect())
}

/// Rejects matrices containing NaN or infinite entries.
///
/// Fragile algorithms (ABOD variance accumulation, OCSVM's SMO loop, PCA
/// eigendecomposition) turn a single NaN cell into a silently garbage
/// model; the orchestrator calls this at the `fit`/`decision_function`
/// boundaries so the failure surfaces as a typed error instead.
///
/// # Errors
///
/// Returns [`Error::NonFiniteInput`] carrying `boundary` when any entry
/// is NaN or infinite.
pub fn validate_finite(x: &Matrix, boundary: &'static str) -> Result<()> {
    if x.as_slice().iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(Error::NonFiniteInput(boundary))
    }
}

pub(crate) fn check_dims(expected: usize, x: &Matrix) -> Result<()> {
    if x.ncols() != expected {
        return Err(Error::DimensionMismatch {
            expected,
            actual: x.ncols(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_threshold_top_fraction() {
        let scores = [0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6, 0.45, 0.5];
        let labels = labels_from_scores(&scores, 0.2).unwrap();
        assert_eq!(labels.iter().sum::<i32>(), 2);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[3], 1);
    }

    #[test]
    fn labels_validate_inputs() {
        assert!(labels_from_scores(&[], 0.1).is_err());
        assert!(labels_from_scores(&[1.0], 0.0).is_err());
        assert!(labels_from_scores(&[1.0], 0.9).is_err());
    }

    #[test]
    fn labels_at_least_one_outlier() {
        let labels = labels_from_scores(&[1.0, 2.0, 3.0], 0.01).unwrap();
        assert_eq!(labels.iter().sum::<i32>(), 1);
        assert_eq!(labels[2], 1);
    }

    #[test]
    fn standalone_fit_emits_cache_telemetry() {
        use suod_observe::{RecordingObserver, Stage};
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![0.2, 0.1],
            vec![9.0, 9.0],
        ])
        .unwrap();
        let rec = Arc::new(RecordingObserver::new());
        let ctx = FitContext::standalone(1).with_observer(rec.clone());
        let mut det = KnnDetector::new(2, KnnMethod::Largest).unwrap();
        det.fit_with_context(&x, &ctx).unwrap();
        let trace = rec.trace();
        // A standalone proximity fit reports its private build exactly
        // like a pooled cache miss: one miss, no hits, one build span.
        assert_eq!(trace.counter(Counter::CacheMiss), 1);
        assert_eq!(trace.counter(Counter::CacheHit), 0);
        assert_eq!(trace.spans_of(Stage::NeighborBuild).count(), 1);
    }

    #[test]
    fn standalone_fit_scores_unchanged_by_observer() {
        use suod_observe::RecordingObserver;
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![0.2, 0.1],
            vec![9.0, 9.0],
        ])
        .unwrap();
        let mut plain = LofDetector::new(2).unwrap();
        plain
            .fit_with_context(&x, &FitContext::standalone(1))
            .unwrap();
        let mut observed = LofDetector::new(2).unwrap();
        let rec = Arc::new(RecordingObserver::new());
        observed
            .fit_with_context(&x, &FitContext::standalone(1).with_observer(rec))
            .unwrap();
        assert_eq!(
            plain.training_scores().unwrap(),
            observed.training_scores().unwrap()
        );
    }
}
