//! Service-level counters and latency percentiles, in the same
//! human-readable report style as the estimator's `FitDiagnostics`.

/// Snapshot of a [`ScoreService`](crate::ScoreService)'s lifetime
/// counters and latency distribution.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests rejected with `Busy` backpressure.
    pub rejected: u64,
    /// Requests shed at batch assembly because their deadline had
    /// already passed (no compute spent).
    pub shed: u64,
    /// Deadline breaches: shed requests plus scored requests that
    /// finished past their budget.
    pub deadline_missed: u64,
    /// Per-model predict faults observed across all batches (panics,
    /// typed errors, non-finite scores, timeout breaches).
    pub predict_faults: u64,
    /// Models quarantined out of serving after exhausting their failure
    /// budget.
    pub quarantined: u64,
    /// Micro-batches served.
    pub batches: u64,
    /// Requests answered with scores.
    pub requests_scored: u64,
    /// Requests answered with a failure (degraded ensemble, shutdown).
    pub requests_failed: u64,
    /// Total rows scored.
    pub rows_scored: u64,
    /// Successful hot reloads since the service started.
    pub reloads: u64,
    /// Generation of the pool currently serving (0 before any reload).
    pub pool_epoch: u64,
    /// Models still active (not serve-quarantined).
    pub active_models: usize,
    /// Models in the served ensemble.
    pub total_models: usize,
    /// Median admission-to-response latency (clock ms, scored requests).
    pub p50_latency_ms: u64,
    /// 99th-percentile latency (nearest-rank, clock ms).
    pub p99_latency_ms: u64,
    /// Worst observed latency (clock ms).
    pub max_latency_ms: u64,
    /// EWMA of measured seconds per forecast cost unit; `None` before
    /// the first batch. Multiplied by a batch's unit forecast this
    /// estimates its wall time.
    pub secs_per_unit: Option<f64>,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} admitted, {} rejected, {} shed, {} deadline-missed",
            self.admitted, self.rejected, self.shed, self.deadline_missed
        )?;
        writeln!(
            f,
            "  {} batches, {} requests scored ({} failed), {} rows",
            self.batches, self.requests_scored, self.requests_failed, self.rows_scored
        )?;
        writeln!(
            f,
            "  models: {}/{} active, {} predict faults, {} quarantined",
            self.active_models, self.total_models, self.predict_faults, self.quarantined
        )?;
        writeln!(
            f,
            "  pool: epoch {} ({} reloads)",
            self.pool_epoch, self.reloads
        )?;
        write!(
            f,
            "  latency: p50 {}ms, p99 {}ms, max {}ms",
            self.p50_latency_ms, self.p99_latency_ms, self.max_latency_ms
        )?;
        if let Some(spu) = self.secs_per_unit {
            write!(f, ", {spu:.3e}s/unit")?;
        }
        Ok(())
    }
}
