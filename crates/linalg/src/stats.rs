//! Column statistics and standardization.
//!
//! Score combination in the paper (Avg/MOA, Table 4) follows PyOD and
//! z-score-standardizes each base model's outputs before combining;
//! several detectors (HBOS, CBLOF) and the meta-feature extractor need
//! per-column moments. This module gathers those primitives.

use crate::{Error, Matrix, Result};

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice; `NAN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum of a slice; `NAN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Per-column means of a matrix.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    let mut sums = vec![0.0; d];
    for row in x.rows_iter() {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    if n > 0 {
        for s in &mut sums {
            *s /= n as f64;
        }
    }
    sums
}

/// Per-column population standard deviations.
pub fn column_stds(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    if n == 0 {
        return vec![0.0; d];
    }
    let means = column_means(x);
    let mut sums = vec![0.0; d];
    for row in x.rows_iter() {
        for ((s, &v), &m) in sums.iter_mut().zip(row).zip(&means) {
            *s += (v - m) * (v - m);
        }
    }
    sums.iter().map(|s| (s / n as f64).sqrt()).collect()
}

/// Fitted standardizer: per-column z-score transform learned on train data.
///
/// # Example
///
/// ```
/// use suod_linalg::{stats::Standardizer, Matrix};
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let train = Matrix::from_rows(&[vec![0.0], vec![2.0]])?;
/// let sc = Standardizer::fit(&train)?;
/// let t = sc.transform(&train)?;
/// assert!((t.get(0, 0) + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns column means and standard deviations from `x`.
    ///
    /// Columns with zero variance get a std of 1 so they map to 0 rather
    /// than dividing by zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `x` has no rows.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.nrows() == 0 {
            return Err(Error::Empty("Standardizer::fit"));
        }
        let means = column_means(x);
        let stds = column_stds(x)
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Ok(Self { means, stds })
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when column counts differ from fit.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.ncols() != self.means.len() {
            return Err(Error::ShapeMismatch {
                op: "Standardizer::transform",
                lhs: x.shape(),
                rhs: (1, self.means.len()),
            });
        }
        let mut out = x.clone();
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Column means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations learned at fit time (zero-variance columns
    /// are reported as 1).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Z-score standardizes a single score vector in place.
///
/// Constant vectors become all zeros. This is the normalization PyOD applies
/// before ensemble combination.
pub fn zscore_in_place(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s > 1e-12 {
        for x in xs.iter_mut() {
            *x = (*x - m) / s;
        }
    } else {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
    }
}

/// Skewness (Fisher-Pearson, population) of a slice; `0.0` for slices
/// shorter than 3 or with zero variance. Used as a dataset meta-feature.
pub fn skewness(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|&x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

/// Excess kurtosis (population) of a slice; `0.0` for slices shorter than 4
/// or with zero variance. Used as a dataset meta-feature.
pub fn kurtosis(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|&x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn column_stats() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        assert_eq!(column_means(&x), vec![2.0, 10.0]);
        let stds = column_stds(&x);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn standardizer_roundtrip() {
        let x = Matrix::from_rows(&[vec![0.0, 5.0], vec![2.0, 5.0], vec![4.0, 5.0]]).unwrap();
        let sc = Standardizer::fit(&x).unwrap();
        let t = sc.transform(&x).unwrap();
        // Column 0 standardized, column 1 constant -> zeros.
        assert!((mean(&t.col(0))).abs() < 1e-12);
        assert!((std_dev(&t.col(0)) - 1.0).abs() < 1e-12);
        assert!(t.col(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn standardizer_shape_check() {
        let x = Matrix::zeros(2, 2);
        let sc = Standardizer::fit(&x).unwrap();
        assert!(sc.transform(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn zscore_constant_vector() {
        let mut xs = [5.0, 5.0, 5.0];
        zscore_in_place(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn zscore_normalizes() {
        let mut xs = [1.0, 2.0, 3.0];
        zscore_in_place(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_kurtosis_symmetric() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
        // Uniform-ish symmetric data has negative excess kurtosis.
        assert!(kurtosis(&xs) < 0.0);
    }
}
