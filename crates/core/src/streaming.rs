//! Sliding-window streaming extension.
//!
//! The paper scopes SUOD to offline learning under a stationarity
//! assumption but notes it "may be extended to online settings for
//! streaming data" (§1). This module provides that extension in its
//! simplest sound form: a sliding window of recent samples backs a SUOD
//! ensemble that is refitted every `refit_every` arrivals, and incoming
//! samples are scored against the current ensemble before joining the
//! window. Because every SUOD component is seeded, the stream's behaviour
//! is reproducible given the same inputs.

use crate::suod::{Suod, SuodBuilder};
use crate::{Error, Result};
use std::collections::VecDeque;
use suod_linalg::Matrix;

/// Sliding-window streaming wrapper around [`Suod`].
///
/// # Example
///
/// ```
/// use suod::prelude::*;
/// use suod::streaming::StreamingSuod;
///
/// # fn main() -> Result<(), suod::Error> {
/// let builder = Suod::builder().base_estimators(vec![
///     ModelSpec::Knn { n_neighbors: 5, method: KnnMethod::Largest },
///     ModelSpec::Hbos { n_bins: 10, tolerance: 0.3 },
/// ]);
/// let mut stream = StreamingSuod::new(builder, 64, 32)?;
/// // Warm up with inliers, then score.
/// for i in 0..64 {
///     let row = vec![(i % 8) as f64 * 0.1, (i / 8 % 8) as f64 * 0.1];
///     stream.push(&row)?;
/// }
/// let normal = stream.score(&[0.3, 0.3])?;
/// let outlier = stream.score(&[50.0, 50.0])?;
/// assert!(outlier > normal);
/// # Ok(())
/// # }
/// ```
pub struct StreamingSuod {
    template: SuodBuilder,
    window: VecDeque<Vec<f64>>,
    window_size: usize,
    refit_every: usize,
    since_refit: usize,
    model: Option<Suod>,
    n_features: Option<usize>,
}

impl std::fmt::Debug for StreamingSuod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingSuod")
            .field("window_len", &self.window.len())
            .field("window_size", &self.window_size)
            .field("refit_every", &self.refit_every)
            .field("fitted", &self.model.is_some())
            .finish()
    }
}

impl StreamingSuod {
    /// Creates a streaming wrapper: the `template` builder is re-used for
    /// every refit over a window of at most `window_size` samples,
    /// refitting after every `refit_every` pushes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `window_size < 8` or
    /// `refit_every == 0`, and propagates template validation.
    pub fn new(template: SuodBuilder, window_size: usize, refit_every: usize) -> Result<Self> {
        if window_size < 8 {
            return Err(Error::InvalidConfig(
                "window_size must be >= 8 to fit detectors".into(),
            ));
        }
        if refit_every == 0 {
            return Err(Error::InvalidConfig("refit_every must be >= 1".into()));
        }
        // Validate the template eagerly so a bad pool fails at
        // construction, not mid-stream.
        template.clone().build()?;
        Ok(Self {
            template,
            window: VecDeque::with_capacity(window_size),
            window_size,
            refit_every,
            since_refit: 0,
            model: None,
            n_features: None,
        })
    }

    /// Number of samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// `true` once an ensemble has been fitted on the window.
    pub fn is_warm(&self) -> bool {
        self.model.is_some()
    }

    fn check_row(&mut self, row: &[f64]) -> Result<()> {
        match self.n_features {
            None => {
                if row.is_empty() {
                    return Err(Error::InvalidConfig("rows must be non-empty".into()));
                }
                self.n_features = Some(row.len());
                Ok(())
            }
            Some(d) if d == row.len() => Ok(()),
            Some(d) => Err(Error::InvalidConfig(format!(
                "row has {} features, stream started with {d}",
                row.len()
            ))),
        }
    }

    fn refit(&mut self) -> Result<()> {
        let rows: Vec<Vec<f64>> = self.window.iter().cloned().collect();
        let x = Matrix::from_rows(&rows)?;
        let mut model = self.template.clone().build()?;
        model.fit(&x)?;
        self.model = Some(model);
        self.since_refit = 0;
        Ok(())
    }

    /// Appends a sample to the window, evicting the oldest when full, and
    /// refits the ensemble when the refit interval has elapsed (or on the
    /// first push that fills enough of the window).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on dimension changes mid-stream
    /// and propagates refit failures.
    pub fn push(&mut self, row: &[f64]) -> Result<()> {
        self.check_row(row)?;
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(row.to_vec());
        self.since_refit += 1;

        let warm_enough = self.window.len() >= (self.window_size / 2).max(8);
        if warm_enough && (self.model.is_none() || self.since_refit >= self.refit_every) {
            self.refit()?;
        }
        Ok(())
    }

    /// Scores a sample against the current ensemble **without** adding it
    /// to the window (score-then-decide workflows call [`push`](Self::push)
    /// separately).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before the window has warmed up.
    pub fn score(&self, row: &[f64]) -> Result<f64> {
        let model = self.model.as_ref().ok_or(Error::NotFitted)?;
        let x = Matrix::from_rows(&[row.to_vec()])?;
        Ok(model.combined_scores(&x)?[0])
    }

    /// Convenience: score a sample, then push it into the window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`score`](Self::score) and [`push`](Self::push).
    pub fn score_and_push(&mut self, row: &[f64]) -> Result<f64> {
        let s = self.score(row)?;
        self.push(row)?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use suod_detectors::KnnMethod;

    fn template() -> SuodBuilder {
        Suod::builder()
            .base_estimators(vec![
                ModelSpec::Knn {
                    n_neighbors: 5,
                    method: KnnMethod::Largest,
                },
                ModelSpec::Hbos {
                    n_bins: 10,
                    tolerance: 0.3,
                },
            ])
            .seed(1)
    }

    /// Grid point with deterministic jitter (duplicate-free: a window of
    /// exact duplicates makes every distance-based training score 0 and
    /// any novel point — correctly — maximally anomalous).
    fn inlier(i: usize) -> Vec<f64> {
        let jitter = ((i as f64 * 0.618_033_988_749) % 1.0) * 0.03;
        vec![
            (i % 8) as f64 * 0.1 + jitter,
            ((i / 8) % 8) as f64 * 0.1 + jitter * 0.7,
        ]
    }

    #[test]
    fn warms_up_then_scores() {
        let mut stream = StreamingSuod::new(template(), 64, 32).unwrap();
        assert!(!stream.is_warm());
        assert!(stream.score(&[0.0, 0.0]).is_err());
        for i in 0..40 {
            stream.push(&inlier(i)).unwrap();
        }
        assert!(stream.is_warm());
        let normal = stream.score(&[0.35, 0.35]).unwrap();
        let outlier = stream.score(&[40.0, -40.0]).unwrap();
        assert!(outlier > normal, "{outlier} vs {normal}");
    }

    #[test]
    fn window_is_bounded() {
        let mut stream = StreamingSuod::new(template(), 16, 8).unwrap();
        for i in 0..100 {
            stream.push(&inlier(i)).unwrap();
        }
        assert_eq!(stream.window_len(), 16);
    }

    #[test]
    fn adapts_to_drift() {
        // Phase 1 around the origin; phase 2 around (100, 100). After
        // enough phase-2 samples, a point near (100, 100) must score as
        // normal again.
        let mut stream = StreamingSuod::new(template(), 48, 16).unwrap();
        for i in 0..48 {
            stream.push(&inlier(i)).unwrap();
        }
        let before = stream.score(&[100.3, 100.3]).unwrap();
        for i in 0..96 {
            let mut row = inlier(i);
            row[0] += 100.0;
            row[1] += 100.0;
            stream.push(&row).unwrap();
        }
        let after = stream.score(&[100.3, 100.3]).unwrap();
        assert!(after < before, "drift not absorbed: {after} vs {before}");
    }

    #[test]
    fn dimension_changes_rejected() {
        let mut stream = StreamingSuod::new(template(), 16, 8).unwrap();
        stream.push(&[0.0, 0.0]).unwrap();
        assert!(stream.push(&[0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn validates_construction() {
        assert!(StreamingSuod::new(template(), 4, 8).is_err());
        assert!(StreamingSuod::new(template(), 16, 0).is_err());
        // Invalid template fails at construction.
        let bad = Suod::builder(); // empty pool
        assert!(StreamingSuod::new(bad, 16, 8).is_err());
    }

    #[test]
    fn score_and_push_combines() {
        let mut stream = StreamingSuod::new(template(), 32, 16).unwrap();
        for i in 0..32 {
            stream.push(&inlier(i)).unwrap();
        }
        let len_before = stream.window_len();
        let s = stream.score_and_push(&[0.2, 0.2]).unwrap();
        assert!(s.is_finite());
        assert_eq!(stream.window_len(), len_before.min(31) + 1);
    }
}
