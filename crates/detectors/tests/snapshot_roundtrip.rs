//! Round-trip tests for per-detector `suod-pool/1` state serialization:
//! save → load → save must be byte-identical and reloaded detectors must
//! score bitwise-equal to the originals.

use suod_detectors::{
    read_detector, read_error, write_detector, write_error, AbodDetector, CblofDetector,
    ChaosConfig, ChaosDetector, CofDetector, Detector, Error, FeatureBagging, HbosDetector,
    IsolationForest, Kernel, KnnDetector, KnnMethod, LodaDetector, LofDetector, LoopDetector,
    OcsvmDetector, PcaDetector,
};
use suod_linalg::{DistanceMetric, Matrix, SnapshotReader, SnapshotWriter};

fn train_data() -> Matrix {
    let mut rows: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let a = (i % 8) as f64 * 0.31;
            let b = (i / 8) as f64 * 0.17;
            vec![a, b, (a - b).sin(), 0.05 * a * b]
        })
        .collect();
    rows.push(vec![6.0, -5.5, 4.0, 3.0]);
    rows.push(vec![-4.0, 6.5, -3.0, 2.0]);
    Matrix::from_rows(&rows).unwrap()
}

fn query_data() -> Matrix {
    Matrix::from_rows(&[
        vec![0.1, 0.2, 0.3, 0.0],
        vec![5.0, -5.0, 3.5, 2.5],
        vec![1.0, 1.0, 0.0, 0.1],
    ])
    .unwrap()
}

fn fitted_pool() -> Vec<Box<dyn Detector>> {
    let x = train_data();
    let mut pool: Vec<Box<dyn Detector>> = vec![
        Box::new(KnnDetector::new(5, KnnMethod::Largest).unwrap()),
        Box::new(
            KnnDetector::new(4, KnnMethod::Mean)
                .unwrap()
                .with_metric(DistanceMetric::Manhattan),
        ),
        Box::new(KnnDetector::new(3, KnnMethod::Median).unwrap()),
        Box::new(LofDetector::new(6).unwrap()),
        Box::new(AbodDetector::new(5).unwrap()),
        Box::new(CofDetector::new(5).unwrap()),
        Box::new(LoopDetector::new(5).unwrap()),
        Box::new(HbosDetector::new(8, 0.5).unwrap()),
        Box::new(IsolationForest::new(12, 7).unwrap()),
        Box::new(CblofDetector::new(3, 42).unwrap()),
        Box::new(OcsvmDetector::new(0.2, Kernel::Rbf { gamma: 0.5 }).unwrap()),
        Box::new(LodaDetector::new(10, 12, 3).unwrap()),
        Box::new(PcaDetector::new(0.8).unwrap()),
        Box::new(FeatureBagging::new(4, 5, 9).unwrap()),
        Box::new(ChaosDetector::new(
            Box::new(KnnDetector::new(5, KnnMethod::Largest).unwrap()),
            ChaosConfig::default(),
        )),
    ];
    for det in &mut pool {
        det.fit(&x).unwrap();
    }
    pool
}

#[test]
fn every_detector_round_trips_bitwise() {
    let q = query_data();
    for det in fitted_pool() {
        let mut w = SnapshotWriter::new();
        write_detector(det.as_ref(), &mut w).unwrap();
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        let loaded = read_detector(&mut r, 2).unwrap();
        assert!(r.is_exhausted(), "{}: trailing bytes", det.name());
        assert_eq!(loaded.name(), det.name());
        assert!(loaded.is_fitted(), "{}: lost fitted state", det.name());

        // save(load(save(d))) is byte-identical.
        let mut w2 = SnapshotWriter::new();
        write_detector(loaded.as_ref(), &mut w2).unwrap();
        assert_eq!(w2.as_bytes(), &bytes[..], "{}: bytes drifted", det.name());

        // Scores are bitwise equal, including training scores.
        let (a, b) = (det.decision_function(&q), loaded.decision_function(&q));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{}: score drift", det.name());
                }
            }
            (Err(_), Err(_)) => {} // chaos predict-time injection: both fail alike
            (a, b) => panic!("{}: outcome mismatch {a:?} vs {b:?}", det.name()),
        }
        let (ta, tb) = (
            det.training_scores().unwrap(),
            loaded.training_scores().unwrap(),
        );
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{}: train drift", det.name());
        }
    }
}

#[test]
fn load_is_thread_count_invariant() {
    let q = query_data();
    for det in fitted_pool() {
        let mut w = SnapshotWriter::new();
        write_detector(det.as_ref(), &mut w).unwrap();
        let bytes = w.into_bytes();
        let one = read_detector(&mut SnapshotReader::new(&bytes), 1).unwrap();
        let eight = read_detector(&mut SnapshotReader::new(&bytes), 8).unwrap();
        if let (Ok(a), Ok(b)) = (one.decision_function(&q), eight.decision_function(&q)) {
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}: thread drift", det.name());
            }
        }
    }
}

#[test]
fn unfitted_detector_round_trips() {
    let det = KnnDetector::new(5, KnnMethod::Largest).unwrap();
    let mut w = SnapshotWriter::new();
    write_detector(&det, &mut w).unwrap();
    let loaded = read_detector(&mut SnapshotReader::new(w.as_bytes()), 1).unwrap();
    assert!(!loaded.is_fitted());
}

#[test]
fn unknown_name_and_truncation_are_typed_errors() {
    let mut w = SnapshotWriter::new();
    w.write_str("not_a_detector");
    w.write_bytes(&[]);
    assert!(read_detector(&mut SnapshotReader::new(w.as_bytes()), 1).is_err());

    let mut w = SnapshotWriter::new();
    let det = {
        let mut d = HbosDetector::new(8, 0.5).unwrap();
        d.fit(&train_data()).unwrap();
        d
    };
    write_detector(&det, &mut w).unwrap();
    let bytes = w.into_bytes();
    let truncated = &bytes[..bytes.len() - 3];
    assert!(read_detector(&mut SnapshotReader::new(truncated), 1).is_err());
}

#[test]
fn error_codec_is_canonical() {
    let causes = vec![
        Error::NotFitted("LofDetector"),
        Error::InvalidParameter("bad k".into()),
        Error::InsufficientData {
            needed: "at least 3 samples".into(),
            got: 1,
        },
        Error::DimensionMismatch {
            expected: 4,
            actual: 2,
        },
        Error::Linalg(suod_linalg::Error::Empty("matmul")),
        Error::NonFiniteInput("abod fit"),
        Error::DegenerateData("all rows identical".into()),
        Error::NonConvergence("smo".into()),
        Error::Panicked("boom".into()),
    ];
    for cause in causes {
        let mut w = SnapshotWriter::new();
        write_error(&cause, &mut w);
        let bytes = w.into_bytes();
        let got = read_error(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(got, cause);
        let mut w2 = SnapshotWriter::new();
        write_error(&got, &mut w2);
        assert_eq!(w2.as_bytes(), &bytes[..]);
    }
}
