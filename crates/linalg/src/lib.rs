#![warn(missing_docs)]

//! Dense linear algebra and statistics substrate for the SUOD reproduction.
//!
//! Every higher-level crate in this workspace (detectors, projectors,
//! supervised regressors, the scheduler's meta-feature extractor) operates
//! on the [`Matrix`] type defined here. The crate is intentionally
//! self-contained: no BLAS/LAPACK bindings, just portable, well-tested
//! `f64` routines sized for the datasets the paper evaluates on
//! (up to ~half a million rows, a few hundred columns).
//!
//! # Modules
//!
//! * [`matrix`] — row-major dense matrix with shape-checked operations.
//! * [`eigen`] — cyclic Jacobi eigensolver for symmetric matrices (used by
//!   the PCA projection baseline).
//! * [`distance`] — distance metrics and k-nearest-neighbour search
//!   (brute force + automatic KD-tree backend) shared by kNN/LOF/ABOD/LoOP.
//! * [`gemm`] — packed, register-blocked GEMM micro-kernels with an
//!   explicit AVX2 lane ([`SimdLane`], runtime-detected, scalar
//!   fallback), the [`DistanceBackend`] selector (naive | blocked |
//!   gemm) behind the brute-force distance paths, the opt-in
//!   mixed-precision mode ([`Precision`]: f32 packed storage, f64
//!   accumulation), the configurable KD-tree crossover
//!   ([`KernelConfig`]), and the kernel-work counters ([`KernelStats`]).
//! * [`kdtree`] — exact KD-tree used by [`distance::KnnIndex`] on
//!   low-dimensional data.
//! * [`stats`] — column statistics, standardization, and descriptive
//!   statistics used for meta-features.
//! * [`rank`] — argsort, average-tie ranking and top-k selection used by
//!   the metrics crate and the BPS scheduler.
//! * [`parallel`] — scoped-thread row-block helpers behind the
//!   data-parallel kernels ([`pairwise_distances_parallel`],
//!   [`Matrix::matmul_blocked`], [`KnnIndex::query_batch_parallel`]).
//!   Every kernel takes an explicit thread count and produces
//!   bit-identical results for every value of it.
//! * [`neighbor_cache`] — fingerprint-keyed [`NeighborCache`] that builds
//!   each [`KnnIndex`] once, sweeps leave-one-out neighbours once at the
//!   pooled maximum k, and serves exact sorted-prefix views to every
//!   proximity detector sharing the same training matrix.
//! * [`hnsw`] — seeded, deterministic approximate neighbor graph
//!   ([`HnswGraph`]) selected through [`NeighborBackend::Hnsw`]; turns the
//!   exact O(n²) self-sweep into an O(n·log n) build plus beam searches,
//!   with an exactness fallback for small n and non-Euclidean metrics.
//!
//! # Example
//!
//! ```
//! use suod_linalg::Matrix;
//!
//! # fn main() -> Result<(), suod_linalg::Error> {
//! let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
//! let xt = x.transpose();
//! let g = x.matmul(&xt)?; // Gram matrix
//! assert_eq!(g.get(0, 0), 5.0);
//! # Ok(())
//! # }
//! ```

pub mod distance;
pub mod eigen;
pub mod gemm;
pub mod hnsw;
pub mod kdtree;
pub mod matrix;
pub mod neighbor_cache;
pub mod parallel;
pub mod rank;
pub mod snapshot;
pub mod stats;

pub use distance::{
    pairwise_distances, pairwise_distances_backend, pairwise_distances_parallel,
    pairwise_distances_symmetric, pairwise_distances_symmetric_backend,
    pairwise_distances_symmetric_parallel, pairwise_distances_symmetric_with,
    pairwise_distances_with, DistanceMetric, KnnIndex, Neighbor,
};
pub use eigen::{symmetric_eigen, EigenDecomposition};
pub use gemm::{
    gram, matmul_packed, mixed_distance_error_bound, row_sq_norms, row_sq_norms_mixed,
    set_simd_lane_override, DistanceBackend, KernelConfig, KernelCounters, KernelStats, Precision,
    SimdLane, DEFAULT_KDTREE_CROSSOVER_DIM, DEFAULT_KDTREE_MIN_ROWS, F32_UNIT_ROUNDOFF,
};
pub use hnsw::{
    HnswGraph, HnswParams, NeighborBackend, DEFAULT_EF_CONSTRUCTION, DEFAULT_EF_SEARCH,
    DEFAULT_HNSW_M, DEFAULT_HNSW_MIN_ROWS,
};
pub use matrix::Matrix;
pub use neighbor_cache::{
    emit_kernel_counters, DataFingerprint, NeighborCache, NeighborCacheStats, NeighborGraph,
    SelfNeighbors,
};
pub use snapshot::{SnapshotReader, SnapshotWriter};

use std::fmt;

/// Errors produced by shape-checked linear algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor received data whose length does not match `rows * cols`.
    BadDimensions {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// An operation required a non-empty matrix but got zero rows or columns.
    Empty(&'static str),
    /// An iterative routine failed to converge.
    NoConvergence(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::BadDimensions { expected, actual } => write!(
                f,
                "data length {actual} does not match requested shape ({expected} elements)"
            ),
            Error::Empty(op) => write!(f, "{op} requires a non-empty matrix"),
            Error::NoConvergence(what) => write!(f, "{what} failed to converge"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
