//! k-nearest-neighbour regressor.
//!
//! Included as a PSA approximator baseline: it is simple and accurate but
//! shares the *prediction* complexity of the proximity-based detectors it
//! would replace, so it deliberately violates the paper's requirement that
//! "the chosen approximator's prediction cost should be lower than the
//! underlying unsupervised model" (§3.4). The ablation bench uses it to
//! demonstrate why tree ensembles are the right default.

use crate::{check_fit_inputs, Error, Regressor, Result};
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// k-NN regressor: predicts the mean target of the k nearest training rows.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
/// use suod_supervised::{KnnRegressor, Regressor};
///
/// # fn main() -> Result<(), suod_supervised::Error> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]).unwrap();
/// let mut m = KnnRegressor::new(2)?;
/// m.fit(&x, &[0.0, 1.0, 10.0])?;
/// let p = m.predict(&Matrix::from_rows(&[vec![0.4]]).unwrap())?;
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    index: Option<KnnIndex>,
    targets: Vec<f64>,
}

impl KnnRegressor {
    /// Creates a k-NN regressor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("k must be >= 1".into()));
        }
        Ok(Self {
            k,
            index: None,
            targets: Vec::new(),
        })
    }

    /// The neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.index = Some(KnnIndex::build(x, DistanceMetric::Euclidean)?);
        self.targets = y.to_vec();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self
            .index
            .as_ref()
            .ok_or(Error::NotFitted("KnnRegressor"))?;
        let neighbors = index.query_batch(x, self.k)?;
        Ok(neighbors
            .into_iter()
            .map(|nn| {
                nn.iter().map(|n| self.targets[n.index]).sum::<f64>() / nn.len().max(1) as f64
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "knn_regressor"
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        match &self.index {
            Some(ix) => {
                w.write_bool(true);
                ix.snapshot_write(w);
            }
            None => w.write_bool(false),
        }
        w.write_f64s(&self.targets);
        Ok(())
    }
}

impl KnnRegressor {
    /// Reads a model written by [`Regressor::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let k = r.read_usize()?;
        let index = if r.read_bool()? {
            Some(KnnIndex::snapshot_read(r, 1)?)
        } else {
            None
        };
        Ok(Self {
            k,
            index,
            targets: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_k1() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0]]).unwrap();
        let mut m = KnnRegressor::new(1).unwrap();
        m.fit(&x, &[1.0, 9.0]).unwrap();
        assert_eq!(m.predict(&x).unwrap(), vec![1.0, 9.0]);
    }

    #[test]
    fn averages_k_neighbors() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]).unwrap();
        let mut m = KnnRegressor::new(2).unwrap();
        m.fit(&x, &[0.0, 2.0, 50.0]).unwrap();
        let p = m
            .predict(&Matrix::from_rows(&[vec![0.5]]).unwrap())
            .unwrap();
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn k_larger_than_train_clamps() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut m = KnnRegressor::new(10).unwrap();
        m.fit(&x, &[2.0, 4.0]).unwrap();
        let p = m.predict(&x).unwrap();
        assert_eq!(p, vec![3.0, 3.0]);
    }

    #[test]
    fn zero_k_rejected() {
        assert!(KnnRegressor::new(0).is_err());
    }

    #[test]
    fn not_fitted_error() {
        let m = KnnRegressor::new(3).unwrap();
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 1)).unwrap_err(),
            Error::NotFitted(_)
        ));
    }

    #[test]
    fn dimension_mismatch_error() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut m = KnnRegressor::new(1).unwrap();
        m.fit(&x, &[0.0, 1.0]).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }
}
