//! Angle-Based Outlier Detection (Kriegel et al. 2008), fast variant.
//!
//! For each point, consider the vectors to its `k` nearest neighbours.
//! Inliers deep inside the data see neighbours in all directions, so the
//! weighted cosine spectrum over neighbour pairs has high variance;
//! outliers see all other points within a narrow cone, so the variance is
//! small. The angle-based outlier factor (ABOF) is the variance over
//! neighbour pairs `(j, l)` of `<d_j, d_l> / (|d_j|^2 |d_l|^2)` — the
//! 1/(|d_j||d_l|) weighting makes far pairs count less, which is what
//! keeps ABOD meaningful in high dimensions.
//!
//! Scores are negated (`-ABOF`) so that larger = more outlying, matching
//! the PyOD convention used across this workspace.

use crate::{check_dims, validate_finite, Detector, Error, FitContext, Result};
use std::sync::Arc;
use suod_linalg::distance::Neighbor;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// Fast ABOD detector (ABOF over the k-nearest-neighbour cone).
#[derive(Debug, Clone)]
pub struct AbodDetector {
    k: usize,
    index: Option<Arc<KnnIndex>>,
    train_scores: Vec<f64>,
}

impl AbodDetector {
    /// Creates a fast-ABOD detector evaluating angles over `k` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k < 2` (at least one
    /// neighbour pair is required).
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter(
                "ABOD needs n_neighbors >= 2".into(),
            ));
        }
        Ok(Self {
            k,
            index: None,
            train_scores: Vec::new(),
        })
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// ABOF of `point` against the given neighbour rows; `None` when fewer
    /// than two usable neighbours exist (duplicates are skipped).
    ///
    /// All `O(k²)` inner products come from one packed-gram contraction
    /// over the difference matrix `D` (`d_j = neighbor_j − point`):
    /// `G = D·Dᵀ` supplies both the squared norms (diagonal) and the
    /// pair dots. The micro-kernel accumulates every element over
    /// ascending feature index in a single register — the same reduction
    /// order as the scalar `dot`/`norm_sq` it replaces — so ABOF values
    /// are bitwise identical to the historical per-pair loops.
    fn abof(point: &[f64], neighbors: &Matrix) -> Option<f64> {
        let m = neighbors.nrows();
        let mut diffs = Matrix::zeros(m, neighbors.ncols());
        for j in 0..m {
            let row = diffs.row_mut(j);
            for (t, (&a, &b)) in neighbors.row(j).iter().zip(point).enumerate() {
                row[t] = a - b;
            }
        }
        let g = suod_linalg::gram(&diffs, &diffs, 1, None).expect("diff gram shapes agree");
        let mut values: Vec<f64> = Vec::new();
        for j in 0..m {
            let nj = g.get(j, j);
            if nj <= 1e-300 {
                continue;
            }
            for l in (j + 1)..m {
                let nl = g.get(l, l);
                if nl <= 1e-300 {
                    continue;
                }
                values.push(g.get(j, l) / (nj * nl));
            }
        }
        if values.len() < 2 {
            return None;
        }
        Some(suod_linalg::stats::variance(&values))
    }

    fn score_one(index: &KnnIndex, point: &[f64], nn: &[Neighbor]) -> f64 {
        let idx: Vec<usize> = nn.iter().map(|n| n.index).collect();
        let neighbors = index.train_data().select_rows(&idx);
        match Self::abof(point, &neighbors) {
            // Low ABOF variance = outlier; negate for our convention.
            Some(v) => -v,
            // Degenerate neighbourhoods (all duplicates) are maximally
            // concentrated: treat as highly outlying.
            None => 0.0,
        }
    }
}

impl Detector for AbodDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.fit_with_context(x, &FitContext::default())
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        if x.nrows() < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: x.nrows(),
            });
        }
        // A single NaN cell silently poisons the cosine-variance
        // accumulation (every neighbourhood containing the row goes NaN);
        // reject typed instead.
        validate_finite(x, "abod fit")?;
        // Leave-one-out lists come batched: pool-shared prefix views when
        // `ctx` carries a cache, the symmetric-distance fast path
        // otherwise.
        let k = self.k.min(x.nrows() - 1);
        let (index, neighbors) = ctx.self_neighbors(x, DistanceMetric::Euclidean, k)?;
        self.train_scores = neighbors
            .iter()
            .enumerate()
            .map(|(i, nn)| Self::score_one(&index, x.row(i), nn))
            .collect();
        self.index = Some(index);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self
            .index
            .as_ref()
            .ok_or(Error::NotFitted("AbodDetector"))?;
        check_dims(index.train_data().ncols(), x)?;
        let k = self.k.min(index.len());
        // Batched neighbour lookup hits the tiled brute-force fast path
        // on blocked/gemm indexes; results equal per-row queries exactly.
        let batch = index.query_batch(x, k)?;
        Ok(batch
            .iter()
            .enumerate()
            .map(|(i, nn)| Self::score_one(index, x.row(i), nn))
            .collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.index.is_none() {
            return Err(Error::NotFitted("AbodDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "abod"
    }

    fn is_fitted(&self) -> bool {
        self.index.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        crate::write_opt_index(self.index.as_deref(), w);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl AbodDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        Ok(Self {
            k: r.read_usize()?,
            index: crate::read_opt_index(r, n_threads)?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_outlier() -> Matrix {
        // Points on a circle (inliers see wide angles) plus a far outlier.
        let mut rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let t = i as f64 * std::f64::consts::TAU / 12.0;
                vec![t.cos(), t.sin()]
            })
            .collect();
        rows.push(vec![15.0, 0.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let mut det = AbodDetector::new(6).unwrap();
        det.fit(&ring_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 12);
    }

    #[test]
    fn uniform_scaling_preserves_ranking() {
        // ABOF scales as 1/s^8 under data scaling by s — a per-dataset
        // monotone transform, so the outlier ranking must be unchanged.
        let x = ring_with_outlier();
        let scaled = x.map(|v| v * 3.0);
        let mut a = AbodDetector::new(6).unwrap();
        let mut b = AbodDetector::new(6).unwrap();
        a.fit(&x).unwrap();
        b.fit(&scaled).unwrap();
        let ra = suod_linalg::rank::argsort_desc(&a.training_scores().unwrap());
        let rb = suod_linalg::rank::argsort_desc(&b.training_scores().unwrap());
        assert_eq!(ra[0], rb[0]);
        assert_eq!(ra[0], 12);
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut det = AbodDetector::new(6).unwrap();
        det.fit(&ring_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 0.0], vec![40.0, 0.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > s[0], "far query should outscore centre: {s:?}");
    }

    #[test]
    fn duplicates_handled() {
        let mut rows = vec![vec![0.0, 0.0]; 4];
        rows.push(vec![1.0, 1.0]);
        rows.push(vec![2.0, 0.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = AbodDetector::new(3).unwrap();
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nan_input_rejected_typed() {
        let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();
        rows[3][1] = f64::NAN;
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = AbodDetector::new(3).unwrap();
        assert!(matches!(det.fit(&x), Err(Error::NonFiniteInput(_))));
        assert!(!det.is_fitted());
    }

    #[test]
    fn validates_inputs() {
        assert!(AbodDetector::new(1).is_err());
        let mut det = AbodDetector::new(3).unwrap();
        assert!(det.fit(&Matrix::zeros(2, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&ring_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 7)).is_err());
    }

    #[test]
    fn scores_are_nonpositive() {
        // -variance is always <= 0.
        let mut det = AbodDetector::new(5).unwrap();
        det.fit(&ring_with_outlier()).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|&v| v <= 0.0));
    }
}
