//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the common currency of the workspace. It favours
//! predictable, shape-checked operations over cleverness: constructors
//! validate dimensions and return [`crate::Error`] instead of
//! panicking, and hot loops (`matmul`, `dot_row`) operate on contiguous
//! row slices so the optimizer can vectorize them.

use crate::{Error, Result};

/// k-tile width for [`Matrix::matmul_blocked`]: 64 doubles = 512 bytes
/// per `a` segment, keeping a tile of `b` rows resident in L1/L2 while a
/// whole row block streams through it.
const MATMUL_K_TILE: usize = 64;

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.row(1), &[4., 5., 6.]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDimensions`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::BadDimensions {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDimensions`] when rows have differing lengths and
    /// [`Error::Empty`] when `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let n = rows.len();
        if n == 0 {
            return Err(Error::Empty("Matrix::from_rows"));
        }
        let d = rows[0].len();
        let mut data = Vec::with_capacity(n * d);
        for r in rows {
            if r.len() != d {
                return Err(Error::BadDimensions {
                    expected: d,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: n,
            cols: d,
            data,
        })
    }

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a single-column matrix from a vector.
    pub fn column_vector(v: Vec<f64>) -> Self {
        let rows = v.len();
        Self {
            rows,
            cols: 1,
            data: v,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= nrows()` or `c >= ncols()`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= nrows()` or `c >= ncols()`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= nrows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= nrows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics when `c >= ncols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the inner loop walks contiguous rows of `other`
        // and `out`, which the autovectorizer handles well.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Cache-blocked matrix product `self * other`, k-tiled and
    /// parallelized over row blocks.
    ///
    /// The k loop is tiled (`MATMUL_K_TILE` wide) *outside* the row
    /// loop, so each tile of `other`'s rows stays hot in cache while
    /// every row of the thread's block consumes it. Per output element
    /// the accumulation still runs over `k` in strictly ascending order
    /// — exactly the order [`matmul`](Self::matmul) uses — so the result
    /// is **bit-identical** to `matmul` for every `n_threads`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `self.ncols() != other.nrows()`.
    pub fn matmul_blocked(&self, other: &Matrix, n_threads: usize) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let inner = self.cols;
        let out_cols = other.cols;
        let mut out = Matrix::zeros(self.rows, out_cols);
        let a_data = &self.data;
        let b_data = &other.data;
        crate::parallel::par_row_blocks(&mut out.data, out_cols, n_threads, |rows, block| {
            for k0 in (0..inner).step_by(MATMUL_K_TILE) {
                let k1 = (k0 + MATMUL_K_TILE).min(inner);
                for (offset, out_row) in block.chunks_mut(out_cols).enumerate() {
                    let i = rows.start + offset;
                    let a_tile = &a_data[i * inner + k0..i * inner + k1];
                    for (t, &a) in a_tile.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let k = k0 + t;
                        let b_row = &b_data[k * out_cols..(k + 1) * out_cols];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.rows_iter().map(|row| dot(row, v)).collect())
    }

    /// Selects a subset of rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Selects a subset of columns into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(Error::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Appends the columns of `other` to the right of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(Error::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    a.iter().map(|&x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_checks_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, Error::BadDimensions { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            Error::Empty(_)
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            Error::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matmul_blocked_bit_identical() {
        // Shapes straddling the k-tile width and odd row counts so the
        // block split is uneven.
        for (m, k, n) in [(7, 5, 9), (33, 70, 21), (65, 130, 3), (1, 200, 1)] {
            let mut s = (m * 1000 + k * 10 + n) as u64;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let a = Matrix::from_vec(m, k, (0..m * k).map(|_| next()).collect()).unwrap();
            let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect()).unwrap();
            let base = a.matmul(&b).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let blocked = a.matmul_blocked(&b, threads).unwrap();
                assert_eq!(
                    blocked.as_slice(),
                    base.as_slice(),
                    "shape ({m},{k},{n}) threads={threads}"
                );
            }
        }
    }

    #[test]
    fn matmul_blocked_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul_blocked(&b, 2).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        let expected = a.matmul(&Matrix::column_vector(v)).unwrap().into_vec();
        assert_eq!(got, expected);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_vec(3, 3, (1..=9).map(|v| v as f64).collect()).unwrap();
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7., 8., 9.]);
        assert_eq!(r.row(1), &[1., 2., 3.]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2., 5., 8.]);
    }

    #[test]
    fn vstack_works_and_checks() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::filled(2, 2, 1.0);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[1.0, 1.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn hstack_works_and_checks() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn map_and_scale() {
        let m = Matrix::filled(2, 2, 2.0);
        assert_eq!(m.map(|v| v * v).as_slice(), &[4.0; 4]);
        let mut m2 = m.clone();
        m2.scale_in_place(0.5);
        assert_eq!(m2.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1., 2.], &[3., 4.]), 11.0);
        assert_eq!(norm_sq(&[3., 4.]), 25.0);
    }
}
