//! Shared neighbor-graph cache for proximity detectors.
//!
//! SUOD's heterogeneous pools are dominated by proximity detectors (kNN,
//! LOF, LoOP, COF, ABOD) whose fit cost is one [`KnnIndex`] build plus one
//! leave-one-out k-nearest-neighbour sweep — and a naive pool redoes both
//! from scratch for every model trained on the same matrix. Following the
//! operator-decomposition observation of TOD (Zhao et al., 2021), this
//! module factors that work out: a [`NeighborCache`] is a concurrent,
//! fingerprint-keyed store that builds each index **exactly once** per
//! `(data, metric)` pair, runs one [`KnnIndex::self_query_batch`] at the
//! **maximum k requested across the pool**, and serves sorted-prefix
//! slices to every detector that asks for a smaller k.
//!
//! Prefix serving is exact, not approximate: neighbour lists are totally
//! ordered by `(distance, index)`, so the first `k` entries of a list
//! computed at `k_max >= k` are bit-identical to a direct
//! `self_query_batch(k, t)` (see the property tests in
//! `tests/properties.rs`). A pool of `m` proximity models over `g`
//! distinct feature spaces therefore pays `O(g · n log n)` index/query
//! work instead of `O(m · n log n)`.
//!
//! # Example
//!
//! ```
//! use suod_linalg::{DistanceMetric, Matrix, NeighborCache};
//!
//! # fn main() -> Result<(), suod_linalg::Error> {
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![9.0]])?;
//! let cache = NeighborCache::new();
//! // First call builds the index and the k=3 neighbour lists...
//! let g3 = cache.get_or_build(&x, DistanceMetric::Euclidean, 3, 1)?;
//! // ...later, smaller-k requests are served as prefix views.
//! let g2 = cache.get_or_build(&x, DistanceMetric::Euclidean, 2, 1)?;
//! assert_eq!(g3.prefix(0, 2), g2.prefix(0, 2));
//! assert_eq!(cache.stats().builds, 1);
//! assert_eq!(cache.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

use crate::distance::{DistanceMetric, KnnIndex, Neighbor};
use crate::gemm::{KernelConfig, KernelCounters};
use crate::{Matrix, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use suod_observe::{Counter, Observer, SpanAttrs, Stage};

/// Content identity of a training matrix: shape plus two independent
/// 64-bit hashes over the raw `f64` bits (order-sensitive). Two matrices
/// with equal fingerprints are treated as the same cache key, so the
/// probability of a spurious collision must be negligible — with 128
/// independent hash bits it is ~2^-128 per pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataFingerprint {
    rows: usize,
    cols: usize,
    hash_a: u64,
    hash_b: u64,
}

impl DataFingerprint {
    /// Fingerprints the contents of `x` (one `O(n d)` pass).
    pub fn of(x: &Matrix) -> Self {
        let mut a = 0x51_7c_c1_b7_27_22_0a_95u64; // FNV-ish offset basis
        let mut b = 0x9e_37_79_b9_7f_4a_7c_15u64;
        for &v in x.as_slice() {
            let bits = v.to_bits();
            a = splitmix64(a ^ bits);
            b = splitmix64(b.wrapping_add(bits).rotate_left(17));
        }
        Self {
            rows: x.nrows(),
            cols: x.ncols(),
            hash_a: a,
            hash_b: b,
        }
    }

    /// Number of rows of the fingerprinted matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Appends the fingerprint to a `suod-pool/1` snapshot body.
    pub fn snapshot_write(&self, w: &mut crate::SnapshotWriter) {
        w.write_usize(self.rows);
        w.write_usize(self.cols);
        w.write_u64(self.hash_a);
        w.write_u64(self.hash_b);
    }

    /// Reads a fingerprint written by [`DataFingerprint::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`](crate::Error::InvalidParameter)
    /// on truncated input.
    pub fn snapshot_read(r: &mut crate::SnapshotReader<'_>) -> Result<Self> {
        Ok(Self {
            rows: r.read_usize()?,
            cols: r.read_usize()?,
            hash_a: r.read_u64()?,
            hash_b: r.read_u64()?,
        })
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One built cache entry: the index over a training matrix plus its
/// leave-one-out neighbour lists computed at `k_built`.
///
/// Lists are sorted ascending by `(distance, index)`;
/// [`prefix`](NeighborGraph::prefix) serves any `k <= k_built` as a slice
/// with zero re-sorting or copying.
#[derive(Debug)]
pub struct NeighborGraph {
    index: Arc<KnnIndex>,
    k_built: usize,
    /// `lists[i]` = leave-one-out neighbours of training row `i`, length
    /// `min(k_built, n - 1)`.
    lists: Vec<Vec<Neighbor>>,
}

impl NeighborGraph {
    /// Builds a graph directly (no cache): one index build plus one
    /// parallel leave-one-out sweep at `k`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`](crate::Error::Empty) when `x` has no rows.
    pub fn build(x: &Matrix, metric: DistanceMetric, k: usize, n_threads: usize) -> Result<Self> {
        Self::build_with(x, metric, k, n_threads, KernelConfig::default())
    }

    /// [`build`](Self::build) with explicit kernel tuning (distance
    /// backend + KD-tree crossover) for the index and its sweep.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`](crate::Error::Empty) when `x` has no rows.
    pub fn build_with(
        x: &Matrix,
        metric: DistanceMetric,
        k: usize,
        n_threads: usize,
        config: KernelConfig,
    ) -> Result<Self> {
        Self::build_observed(
            x,
            metric,
            k,
            n_threads,
            config,
            suod_observe::noop().as_ref(),
        )
    }

    /// [`build_with`](Self::build_with) reporting the two phases to
    /// `observer` as separate spans: [`Stage::NeighborBuild`] wraps the
    /// index construction (where an approximate backend pays its graph
    /// build) and [`Stage::NeighborQuery`] wraps the leave-one-out sweep
    /// (where it earns the speedup) — so recall/speed tradeoffs are
    /// visible per phase in traces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`](crate::Error::Empty) when `x` has no rows.
    pub fn build_observed(
        x: &Matrix,
        metric: DistanceMetric,
        k: usize,
        n_threads: usize,
        config: KernelConfig,
        observer: &dyn Observer,
    ) -> Result<Self> {
        let span = observer.span_begin(Stage::NeighborBuild, SpanAttrs::none());
        let index = KnnIndex::build_with_threads(x, metric, config, n_threads.max(1));
        observer.span_end(span);
        let index = Arc::new(index?);
        let span = observer.span_begin(Stage::NeighborQuery, SpanAttrs::none());
        let lists = index.self_query_batch(k, n_threads.max(1));
        observer.span_end(span);
        Ok(Self {
            index,
            k_built: k,
            lists,
        })
    }

    /// The shared index over the training matrix.
    pub fn index(&self) -> &Arc<KnnIndex> {
        &self.index
    }

    /// The k this graph's lists were computed at.
    pub fn k_built(&self) -> usize {
        self.k_built
    }

    /// Number of training rows.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// `true` when the graph covers no rows (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The first `k` leave-one-out neighbours of row `i` — bit-identical
    /// to `self_query_batch(k, t)[i]` for every `k <= k_built`.
    pub fn prefix(&self, i: usize, k: usize) -> &[Neighbor] {
        let l = &self.lists[i];
        &l[..k.min(l.len())]
    }
}

/// Leave-one-out neighbour lists handed to a detector: either owned
/// (standalone fit, no cache) or a prefix view into a shared
/// [`NeighborGraph`]. Both present the same slice-per-row API, and the
/// slices are bit-identical between the two forms.
#[derive(Debug, Clone)]
pub enum SelfNeighbors {
    /// Detector-owned lists from a direct `self_query_batch(k, t)`.
    Owned(Vec<Vec<Neighbor>>),
    /// Prefix views at `k` into a pool-shared graph built at `k_max >= k`.
    Shared {
        /// The shared graph.
        graph: Arc<NeighborGraph>,
        /// The prefix length this detector asked for.
        k: usize,
    },
}

impl SelfNeighbors {
    /// Number of training rows covered.
    pub fn len(&self) -> usize {
        match self {
            SelfNeighbors::Owned(lists) => lists.len(),
            SelfNeighbors::Shared { graph, .. } => graph.len(),
        }
    }

    /// `true` when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbour slice of training row `i`.
    pub fn get(&self, i: usize) -> &[Neighbor] {
        match self {
            SelfNeighbors::Owned(lists) => &lists[i],
            SelfNeighbors::Shared { graph, k } => graph.prefix(i, *k),
        }
    }

    /// Iterates the per-row neighbour slices in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[Neighbor]> {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// Counters describing one cache's lifetime (see [`NeighborCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborCacheStats {
    /// Requests served from an already-built graph (prefix slices).
    pub hits: u64,
    /// Requests that found no usable graph and had to build one.
    pub misses: u64,
    /// Graphs built (`misses` counts rebuilds at a larger k too, so
    /// `builds == misses`; kept separate for forward compatibility).
    pub builds: u64,
    /// Total wall time spent building indexes and neighbour lists.
    pub build_time: Duration,
    /// Builds that requested the approximate neighbor backend but routed
    /// to the exact path instead (small n or non-Euclidean metric) — the
    /// exactness-fallback counter, summed over this cache's builds.
    pub ann_fallbacks: u64,
}

/// Per-key cache slot. The inner mutex serializes builders of the same
/// entry (the second requester blocks until the first finishes, then hits)
/// while leaving distinct keys free to build in parallel.
#[derive(Debug, Default)]
struct Slot {
    /// Largest k any pool member pre-registered for this key; builds are
    /// widened to it so one sweep serves the whole group.
    registered_k: usize,
    graph: Option<Arc<NeighborGraph>>,
}

/// One mutex-guarded slot per `(data, metric)` identity.
type SlotMap = HashMap<(DataFingerprint, MetricKey), Arc<Mutex<Slot>>>;

/// A concurrent, fingerprint-keyed store of [`NeighborGraph`]s.
///
/// Keys are `(DataFingerprint, DistanceMetric)`; see the
/// [module docs](self) for the sharing model. All methods take `&self`
/// and are safe to call from many executor workers at once.
pub struct NeighborCache {
    slots: Mutex<SlotMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_nanos: AtomicU64,
    ann_fallbacks: AtomicU64,
    /// Instrumentation sink: hits/misses emit [`Counter`] events and each
    /// graph build is wrapped in a [`Stage::NeighborBuild`] span. The
    /// internal atomic counters always run regardless, so
    /// [`stats`](Self::stats) stays authoritative with the no-op observer.
    observer: Arc<dyn Observer>,
    /// Kernel tuning applied to every graph this cache builds.
    kernel: KernelConfig,
}

impl std::fmt::Debug for NeighborCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborCache")
            .field("entries", &self.n_entries())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for NeighborCache {
    fn default() -> Self {
        Self::with_observer(suod_observe::noop())
    }
}

/// `DistanceMetric` is not `Eq`/`Hash` (it carries an `f64` exponent);
/// keying by the bit pattern keeps distinct Minkowski exponents distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MetricKey {
    Euclidean,
    Manhattan,
    Minkowski(u64),
}

impl From<DistanceMetric> for MetricKey {
    fn from(m: DistanceMetric) -> Self {
        match m {
            DistanceMetric::Euclidean => MetricKey::Euclidean,
            DistanceMetric::Manhattan => MetricKey::Manhattan,
            DistanceMetric::Minkowski(p) => MetricKey::Minkowski(p.to_bits()),
        }
    }
}

impl NeighborCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache reporting into `observer`: every hit/miss
    /// emits [`Counter::CacheHit`]/[`Counter::CacheMiss`] and every graph
    /// build is wrapped in a [`Stage::NeighborBuild`] span.
    pub fn with_observer(observer: Arc<dyn Observer>) -> Self {
        Self::with_config(KernelConfig::default(), observer)
    }

    /// Creates an empty cache with explicit kernel tuning; every graph it
    /// builds uses `config`'s distance backend and KD-tree crossover.
    /// Kernel work done by each build is reported to `observer` as
    /// [`Counter::PackedPanel`]/[`Counter::GemmTile`]/
    /// [`Counter::KernelFallback`] events.
    pub fn with_config(config: KernelConfig, observer: Arc<dyn Observer>) -> Self {
        Self {
            slots: Mutex::new(SlotMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            ann_fallbacks: AtomicU64::new(0),
            observer,
            kernel: config,
        }
    }

    /// The kernel tuning applied to this cache's graph builds.
    pub fn kernel_config(&self) -> KernelConfig {
        self.kernel
    }

    fn slot(&self, fp: DataFingerprint, metric: DistanceMetric) -> Arc<Mutex<Slot>> {
        Arc::clone(
            self.slots
                .lock()
                .expect("cache map lock poisoned")
                .entry((fp, metric.into()))
                .or_default(),
        )
    }

    /// Pre-registers a pool member's neighbourhood request so the first
    /// build for this `(data, metric)` key is widened to the maximum k
    /// across all registrations (one sweep serves the whole group).
    ///
    /// `k` is clamped to `rows - 1` (leave-one-out lists can never be
    /// longer). Call once per pool member during planning (pass 1);
    /// [`get_or_build`](Self::get_or_build) calls during fitting (pass 2)
    /// then share one build.
    pub fn register(&self, fp: DataFingerprint, metric: DistanceMetric, k: usize) {
        let k = k.min(fp.rows().saturating_sub(1));
        let slot = self.slot(fp, metric);
        let mut slot = slot.lock().expect("cache slot lock poisoned");
        slot.registered_k = slot.registered_k.max(k);
    }

    /// The graph for `(x, metric)`, built on first use at
    /// `max(k, registered k_max)` and served as-is (a hit) whenever the
    /// existing graph already covers `k`. A request for a larger `k` than
    /// built rebuilds the lists (a miss) at the new maximum; the matrix
    /// contents are trusted to match `fp` (callers that cannot guarantee
    /// that should use [`get_or_build`](Self::get_or_build)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`](crate::Error::Empty) when `x` has no rows.
    pub fn get_or_build_keyed(
        &self,
        fp: DataFingerprint,
        x: &Matrix,
        metric: DistanceMetric,
        k: usize,
        n_threads: usize,
    ) -> Result<Arc<NeighborGraph>> {
        let k = k.min(x.nrows().saturating_sub(1));
        let slot = self.slot(fp, metric);
        let mut slot = slot.lock().expect("cache slot lock poisoned");
        if let Some(graph) = &slot.graph {
            if graph.k_built() >= k {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.observer.counter(Counter::CacheHit, 1);
                return Ok(Arc::clone(graph));
            }
        }
        // Miss: build (or widen) at the largest k anyone asked for. The
        // slot lock is held during the build on purpose — concurrent
        // requesters of the same key must wait for this graph rather than
        // duplicate the dominant O(n^2 d) sweep.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.observer.counter(Counter::CacheMiss, 1);
        let k_build = k
            .max(slot.registered_k)
            .max(slot.graph.as_ref().map_or(0, |g| g.k_built()));
        let start = Instant::now();
        let built = NeighborGraph::build_observed(
            x,
            metric,
            k_build,
            n_threads,
            self.kernel,
            self.observer.as_ref(),
        );
        self.build_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let graph = Arc::new(built?);
        // The index is fresh, so its counter snapshot is exactly this
        // build's kernel work (shape-derived, thread-count-independent).
        let counters = graph.index().kernel_counters();
        self.ann_fallbacks
            .fetch_add(counters.ann_fallback_hits, Ordering::Relaxed);
        emit_kernel_counters(self.observer.as_ref(), counters);
        slot.graph = Some(Arc::clone(&graph));
        Ok(graph)
    }

    /// [`get_or_build_keyed`](Self::get_or_build_keyed) with the
    /// fingerprint computed from `x` (one extra `O(n d)` pass).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`](crate::Error::Empty) when `x` has no rows.
    pub fn get_or_build(
        &self,
        x: &Matrix,
        metric: DistanceMetric,
        k: usize,
        n_threads: usize,
    ) -> Result<Arc<NeighborGraph>> {
        self.get_or_build_keyed(DataFingerprint::of(x), x, metric, k, n_threads)
    }

    /// Number of distinct `(data, metric)` keys seen so far.
    pub fn n_entries(&self) -> usize {
        self.slots.lock().expect("cache map lock poisoned").len()
    }

    /// Lifetime counters: hits, misses, builds, and total build time.
    pub fn stats(&self) -> NeighborCacheStats {
        let misses = self.misses.load(Ordering::Relaxed);
        NeighborCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses,
            builds: misses,
            build_time: Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed)),
            ann_fallbacks: self.ann_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Reports a [`KernelCounters`] snapshot to an observer as
/// [`Counter::PackedPanel`]/[`Counter::GemmTile`]/[`Counter::KernelFallback`]
/// events, plus the lane/precision tags
/// ([`Counter::SimdKernel`]/[`Counter::ScalarKernel`]/
/// [`Counter::MixedKernel`]); zero counts are skipped. Shared by the
/// cache's graph builds and the standalone fit path in `suod-detectors`,
/// so pooled and standalone kernel telemetry reconcile.
pub fn emit_kernel_counters(observer: &dyn Observer, counters: KernelCounters) {
    if counters.packed_panels > 0 {
        observer.counter(Counter::PackedPanel, counters.packed_panels);
    }
    if counters.gemm_tiles > 0 {
        observer.counter(Counter::GemmTile, counters.gemm_tiles);
    }
    if counters.fallback_hits > 0 {
        observer.counter(Counter::KernelFallback, counters.fallback_hits);
    }
    if counters.simd_invocations > 0 {
        observer.counter(Counter::SimdKernel, counters.simd_invocations);
    }
    if counters.scalar_invocations > 0 {
        observer.counter(Counter::ScalarKernel, counters.scalar_invocations);
    }
    if counters.mixed_invocations > 0 {
        observer.counter(Counter::MixedKernel, counters.mixed_invocations);
    }
    if counters.ann_queries > 0 {
        observer.counter(Counter::AnnQuery, counters.ann_queries);
    }
    if counters.ann_fallback_hits > 0 {
        observer.counter(Counter::AnnFallback, counters.ann_fallback_hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = splitmix64(s);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    #[test]
    fn fingerprint_distinguishes_contents_and_shape() {
        let a = random_matrix(20, 4, 1);
        let b = random_matrix(20, 4, 2);
        assert_eq!(DataFingerprint::of(&a), DataFingerprint::of(&a.clone()));
        assert_ne!(DataFingerprint::of(&a), DataFingerprint::of(&b));
        // Same data, different shape.
        let flat = Matrix::from_vec(4, 20, a.as_slice().to_vec()).unwrap();
        assert_ne!(DataFingerprint::of(&a), DataFingerprint::of(&flat));
        // One-ULP change flips the fingerprint.
        let mut c = a.clone();
        c.set(3, 1, c.get(3, 1) + 1e-13);
        assert_ne!(DataFingerprint::of(&a), DataFingerprint::of(&c));
    }

    #[test]
    fn build_once_serve_prefixes() {
        let x = random_matrix(60, 5, 3);
        let cache = NeighborCache::new();
        let g8 = cache
            .get_or_build(&x, DistanceMetric::Euclidean, 8, 1)
            .unwrap();
        for k in 1..=8usize {
            let g = cache
                .get_or_build(&x, DistanceMetric::Euclidean, k, 1)
                .unwrap();
            assert!(
                Arc::ptr_eq(&g, &g8),
                "k={k} should be served by the k=8 graph"
            );
            let direct = g.index().self_query_batch(k, 1);
            for (i, row) in direct.iter().enumerate() {
                assert_eq!(g.prefix(i, k), &row[..], "k={k} row={i}");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 8);
        assert!(stats.build_time > Duration::ZERO);
    }

    #[test]
    fn registration_widens_first_build() {
        let x = random_matrix(40, 3, 5);
        let fp = DataFingerprint::of(&x);
        let cache = NeighborCache::new();
        cache.register(fp, DistanceMetric::Euclidean, 3);
        cache.register(fp, DistanceMetric::Euclidean, 9);
        cache.register(fp, DistanceMetric::Euclidean, 5);
        // The k=3 request triggers the build, widened to the pooled max 9.
        let g = cache
            .get_or_build_keyed(fp, &x, DistanceMetric::Euclidean, 3, 1)
            .unwrap();
        assert_eq!(g.k_built(), 9);
        let g9 = cache
            .get_or_build_keyed(fp, &x, DistanceMetric::Euclidean, 9, 1)
            .unwrap();
        assert!(Arc::ptr_eq(&g, &g9));
        assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn larger_k_than_built_rebuilds() {
        let x = random_matrix(30, 4, 7);
        let cache = NeighborCache::new();
        let g3 = cache
            .get_or_build(&x, DistanceMetric::Euclidean, 3, 1)
            .unwrap();
        let g6 = cache
            .get_or_build(&x, DistanceMetric::Euclidean, 6, 1)
            .unwrap();
        assert!(!Arc::ptr_eq(&g3, &g6));
        assert_eq!(g6.k_built(), 6);
        assert_eq!(cache.stats().misses, 2);
        // The old graph's prefixes still agree with the new one's.
        for i in 0..x.nrows() {
            assert_eq!(g3.prefix(i, 3), g6.prefix(i, 3));
        }
    }

    #[test]
    fn metric_keys_are_distinct() {
        let x = random_matrix(25, 4, 11);
        let cache = NeighborCache::new();
        cache
            .get_or_build(&x, DistanceMetric::Euclidean, 4, 1)
            .unwrap();
        cache
            .get_or_build(&x, DistanceMetric::Manhattan, 4, 1)
            .unwrap();
        cache
            .get_or_build(&x, DistanceMetric::Minkowski(3.0), 4, 1)
            .unwrap();
        cache
            .get_or_build(&x, DistanceMetric::Minkowski(4.0), 4, 1)
            .unwrap();
        assert_eq!(cache.n_entries(), 4);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn k_clamped_to_leave_one_out_size() {
        let x = random_matrix(6, 2, 13);
        let cache = NeighborCache::new();
        let g = cache
            .get_or_build(&x, DistanceMetric::Euclidean, 50, 1)
            .unwrap();
        assert_eq!(g.k_built(), 5);
        assert!(g.prefix(0, 50).len() == 5);
        // A second oversized request is a hit, not a rebuild.
        cache
            .get_or_build(&x, DistanceMetric::Euclidean, 20, 1)
            .unwrap();
        assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn self_neighbors_forms_agree() {
        let x = random_matrix(40, 4, 17);
        let index = Arc::new(KnnIndex::build(&x, DistanceMetric::Euclidean).unwrap());
        let owned = SelfNeighbors::Owned(index.self_query_batch(4, 1));
        let graph = Arc::new(NeighborGraph::build(&x, DistanceMetric::Euclidean, 9, 2).unwrap());
        let shared = SelfNeighbors::Shared { graph, k: 4 };
        assert_eq!(owned.len(), shared.len());
        for (a, b) in owned.iter().zip(shared.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn concurrent_requesters_share_one_build() {
        let x = Arc::new(random_matrix(200, 4, 19));
        let cache = Arc::new(NeighborCache::new());
        let graphs: Vec<Arc<NeighborGraph>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let cache = Arc::clone(&cache);
                    let x = Arc::clone(&x);
                    scope.spawn(move || {
                        cache
                            .get_or_build(&x, DistanceMetric::Euclidean, 2 + (t % 3), 1)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // k requests were 2..=4; without pre-registration each strictly
        // larger k can force one widening rebuild (2 -> 3 -> 4), so at
        // most 3 builds ever happen — never 8.
        assert!(cache.stats().builds <= 3, "{:?}", cache.stats());
        for g in &graphs {
            assert!(g.k_built() >= 2);
        }
    }

    #[test]
    fn observer_counters_match_stats() {
        use suod_observe::RecordingObserver;
        let rec = Arc::new(RecordingObserver::new());
        let cache = NeighborCache::with_observer(rec.clone());
        let x = random_matrix(30, 3, 23);
        cache
            .get_or_build(&x, DistanceMetric::Euclidean, 5, 1)
            .unwrap();
        cache
            .get_or_build(&x, DistanceMetric::Euclidean, 3, 1)
            .unwrap();
        cache
            .get_or_build(&x, DistanceMetric::Manhattan, 4, 1)
            .unwrap();
        let stats = cache.stats();
        let trace = rec.trace();
        assert_eq!(trace.counter(Counter::CacheHit), stats.hits);
        assert_eq!(trace.counter(Counter::CacheMiss), stats.misses);
        assert_eq!(
            trace.spans_of(Stage::NeighborBuild).count() as u64,
            stats.builds
        );
        // Build spans carry real durations.
        assert!(trace
            .spans_of(Stage::NeighborBuild)
            .all(|s| s.dur_us <= stats.build_time.as_micros() as u64 + 1000));
    }

    #[test]
    fn gemm_cache_emits_kernel_counters() {
        use crate::gemm::DistanceBackend;
        use suod_observe::RecordingObserver;
        let rec = Arc::new(RecordingObserver::new());
        let cfg = KernelConfig {
            kdtree_crossover_dim: 0, // force the brute-force gemm sweep
            ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
        };
        let cache = NeighborCache::with_config(cfg, rec.clone());
        assert_eq!(cache.kernel_config(), cfg);
        let x = random_matrix(50, 6, 29);
        cache
            .get_or_build(&x, DistanceMetric::Euclidean, 5, 1)
            .unwrap();
        let trace = rec.trace();
        assert!(trace.counter(Counter::GemmTile) > 0);
        assert!(trace.counter(Counter::PackedPanel) > 0);
        assert_eq!(trace.counter(Counter::KernelFallback), 0);
    }

    #[test]
    fn empty_matrix_rejected() {
        let cache = NeighborCache::new();
        assert!(cache
            .get_or_build(&Matrix::zeros(0, 3), DistanceMetric::Euclidean, 3, 1)
            .is_err());
    }
}
