//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use suod_linalg::rank::{argsort, average_ranks, ordinal_ranks};
use suod_linalg::stats::{zscore_in_place, Standardizer};
use suod_linalg::{
    pairwise_distances, pairwise_distances_backend, symmetric_eigen, DistanceBackend,
    DistanceMetric, KernelConfig, KnnIndex, Matrix,
};

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

/// A compatible `(m x k, k x n)` multiplication pair.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-100.0f64..100.0, m * k),
            proptest::collection::vec(-100.0f64..100.0, k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Matrix::from_vec(m, k, a).expect("sized"),
                    Matrix::from_vec(k, n, b).expect("sized"),
                )
            })
    })
}

/// Sorted neighbour index set of one result row.
fn index_set(nn: &[suod_linalg::distance::Neighbor]) -> Vec<usize> {
    let mut ids: Vec<usize> = nn.iter().map(|n| n.index).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop(m in small_matrix(8)) {
        let i = Matrix::identity(m.ncols());
        let p = m.matmul(&i).unwrap();
        for (a, b) in p.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(m in small_matrix(6)) {
        // (A B)^T == B^T A^T
        let b = m.transpose();
        let left = m.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&m.transpose()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn distances_symmetric_nonneg(m in small_matrix(6)) {
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan, DistanceMetric::Minkowski(3.0)] {
            let d = pairwise_distances(&m, &m, metric).unwrap();
            for i in 0..m.nrows() {
                prop_assert!(d.get(i, i).abs() < 1e-9);
                for j in 0..m.nrows() {
                    prop_assert!(d.get(i, j) >= 0.0);
                    prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_euclidean(
        a in proptest::collection::vec(-50.0f64..50.0, 4),
        b in proptest::collection::vec(-50.0f64..50.0, 4),
        c in proptest::collection::vec(-50.0f64..50.0, 4),
    ) {
        let m = DistanceMetric::Euclidean;
        prop_assert!(m.distance(&a, &c) <= m.distance(&a, &b) + m.distance(&b, &c) + 1e-9);
    }

    #[test]
    fn eigen_reconstructs_gram(m in small_matrix(5)) {
        // X^T X is symmetric PSD; eigendecomposition must reconstruct it.
        let g = m.transpose().matmul(&m).unwrap();
        let e = symmetric_eigen(&g).unwrap();
        let n = g.nrows();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n { d.set(i, i, e.values[i]); }
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let scale = 1.0 + g.as_slice().iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        for (x, y) in rec.as_slice().iter().zip(g.as_slice()) {
            prop_assert!((x - y).abs() / scale < 1e-6, "{x} vs {y}");
        }
        // Eigenvalues of a PSD matrix are non-negative (up to round-off).
        for &v in &e.values {
            prop_assert!(v > -1e-6 * scale);
        }
    }

    #[test]
    fn argsort_sorts(xs in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
        let order = argsort(&xs);
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] <= xs[w[1]]);
        }
        // A permutation: every index appears once.
        let mut seen = vec![false; xs.len()];
        for &i in &order { seen[i] = true; }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ranks_are_permutation(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let mut r = ordinal_ranks(&xs);
        r.sort_unstable();
        let expect: Vec<usize> = (1..=xs.len()).collect();
        prop_assert_eq!(r, expect);
    }

    #[test]
    fn average_ranks_sum_invariant(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        // Sum of ranks is n(n+1)/2 regardless of ties.
        let n = xs.len() as f64;
        let s: f64 = average_ranks(&xs).iter().sum();
        prop_assert!((s - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn zscore_idempotent_stats(mut xs in proptest::collection::vec(-1e3f64..1e3, 3..64)) {
        zscore_in_place(&mut xs);
        let m = suod_linalg::stats::mean(&xs);
        let s = suod_linalg::stats::std_dev(&xs);
        prop_assert!(m.abs() < 1e-9);
        prop_assert!(s < 1e-12 || (s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kdtree_equals_brute_force(
        n in 130usize..400,
        d in 1usize..6,
        seed in 0u64..1000,
        k in 1usize..12,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-50.0..50.0)).collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan] {
            let auto = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
            prop_assert!(auto.uses_kdtree());
            let brute = suod_linalg::KnnIndex::build_brute_force(&pts, metric).unwrap();
            let q: Vec<f64> = (0..d).map(|_| rng.random_range(-60.0..60.0)).collect();
            prop_assert_eq!(auto.query(&q, k), brute.query(&q, k));
        }
    }

    #[test]
    fn self_query_prefix_is_exact(
        n in 2usize..200,
        d in 1usize..6,
        seed in 0u64..1000,
        k_max in 1usize..16,
    ) {
        // The NeighborCache serves k < k_max as a prefix slice of the
        // k_max sweep. That is only sound if the first k entries of
        // self_query_batch(k_max, t) are bit-identical to a direct
        // self_query_batch(k, t) — for every k <= k_max, every thread
        // count, and both index backends (n crosses the KD-tree and the
        // symmetric-matrix thresholds within this range).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Duplicate rows with positive probability to exercise ties.
        let data: Vec<f64> = (0..n * d)
            .map(|_| (rng.random_range(-8.0f64..8.0)).round())
            .collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan] {
            let index = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
            let full = index.self_query_batch(k_max, 1);
            for t in [1usize, 2, 8] {
                for k in 1..=k_max {
                    let direct = index.self_query_batch(k, t);
                    for i in 0..n {
                        let prefix = &full[i][..k.min(full[i].len())];
                        prop_assert_eq!(
                            prefix, &direct[i][..],
                            "metric {:?} k={} t={} row={}", metric, k, t, i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_serves_bit_identical_lists(
        n in 2usize..150,
        d in 1usize..5,
        seed in 0u64..1000,
        k in 1usize..12,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-50.0f64..50.0)).collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        let cache = suod_linalg::NeighborCache::new();
        // Warm the cache at a larger k, then request smaller ones.
        let metric = DistanceMetric::Euclidean;
        cache.get_or_build(&pts, metric, k + 3, 2).unwrap();
        let graph = cache.get_or_build(&pts, metric, k, 1).unwrap();
        let index = suod_linalg::KnnIndex::build(&pts, metric).unwrap();
        let direct = index.self_query_batch(k, 1);
        for (i, row) in direct.iter().enumerate() {
            prop_assert_eq!(graph.prefix(i, k), &row[..]);
        }
        prop_assert_eq!(cache.stats().builds, 1);
    }

    #[test]
    fn packed_matmul_matches_naive((a, b) in matmul_pair(9)) {
        // The packed 4x4 micro-kernel reassociates nothing within an
        // output element (single accumulator, ascending k), so it stays
        // within tight relative tolerance of the skip-zero naive loop —
        // and is bit-identical across thread counts.
        let naive = a.matmul(&b).unwrap();
        let t1 = suod_linalg::matmul_packed(&a, &b, 1, None).unwrap();
        for t in [2usize, 5] {
            let tn = suod_linalg::matmul_packed(&a, &b, t, None).unwrap();
            prop_assert_eq!(tn.as_slice(), t1.as_slice());
        }
        for (x, y) in t1.as_slice().iter().zip(naive.as_slice()) {
            let scale = 1.0 + x.abs().max(y.abs());
            prop_assert!((x - y).abs() <= 1e-9 * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_distances_bit_identical_to_naive(m in small_matrix(8)) {
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Manhattan] {
            let naive = pairwise_distances_backend(
                &m, &m, metric, DistanceBackend::Naive, 1, None).unwrap();
            for t in [1usize, 3] {
                let blocked = pairwise_distances_backend(
                    &m, &m, metric, DistanceBackend::Blocked, t, None).unwrap();
                prop_assert_eq!(blocked.as_slice(), naive.as_slice());
            }
        }
    }

    #[test]
    fn gemm_distances_match_naive(m in small_matrix(8)) {
        // Compare squared distances: the norm trick's error is relative
        // to the norms (`||x||^2 + ||y||^2`), not to the distance itself,
        // which for near-duplicate rows can be arbitrarily smaller.
        let naive = pairwise_distances_backend(
            &m, &m, DistanceMetric::Euclidean, DistanceBackend::Naive, 1, None).unwrap();
        let norms: Vec<f64> = (0..m.nrows())
            .map(|i| m.row(i).iter().map(|v| v * v).sum())
            .collect();
        let g1 = pairwise_distances_backend(
            &m, &m, DistanceMetric::Euclidean, DistanceBackend::Gemm, 1, None).unwrap();
        for t in [2usize, 5] {
            let gt = pairwise_distances_backend(
                &m, &m, DistanceMetric::Euclidean, DistanceBackend::Gemm, t, None).unwrap();
            prop_assert_eq!(gt.as_slice(), g1.as_slice());
        }
        for i in 0..m.nrows() {
            for j in 0..m.nrows() {
                let (dn, dg) = (naive.get(i, j), g1.get(i, j));
                prop_assert!(dg >= 0.0);
                let tol = 1e-9 * (1.0 + norms[i] + norms[j]);
                prop_assert!(
                    (dg * dg - dn * dn).abs() <= tol,
                    "({i},{j}): gemm {dg} vs naive {dn}"
                );
            }
        }
    }

    #[test]
    fn gemm_distances_survive_adversarial_structure(
        n in 2usize..10,
        d in 1usize..6,
        seed in 0u64..500,
        scale_idx in 0usize..3,
    ) {
        let scale = [1.0f64, 1e6, 1e-6][scale_idx];
        // Colinear rows (worst case for the norm trick's cancellation:
        // d^2 = (|a|-|b|)^2 while na+nb is huge), exact duplicates, and
        // extreme magnitudes.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dir: Vec<f64> = (0..d).map(|_| rng.random_range(-1.0f64..1.0)).collect();
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|i| dir.iter().map(|v| v * i as f64 * scale).collect())
            .collect();
        rows.push(rows[0].clone());
        rows.push(rows[n / 2].clone());
        let m = Matrix::from_rows(&rows).unwrap();
        let naive = pairwise_distances_backend(
            &m, &m, DistanceMetric::Euclidean, DistanceBackend::Naive, 1, None).unwrap();
        let gemm = pairwise_distances_backend(
            &m, &m, DistanceMetric::Euclidean, DistanceBackend::Gemm, 1, None).unwrap();
        let norms: Vec<f64> = (0..m.nrows())
            .map(|i| m.row(i).iter().map(|v| v * v).sum())
            .collect();
        for i in 0..m.nrows() {
            for j in 0..m.nrows() {
                let (dn, dg) = (naive.get(i, j), gemm.get(i, j));
                prop_assert!(dg >= 0.0, "clamp must keep distances nonnegative");
                let tol = 1e-9 * (1.0 + norms[i] + norms[j]);
                prop_assert!(
                    (dg * dg - dn * dn).abs() <= tol,
                    "({i},{j}): gemm {dg} vs naive {dn}"
                );
            }
        }
    }

    #[test]
    fn knn_fast_path_matches_naive_index_sets(
        n in 20usize..120,
        d in 1usize..7,
        seed in 0u64..500,
        k in 1usize..10,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-50.0f64..50.0)).collect();
        let pts = Matrix::from_vec(n, d, data).unwrap();
        let qdata: Vec<f64> = (0..7 * d).map(|_| rng.random_range(-60.0f64..60.0)).collect();
        let queries = Matrix::from_vec(7, d, qdata).unwrap();
        // Force brute force so the tiled batch kernels are what's tested.
        let brute = |backend| KernelConfig {
            backend,
            kdtree_crossover_dim: 0,
            ..KernelConfig::default()
        };
        let naive = KnnIndex::build_with(
            &pts, DistanceMetric::Euclidean, brute(DistanceBackend::Naive)).unwrap();
        let reference: Vec<Vec<suod_linalg::distance::Neighbor>> =
            (0..queries.nrows()).map(|i| naive.query(queries.row(i), k)).collect();
        for backend in [DistanceBackend::Blocked, DistanceBackend::Gemm] {
            let index = KnnIndex::build_with(
                &pts, DistanceMetric::Euclidean, brute(backend)).unwrap();
            for t in [1usize, 3] {
                let batch = index.query_batch_parallel(&queries, k, t).unwrap();
                for (row, (got, want)) in batch.iter().zip(&reference).enumerate() {
                    if backend.is_bit_identical_to_naive() {
                        prop_assert_eq!(got, want, "row {} t {}", row, t);
                    } else {
                        // Gemm may perturb last-bit distances; the index
                        // *set* must still match exactly on generic data.
                        prop_assert_eq!(
                            index_set(got), index_set(want), "row {} t {}", row, t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn standardizer_train_has_unit_stats(m in small_matrix(8)) {
        prop_assume!(m.nrows() >= 2);
        let sc = Standardizer::fit(&m).unwrap();
        let t = sc.transform(&m).unwrap();
        for c in 0..t.ncols() {
            let col = t.col(c);
            prop_assert!(suod_linalg::stats::mean(&col).abs() < 1e-8);
        }
    }
}
