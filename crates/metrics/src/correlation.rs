//! Correlation coefficients.
//!
//! The paper validates the BPS cost predictor by Spearman's rank
//! correlation between predicted and true model-cost ranks (§3.5,
//! r_s > 0.9 across folds). Pearson and Kendall are included for the
//! cost-predictor cross-validation harness.

use crate::{check_lengths, Error, Result};
use suod_linalg::rank::average_ranks;
use suod_linalg::stats::{mean, std_dev};

/// Pearson product-moment correlation.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the vectors differ in length.
/// * [`Error::Empty`] for inputs shorter than 2.
/// * [`Error::Undefined`] when either vector is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_lengths(x.len(), y.len())?;
    if x.len() < 2 {
        return Err(Error::Empty("pearson"));
    }
    let (mx, my) = (mean(x), mean(y));
    let (sx, sy) = (std_dev(x), std_dev(y));
    if sx < 1e-12 || sy < 1e-12 {
        return Err(Error::Undefined("pearson of a constant vector"));
    }
    let n = x.len() as f64;
    let cov = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / n;
    Ok(cov / (sx * sy))
}

/// Spearman's rank correlation coefficient (handles ties via average
/// ranks, i.e. the Pearson correlation of the rank vectors).
///
/// # Errors
///
/// Propagates the conditions of [`pearson`] applied to ranks.
///
/// # Example
///
/// ```
/// // A perfectly monotone (but non-linear) relationship.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((suod_metrics::spearman(&x, &y)? - 1.0).abs() < 1e-12);
/// # Ok::<(), suod_metrics::Error>(())
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    check_lengths(x.len(), y.len())?;
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Kendall's tau-a rank correlation (concordant minus discordant pairs over
/// all pairs). Ties count as neither concordant nor discordant.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the vectors differ in length.
/// * [`Error::Empty`] for inputs shorter than 2.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64> {
    check_lengths(x.len(), y.len())?;
    let n = x.len();
    if n < 2 {
        return Err(Error::Empty("kendall_tau"));
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Ok((concordant - discordant) as f64 / pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_undefined() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversed() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 5.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_with_ties_reference() {
        // scipy.stats.spearmanr([1,2,2,3],[1,2,3,4]).statistic ~= 0.9486832980505138
        let r = spearman(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((r - 0.948_683_298_050_513_8).abs() < 1e-9);
    }

    #[test]
    fn kendall_simple() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau(&x, &x).unwrap(), 1.0);
        let rev = [3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&x, &rev).unwrap(), -1.0);
    }

    #[test]
    fn kendall_partial() {
        // scipy.stats.kendalltau([1,2,3,4],[1,3,2,4]) == 2/3 (no ties).
        let t = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!((t - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn too_short_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(kendall_tau(&[1.0], &[1.0]).is_err());
    }
}
