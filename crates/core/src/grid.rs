//! Model-grid generation from the paper's Table B.1.
//!
//! [`full_grid`] enumerates the exact hyperparameter grid of Table B.1;
//! [`random_pool`] samples an arbitrary-size heterogeneous pool from the
//! same ranges — the construction used for the paper's full-system
//! evaluation (§4.4 trains "600 random OD models from PyOD").

use crate::spec::ModelSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_detectors::{Kernel, KnnMethod};
use suod_linalg::DistanceMetric;

/// Table B.1 hyperparameter ranges.
mod ranges {
    pub const ABOD_NEIGHBORS: &[usize] = &[3, 5, 10, 15, 20, 25, 50, 60, 70, 80, 90, 100];
    pub const CBLOF_CLUSTERS: &[usize] = &[3, 5, 10, 15, 20];
    pub const FB_ESTIMATORS: &[usize] = &[10, 20, 30, 40, 50, 75, 100, 150, 200];
    pub const HBOS_BINS: &[usize] = &[5, 10, 20, 30, 40, 50, 75, 100];
    pub const HBOS_TOL: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5];
    pub const IFOREST_ESTIMATORS: &[usize] = &[10, 20, 30, 40, 50, 75, 100, 150, 200];
    pub const IFOREST_MAX_FEATURES: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    pub const KNN_NEIGHBORS: &[usize] = &[1, 5, 10, 15, 20, 25, 50, 60, 70, 80, 90, 100];
    pub const KNN_METHODS: &[&str] = &["largest", "mean", "median"];
    pub const LOF_NEIGHBORS: &[usize] = &[1, 5, 10, 15, 20, 25, 50, 60, 70, 80, 90, 100];
    pub const LOF_METRICS: &[&str] = &["manhattan", "euclidean", "minkowski"];
    pub const OCSVM_NU: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    pub const OCSVM_KERNELS: &[&str] = &["linear", "poly", "rbf", "sigmoid"];
}

/// Enumerates the full Table B.1 grid (255 models: 12 ABOD + 5 CBLOF +
/// 9 Feature Bagging + 40 HBOS + 81 iForest + 36 kNN + 36 LOF + 36
/// OCSVM). LOF with `n_neighbors = 1` is bumped to 2 and ABOD keeps its
/// minimum of 3, matching the validity domains of the implementations.
pub fn full_grid() -> Vec<ModelSpec> {
    let mut grid = Vec::with_capacity(255);
    for &k in ranges::ABOD_NEIGHBORS {
        grid.push(ModelSpec::Abod { n_neighbors: k });
    }
    for &k in ranges::CBLOF_CLUSTERS {
        grid.push(ModelSpec::Cblof { n_clusters: k });
    }
    for &t in ranges::FB_ESTIMATORS {
        grid.push(ModelSpec::FeatureBagging { n_estimators: t });
    }
    for &b in ranges::HBOS_BINS {
        for &tol in ranges::HBOS_TOL {
            grid.push(ModelSpec::Hbos {
                n_bins: b,
                tolerance: tol,
            });
        }
    }
    for &t in ranges::IFOREST_ESTIMATORS {
        for &f in ranges::IFOREST_MAX_FEATURES {
            grid.push(ModelSpec::IForest {
                n_estimators: t,
                max_features: f,
            });
        }
    }
    for &k in ranges::KNN_NEIGHBORS {
        for &m in ranges::KNN_METHODS {
            grid.push(ModelSpec::Knn {
                n_neighbors: k,
                method: KnnMethod::parse(m).expect("static table"),
            });
        }
    }
    for &k in ranges::LOF_NEIGHBORS {
        for &metric in ranges::LOF_METRICS {
            grid.push(ModelSpec::Lof {
                n_neighbors: k.max(2),
                metric: DistanceMetric::parse(metric).expect("static table"),
            });
        }
    }
    for &nu in ranges::OCSVM_NU {
        for &kernel in ranges::OCSVM_KERNELS {
            grid.push(ModelSpec::Ocsvm {
                nu,
                kernel: Kernel::parse(kernel).expect("static table"),
            });
        }
    }
    grid
}

/// Samples a heterogeneous pool of `m` models from the Table B.1 ranges,
/// uniformly over the eight families and then uniformly over each
/// family's hyperparameters. LoOP (referenced in §1 but absent from
/// Table B.1) is excluded here and available via [`ModelSpec::Loop`]
/// directly.
#[allow(clippy::explicit_auto_deref)] // the deref guides type inference for &str tables
pub fn random_pool(m: usize, seed: u64) -> Vec<ModelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(m);
    for _ in 0..m {
        let spec = match rng.random_range(0..8) {
            0 => ModelSpec::Abod {
                n_neighbors: *pick(&mut rng, ranges::ABOD_NEIGHBORS),
            },
            1 => ModelSpec::Cblof {
                n_clusters: *pick(&mut rng, ranges::CBLOF_CLUSTERS),
            },
            2 => ModelSpec::FeatureBagging {
                n_estimators: *pick(&mut rng, ranges::FB_ESTIMATORS),
            },
            3 => ModelSpec::Hbos {
                n_bins: *pick(&mut rng, ranges::HBOS_BINS),
                tolerance: *pick(&mut rng, ranges::HBOS_TOL),
            },
            4 => ModelSpec::IForest {
                n_estimators: *pick(&mut rng, ranges::IFOREST_ESTIMATORS),
                max_features: *pick(&mut rng, ranges::IFOREST_MAX_FEATURES),
            },
            5 => ModelSpec::Knn {
                n_neighbors: *pick(&mut rng, ranges::KNN_NEIGHBORS),
                method: KnnMethod::parse(*pick(&mut rng, ranges::KNN_METHODS))
                    .expect("static table"),
            },
            6 => ModelSpec::Lof {
                n_neighbors: (*pick(&mut rng, ranges::LOF_NEIGHBORS)).max(2),
                metric: DistanceMetric::parse(*pick(&mut rng, ranges::LOF_METRICS))
                    .expect("static table"),
            },
            _ => ModelSpec::Ocsvm {
                nu: *pick(&mut rng, ranges::OCSVM_NU),
                kernel: Kernel::parse(*pick(&mut rng, ranges::OCSVM_KERNELS))
                    .expect("static table"),
            },
        };
        pool.push(spec);
    }
    pool
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_scheduler::AlgorithmFamily;

    #[test]
    fn full_grid_has_expected_size() {
        // 12 + 5 + 9 + 8*5 + 9*9 + 12*3 + 12*3 + 9*4 = 255
        assert_eq!(full_grid().len(), 255);
    }

    #[test]
    fn full_grid_family_counts() {
        let grid = full_grid();
        let count = |f: AlgorithmFamily| grid.iter().filter(|s| s.family() == f).count();
        assert_eq!(count(AlgorithmFamily::Abod), 12);
        assert_eq!(count(AlgorithmFamily::Cblof), 5);
        assert_eq!(count(AlgorithmFamily::FeatureBagging), 9);
        assert_eq!(count(AlgorithmFamily::Hbos), 40);
        assert_eq!(count(AlgorithmFamily::IForest), 81);
        assert_eq!(count(AlgorithmFamily::Knn), 36);
        assert_eq!(count(AlgorithmFamily::Lof), 36);
        assert_eq!(count(AlgorithmFamily::Ocsvm), 36);
    }

    #[test]
    fn grid_specs_all_buildable() {
        for spec in full_grid() {
            assert!(spec.build(0).is_ok(), "{spec:?}");
        }
    }

    #[test]
    fn random_pool_size_and_determinism() {
        let a = random_pool(50, 3);
        let b = random_pool(50, 3);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
        assert_ne!(a, random_pool(50, 4));
    }

    #[test]
    fn random_pool_is_heterogeneous() {
        let pool = random_pool(100, 0);
        let families: std::collections::HashSet<_> = pool.iter().map(|s| s.family()).collect();
        assert!(families.len() >= 6, "only {} families", families.len());
    }

    #[test]
    fn random_pool_specs_buildable() {
        for spec in random_pool(64, 9) {
            assert!(spec.build(1).is_ok(), "{spec:?}");
        }
    }
}
