//! Synthetic outlier-detection dataset generator.
//!
//! Inliers are drawn from a mixture of Gaussian clusters with random
//! centers and per-cluster spreads; outliers come in two flavours that
//! stress different detector families:
//!
//! * **global** — uniform samples in an expansion of the inlier bounding
//!   box (easy for distance-based detectors such as kNN);
//! * **local** — points a few standard deviations off a cluster center
//!   (the regime where density-based detectors such as LOF shine).
//!
//! Optional pure-noise dimensions dilute the signal, emulating the
//! high-dimensional curse the paper's random-projection module targets.
//! All sampling is driven by an explicit seed; identical configs produce
//! identical datasets bit-for-bit.

use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// How outliers are placed relative to the inlier clusters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OutlierKind {
    /// Uniform over an expanded bounding box of the inliers.
    Global,
    /// Offset 3–6 cluster standard deviations from a random cluster center.
    Local,
    /// A 50/50 mixture of global and local outliers.
    #[default]
    Mixed,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Total number of samples (inliers + outliers).
    pub n_samples: usize,
    /// Total number of features, including noise features.
    pub n_features: usize,
    /// Fraction of samples that are outliers, in `(0, 0.5]`.
    pub contamination: f64,
    /// Number of inlier Gaussian clusters (>= 1).
    pub n_clusters: usize,
    /// Number of trailing pure-noise features (< `n_features`).
    pub n_noise_features: usize,
    /// Outlier placement strategy.
    pub outlier_kind: OutlierKind,
    /// RNG seed; equal seeds give identical datasets.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_samples: 1000,
            n_features: 10,
            contamination: 0.1,
            n_clusters: 3,
            n_noise_features: 0,
            outlier_kind: OutlierKind::Mixed,
            seed: 0,
        }
    }
}

/// A labelled outlier-detection dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, `n_samples x n_features`.
    pub x: Matrix,
    /// Binary labels: 1 = outlier, 0 = inlier.
    pub y: Vec<i32>,
    /// Human-readable name (registry analogs use the paper's names).
    pub name: String,
}

impl Dataset {
    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.x.nrows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.ncols()
    }

    /// Number of labelled outliers.
    pub fn n_outliers(&self) -> usize {
        self.y.iter().filter(|&&l| l != 0).count()
    }

    /// Outlier fraction.
    pub fn contamination(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.n_outliers() as f64 / self.y.len() as f64
        }
    }
}

/// Draws one standard-normal value via the Box–Muller transform.
///
/// The allowed `rand` crate ships only uniform sampling; detectors and
/// generators throughout the workspace share this helper for Gaussians.
pub fn randn(rng: &mut impl Rng) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a dataset from `config`.
///
/// Samples are shuffled so labels are not positionally clustered.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when sizes or fractions are out of
/// domain (zero samples/features/clusters, contamination outside
/// `(0, 0.5]`, noise features >= total features, or so few samples that
/// either class would be empty).
pub fn generate(config: &SyntheticConfig) -> Result<Dataset> {
    validate(config)?;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let n_outliers = ((config.n_samples as f64) * config.contamination).round() as usize;
    let n_outliers = n_outliers.clamp(1, config.n_samples - 1);
    let n_inliers = config.n_samples - n_outliers;
    let d_signal = config.n_features - config.n_noise_features;

    // Cluster centers uniform in [-10, 10]^d_signal with spreads in [0.5, 2].
    let centers: Vec<Vec<f64>> = (0..config.n_clusters)
        .map(|_| {
            (0..d_signal)
                .map(|_| rng.random_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let spreads: Vec<f64> = (0..config.n_clusters)
        .map(|_| rng.random_range(0.5..2.0))
        .collect();

    let mut rows: Vec<(Vec<f64>, i32)> = Vec::with_capacity(config.n_samples);

    for i in 0..n_inliers {
        let c = i % config.n_clusters;
        let mut row: Vec<f64> = centers[c]
            .iter()
            .map(|&m| m + spreads[c] * randn(&mut rng))
            .collect();
        append_noise(&mut row, config.n_noise_features, &mut rng);
        rows.push((row, 0));
    }

    // Bounding box of inlier signal dims, for global outliers.
    let (lo, hi) = signal_bounds(&rows, d_signal);

    for i in 0..n_outliers {
        let global = match config.outlier_kind {
            OutlierKind::Global => true,
            OutlierKind::Local => false,
            OutlierKind::Mixed => i % 2 == 0,
        };
        let mut row = if global {
            (0..d_signal)
                .map(|j| {
                    let span = (hi[j] - lo[j]).max(1.0);
                    rng.random_range((lo[j] - 0.3 * span)..(hi[j] + 0.3 * span))
                })
                .collect::<Vec<f64>>()
        } else {
            let c = rng.random_range(0..config.n_clusters);
            let k = rng.random_range(3.0..6.0) * spreads[c];
            // Random direction scaled to k cluster-sigmas.
            let dir: Vec<f64> = (0..d_signal).map(|_| randn(&mut rng)).collect();
            let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            centers[c]
                .iter()
                .zip(&dir)
                .map(|(&m, &u)| m + k * u / norm + 0.3 * spreads[c] * randn(&mut rng))
                .collect()
        };
        append_noise(&mut row, config.n_noise_features, &mut rng);
        rows.push((row, 1));
    }

    shuffle(&mut rows, &mut rng);

    let y: Vec<i32> = rows.iter().map(|(_, l)| *l).collect();
    let flat: Vec<Vec<f64>> = rows.into_iter().map(|(r, _)| r).collect();
    let x = Matrix::from_rows(&flat)?;
    Ok(Dataset {
        x,
        y,
        name: format!("synthetic-{}", config.seed),
    })
}

/// The 200-point two-dimensional toy dataset of the paper's Fig. 3:
/// 160 inliers uniform in the unit box, 40 outliers from a Normal
/// distribution centred in the box with a wider spread.
pub fn fig3_points(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<(Vec<f64>, i32)> = Vec::with_capacity(200);
    for _ in 0..160 {
        rows.push((
            vec![rng.random_range(-4.0..4.0), rng.random_range(-4.0..4.0)],
            0,
        ));
    }
    for _ in 0..40 {
        rows.push((vec![6.0 * randn(&mut rng), 6.0 * randn(&mut rng)], 1));
    }
    shuffle(&mut rows, &mut rng);
    let y: Vec<i32> = rows.iter().map(|(_, l)| *l).collect();
    let flat: Vec<Vec<f64>> = rows.into_iter().map(|(r, _)| r).collect();
    Dataset {
        x: Matrix::from_rows(&flat).expect("fixed-size rows"),
        y,
        name: "fig3-synthetic".to_string(),
    }
}

fn validate(c: &SyntheticConfig) -> Result<()> {
    if c.n_samples < 4 {
        return Err(Error::InvalidConfig("n_samples must be >= 4".into()));
    }
    if c.n_features == 0 {
        return Err(Error::InvalidConfig("n_features must be >= 1".into()));
    }
    if c.n_clusters == 0 {
        return Err(Error::InvalidConfig("n_clusters must be >= 1".into()));
    }
    if !(c.contamination > 0.0 && c.contamination <= 0.5) {
        return Err(Error::InvalidConfig(format!(
            "contamination must be in (0, 0.5], got {}",
            c.contamination
        )));
    }
    if c.n_noise_features >= c.n_features {
        return Err(Error::InvalidConfig(
            "n_noise_features must be < n_features".into(),
        ));
    }
    Ok(())
}

fn append_noise(row: &mut Vec<f64>, n_noise: usize, rng: &mut impl Rng) {
    for _ in 0..n_noise {
        row.push(randn(rng));
    }
}

fn signal_bounds(rows: &[(Vec<f64>, i32)], d_signal: usize) -> (Vec<f64>, Vec<f64>) {
    let mut lo = vec![f64::INFINITY; d_signal];
    let mut hi = vec![f64::NEG_INFINITY; d_signal];
    for (row, _) in rows {
        for j in 0..d_signal {
            lo[j] = lo[j].min(row[j]);
            hi[j] = hi[j].max(row[j]);
        }
    }
    (lo, hi)
}

/// Fisher–Yates shuffle using our explicit RNG (keeps the dependency
/// surface to plain `Rng`).
fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let ds = generate(&SyntheticConfig {
            n_samples: 200,
            n_features: 7,
            contamination: 0.1,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(ds.n_samples(), 200);
        assert_eq!(ds.n_features(), 7);
        assert_eq!(ds.n_outliers(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig {
            seed: 7,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).unwrap(), generate(&cfg).unwrap());
        let other = SyntheticConfig {
            seed: 8,
            ..Default::default()
        };
        assert_ne!(generate(&cfg).unwrap().x, generate(&other).unwrap().x);
    }

    #[test]
    fn labels_are_binary_and_shuffled() {
        let ds = generate(&SyntheticConfig::default()).unwrap();
        assert!(ds.y.iter().all(|&l| l == 0 || l == 1));
        // Shuffled: the first n_inliers entries should not all be inliers.
        let head_outliers = ds.y[..200].iter().filter(|&&l| l == 1).count();
        assert!(head_outliers > 0, "labels appear positionally clustered");
    }

    #[test]
    fn noise_features_have_small_scale() {
        let ds = generate(&SyntheticConfig {
            n_samples: 500,
            n_features: 6,
            n_noise_features: 3,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        // Noise columns are standard normal; signal columns span [-10,10].
        let noise_std = suod_linalg::stats::std_dev(&ds.x.col(5));
        assert!(noise_std < 2.0, "noise std was {noise_std}");
    }

    #[test]
    fn outliers_are_separable_by_distance() {
        // Global outliers sit outside the inlier bounding box often enough
        // that mean distance-to-centroid differs markedly.
        let ds = generate(&SyntheticConfig {
            n_samples: 400,
            n_features: 5,
            outlier_kind: OutlierKind::Global,
            n_clusters: 1,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        let means = suod_linalg::stats::column_means(&ds.x);
        let dist = |row: &[f64]| -> f64 {
            row.iter()
                .zip(&means)
                .map(|(&v, &m)| (v - m) * (v - m))
                .sum::<f64>()
                .sqrt()
        };
        let mut in_d = 0.0;
        let mut out_d = 0.0;
        for (i, row) in ds.x.rows_iter().enumerate() {
            if ds.y[i] == 1 {
                out_d += dist(row);
            } else {
                in_d += dist(row);
            }
        }
        let in_avg = in_d / (ds.n_samples() - ds.n_outliers()) as f64;
        let out_avg = out_d / ds.n_outliers() as f64;
        assert!(
            out_avg > 1.2 * in_avg,
            "outliers not separable: {out_avg} vs {in_avg}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = |f: fn(&mut SyntheticConfig)| {
            let mut c = SyntheticConfig::default();
            f(&mut c);
            generate(&c).is_err()
        };
        assert!(bad(|c| c.n_samples = 2));
        assert!(bad(|c| c.n_features = 0));
        assert!(bad(|c| c.n_clusters = 0));
        assert!(bad(|c| c.contamination = 0.0));
        assert!(bad(|c| c.contamination = 0.9));
        assert!(bad(|c| c.n_noise_features = 10));
    }

    #[test]
    fn fig3_matches_paper_counts() {
        let ds = fig3_points(0);
        assert_eq!(ds.n_samples(), 200);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_outliers(), 40);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| randn(&mut rng)).collect();
        assert!(suod_linalg::stats::mean(&xs).abs() < 0.05);
        assert!((suod_linalg::stats::std_dev(&xs) - 1.0).abs() < 0.05);
    }
}
