//! Histogram-Based Outlier Score (Goldstein & Dengel 2012).
//!
//! HBOS assumes feature independence: each feature gets an equal-width
//! histogram whose normalized heights act as a density estimate, and a
//! sample's score is the sum over features of `log(1 / density)`. It is
//! one of the two "cheap" families the paper deliberately does **not**
//! approximate or project (§3.3/§3.4) — it serves as the fast baseline in
//! the heterogeneous pool.
//!
//! The `tolerance` hyperparameter (Table B.1) controls how far outside the
//! training range a test value may fall while still borrowing the edge
//! bin's density; beyond `tolerance * range` the density decays toward the
//! minimum, mirroring PyOD's handling.

use crate::{check_dims, Detector, Error, Result};
use suod_linalg::Matrix;

#[derive(Debug, Clone)]
struct FeatureHistogram {
    min: f64,
    max: f64,
    /// Normalized bin densities; max height is 1.
    densities: Vec<f64>,
}

impl FeatureHistogram {
    fn build(values: &[f64], n_bins: usize) -> Self {
        let min = suod_linalg::stats::min(values);
        let max = suod_linalg::stats::max(values);
        let mut counts = vec![0usize; n_bins];
        let range = (max - min).max(1e-12);
        for &v in values {
            let bin = (((v - min) / range) * n_bins as f64) as usize;
            counts[bin.min(n_bins - 1)] += 1;
        }
        let peak = *counts.iter().max().expect("n_bins >= 1") as f64;
        let densities = counts
            .iter()
            .map(|&c| if peak > 0.0 { c as f64 / peak } else { 0.0 })
            .collect();
        Self {
            min,
            max,
            densities,
        }
    }

    /// Density for a query value, honouring the tolerance band outside the
    /// training range.
    fn density(&self, v: f64, tolerance: f64) -> f64 {
        const FLOOR: f64 = 1e-6;
        let n_bins = self.densities.len();
        let range = (self.max - self.min).max(1e-12);
        if v >= self.min && v <= self.max {
            let bin = (((v - self.min) / range) * n_bins as f64) as usize;
            return self.densities[bin.min(n_bins - 1)].max(FLOOR);
        }
        // Outside the range: borrow the edge bin within the tolerance band,
        // then decay with distance.
        let (edge_density, overshoot) = if v < self.min {
            (self.densities[0], self.min - v)
        } else {
            (self.densities[n_bins - 1], v - self.max)
        };
        let band = tolerance * range;
        if band > 0.0 && overshoot <= band {
            return edge_density.max(FLOOR);
        }
        let decay = band.max(1e-12) / overshoot.max(1e-12);
        (edge_density * decay).max(FLOOR)
    }
}

/// HBOS detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, HbosDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 10) as f64]).collect();
/// let mut x_rows = rows.clone();
/// x_rows.push(vec![100.0]);
/// let x = Matrix::from_rows(&x_rows).unwrap();
/// let mut det = HbosDetector::new(10, 0.5)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert!(s[50] >= *s[..50].iter().max_by(|a, b| a.total_cmp(b)).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HbosDetector {
    n_bins: usize,
    tolerance: f64,
    histograms: Vec<FeatureHistogram>,
    train_scores: Vec<f64>,
}

impl HbosDetector {
    /// Creates an HBOS detector with `n_bins` histogram bins per feature
    /// and the out-of-range `tolerance` (Table B.1 uses 0.1–0.5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n_bins == 0` or
    /// `tolerance` is not in `[0, 1]`.
    pub fn new(n_bins: usize, tolerance: f64) -> Result<Self> {
        if n_bins == 0 {
            return Err(Error::InvalidParameter("n_bins must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&tolerance) {
            return Err(Error::InvalidParameter(format!(
                "tolerance must be in [0, 1], got {tolerance}"
            )));
        }
        Ok(Self {
            n_bins,
            tolerance,
            histograms: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Number of bins per feature.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        row.iter()
            .zip(&self.histograms)
            .map(|(&v, h)| (1.0 / h.density(v, self.tolerance)).ln())
            .sum()
    }
}

impl Detector for HbosDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        if x.nrows() < 2 {
            return Err(Error::InsufficientData {
                needed: "at least 2 samples".into(),
                got: x.nrows(),
            });
        }
        self.histograms = (0..x.ncols())
            .map(|c| FeatureHistogram::build(&x.col(c), self.n_bins))
            .collect();
        self.train_scores = x.rows_iter().map(|row| self.score_row(row)).collect();
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.histograms.is_empty() {
            return Err(Error::NotFitted("HbosDetector"));
        }
        check_dims(self.histograms.len(), x)?;
        Ok(x.rows_iter().map(|row| self.score_row(row)).collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.histograms.is_empty() {
            return Err(Error::NotFitted("HbosDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "hbos"
    }

    fn is_fitted(&self) -> bool {
        !self.histograms.is_empty()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_bins);
        w.write_f64(self.tolerance);
        w.write_usize(self.histograms.len());
        for h in &self.histograms {
            w.write_f64(h.min);
            w.write_f64(h.max);
            w.write_f64s(&h.densities);
        }
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl HbosDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let n_bins = r.read_usize()?;
        let tolerance = r.read_f64()?;
        let n_hist = r.read_usize()?;
        let mut histograms = Vec::new();
        for _ in 0..n_hist {
            histograms.push(FeatureHistogram {
                min: r.read_f64()?,
                max: r.read_f64()?,
                densities: r.read_f64s()?,
            });
        }
        Ok(Self {
            n_bins,
            tolerance,
            histograms,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_with_rare_value() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64, 0.0]).collect();
        rows.push(vec![4.0, 50.0]); // rare in feature 1
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn rare_value_scores_highest() {
        let mut det = HbosDetector::new(10, 0.2).unwrap();
        det.fit(&uniform_with_rare_value()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 100);
    }

    #[test]
    fn out_of_range_query_scores_high() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 6) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = HbosDetector::new(6, 0.1).unwrap();
        det.fit(&x).unwrap();
        let q = Matrix::from_rows(&[vec![2.0], vec![1000.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > s[0] + 1.0, "{s:?}");
    }

    #[test]
    fn tolerance_softens_near_range_queries() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 6) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut tight = HbosDetector::new(6, 0.0).unwrap();
        let mut loose = HbosDetector::new(6, 0.5).unwrap();
        tight.fit(&x).unwrap();
        loose.fit(&x).unwrap();
        // Slightly beyond max (5.0 + 0.5 within loose tolerance band 2.5).
        let q = Matrix::from_rows(&[vec![5.5]]).unwrap();
        let st = tight.decision_function(&q).unwrap()[0];
        let sl = loose.decision_function(&q).unwrap()[0];
        assert!(st > sl, "tight {st} should exceed loose {sl}");
    }

    #[test]
    fn constant_feature_is_harmless() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 7.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = HbosDetector::new(5, 0.1).unwrap();
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn validates_inputs() {
        assert!(HbosDetector::new(0, 0.1).is_err());
        assert!(HbosDetector::new(5, -0.1).is_err());
        assert!(HbosDetector::new(5, 1.5).is_err());
        let mut det = HbosDetector::new(5, 0.1).unwrap();
        assert!(det.fit(&Matrix::zeros(1, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&uniform_with_rare_value()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn scores_deterministic() {
        let x = uniform_with_rare_value();
        let mut a = HbosDetector::new(8, 0.3).unwrap();
        let mut b = HbosDetector::new(8, 0.3).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
    }
}
