//! The scoring service: bounded admission, micro-batching, deadline
//! shedding, and predict-time quarantine over a fitted [`Suod`].

use crate::clock::{Clock, SystemClock};
use crate::report::ServeReport;
use crate::{Error, Result};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use suod::Suod;
use suod_detectors::validate_finite;
use suod_linalg::Matrix;
use suod_observe::{Counter, Observer, SpanAttrs, Stage};

/// Tuning knobs for a [`ScoreService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-queue capacity. Submissions beyond this are rejected
    /// with [`SubmitError::Busy`] — explicit backpressure; the queue
    /// never grows without bound.
    pub queue_capacity: usize,
    /// Hard cap on rows per micro-batch.
    pub max_batch_rows: usize,
    /// Optional cost cap per micro-batch, in the cost model's unitless
    /// scale (see [`Suod::predict_unit_costs`]): the batch stops
    /// accepting requests once its forecast
    /// ([`suod_scheduler::predict_batch_forecast`] over the currently
    /// active models) would exceed this. Deterministic — derived from
    /// the fit-time cost forecast, not from measured times.
    pub max_batch_units: Option<f64>,
    /// How long the background dispatcher waits after the first pending
    /// request before assembling a batch, letting concurrent submitters
    /// coalesce. Ignored when stepping manually.
    pub batch_window: Duration,
    /// Deadline budget applied to requests submitted without an explicit
    /// one. `None` disables shedding for such requests.
    pub default_deadline_ms: Option<u64>,
    /// Consecutive predict faults (panic, typed error, non-finite
    /// scores, or timeout breach) a model may accumulate before it is
    /// quarantined out of subsequent batches.
    pub predict_failure_budget: u32,
    /// Per-batch time budget for a single model's scoring work. A model
    /// whose measured time exceeds it is charged one fault — a post-hoc
    /// watchdog (running chunks cannot be cancelled), so one slow model
    /// delays at most `predict_failure_budget` batches before leaving
    /// the hot path.
    pub predict_timeout: Option<Duration>,
    /// Minimum fraction of the models *currently active* (not
    /// serve-quarantined) that must score successfully for a batch's
    /// combined scores to be trusted — the serving analog of the
    /// fit-time floor. Batches below the floor fail with
    /// [`ScoreOutcome::Failed`]; the service keeps running. Because the
    /// floor is taken over active models, quarantining a persistently
    /// faulty model shrinks the denominator and the service recovers —
    /// even at the strict default of `1.0`, a faulty model costs at
    /// most `predict_failure_budget` failed batches before survivor
    /// batches pass again.
    pub min_healthy_fraction: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch_rows: 1024,
            max_batch_units: None,
            batch_window: Duration::from_millis(2),
            default_deadline_ms: None,
            predict_failure_budget: 3,
            predict_timeout: None,
            min_healthy_fraction: 1.0,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(Error::Config("queue_capacity must be >= 1".into()));
        }
        if self.max_batch_rows == 0 {
            return Err(Error::Config("max_batch_rows must be >= 1".into()));
        }
        if let Some(u) = self.max_batch_units {
            if !(u.is_finite() && u > 0.0) {
                return Err(Error::Config(format!(
                    "max_batch_units must be finite and positive, got {u}"
                )));
            }
        }
        if self.predict_failure_budget == 0 {
            return Err(Error::Config("predict_failure_budget must be >= 1".into()));
        }
        if !(self.min_healthy_fraction.is_finite()
            && (0.0..=1.0).contains(&self.min_healthy_fraction))
        {
            return Err(Error::Config(format!(
                "min_healthy_fraction must be in [0, 1], got {}",
                self.min_healthy_fraction
            )));
        }
        Ok(())
    }
}

/// Why a submission was turned away at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The admission queue is full. Retry later; the rejection is the
    /// backpressure signal.
    Busy {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is shutting down.
    Closed,
    /// The request itself was malformed (empty, wrong feature count, or
    /// non-finite values). Validated at admission so one bad request can
    /// never poison batch-mates.
    InvalidRequest(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { capacity } => {
                write!(f, "admission queue full ({capacity} pending)")
            }
            SubmitError::Closed => write!(f, "service is closed"),
            SubmitError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A surviving model that faulted while scoring one batch.
#[derive(Debug, Clone)]
pub struct ModelFault {
    /// Original configured-pool index (matches
    /// [`suod::ModelReport`] indices).
    pub pool_index: usize,
    /// Short algorithm name.
    pub name: &'static str,
    /// Human-readable cause (panic message, typed error, or timeout).
    pub cause: String,
    /// Whether this fault tipped the model over its failure budget into
    /// quarantine.
    pub quarantined: bool,
}

/// A successfully scored request.
#[derive(Debug, Clone)]
pub struct ScoredBatch {
    /// Combined ensemble score per submitted row, in submission order —
    /// the survivor-only average (failed models' columns are skipped).
    pub combined: Vec<f64>,
    /// Faults observed in the batch this request rode in (empty on a
    /// fully healthy pass).
    pub faults: Vec<ModelFault>,
    /// Models that produced usable columns for this batch.
    pub healthy_models: usize,
    /// Models in the served (surviving) ensemble.
    pub total_models: usize,
    /// Admission-to-response latency in clock milliseconds.
    pub latency_ms: u64,
}

/// Terminal state of one submitted request.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScoreOutcome {
    /// The request was scored.
    Scored(ScoredBatch),
    /// The request sat in the queue past its deadline and was shed
    /// without computing anything.
    Shed {
        /// Milliseconds the request waited before being dropped.
        waited_ms: u64,
        /// The deadline budget it was admitted with.
        deadline_ms: u64,
    },
    /// The batch could not be served (ensemble below the healthy floor,
    /// or the service shut down first).
    Failed(String),
}

/// One request's response slot, shared between the submitter's
/// [`Ticket`] and the dispatcher.
struct ResponseSlot {
    outcome: Mutex<Option<ScoreOutcome>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, outcome: ScoreOutcome) {
        let mut slot = lock_ignore_poison(&self.outcome);
        *slot = Some(outcome);
        self.ready.notify_all();
    }
}

/// Handle to a pending score request; blocks on [`wait`](Ticket::wait)
/// until the dispatcher responds.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the request reaches a terminal state.
    pub fn wait(self) -> ScoreOutcome {
        let mut outcome = lock_ignore_poison(&self.slot.outcome);
        loop {
            if let Some(result) = outcome.take() {
                return result;
            }
            outcome = self
                .slot
                .ready
                .wait(outcome)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking poll; `Some` once the request is terminal.
    pub fn try_take(&self) -> Option<ScoreOutcome> {
        lock_ignore_poison(&self.slot.outcome).take()
    }
}

/// A request sitting in the admission queue.
struct Pending {
    rows: Matrix,
    enqueued_ms: u64,
    /// Absolute clock deadline; `None` = never shed.
    deadline_at_ms: Option<u64>,
    /// The relative budget, kept for the shed response.
    deadline_ms: Option<u64>,
    slot: Arc<ResponseSlot>,
}

struct QueueState {
    pending: VecDeque<Pending>,
    closed: bool,
}

/// Per-model serving health: active mask plus consecutive-fault streaks.
///
/// `epoch` names the [`ServingPool`] generation these vectors describe.
/// A batch that started on an older pool compares its captured epoch
/// before writing streaks back, so a hot reload can never be corrupted
/// by a straggler batch finishing on the previous generation.
struct ServeHealth {
    epoch: u64,
    active: Vec<bool>,
    streaks: Vec<u32>,
}

/// One immutable generation of the served estimator plus the derived
/// lookups every batch needs. Swapped atomically (behind an `RwLock`)
/// by [`ScoreService::reload`]; in-flight batches keep scoring on the
/// `Arc` they cloned at assembly, new batches pick up the replacement.
struct ServingPool {
    clf: Suod,
    /// Per-surviving-model forecast cost (fit-time, immutable).
    unit_costs: Vec<f64>,
    /// `(pool index, name)` per surviving model.
    model_names: Vec<(usize, &'static str)>,
    train_rows: usize,
    n_features: usize,
    /// Generation counter; starts at 0, bumped once per reload.
    epoch: u64,
}

impl ServingPool {
    fn new(clf: Suod, epoch: u64) -> Result<Self> {
        let model_names = clf.surviving_models()?;
        let unit_costs = clf.predict_unit_costs()?;
        let train_rows = clf.train_rows()?;
        let n_features = clf.n_features()?;
        Ok(ServingPool {
            clf,
            unit_costs,
            model_names,
            train_rows,
            n_features,
            epoch,
        })
    }
}

/// Outcome of a successful [`ScoreService::reload`].
#[derive(Debug, Clone)]
pub struct ReloadReport {
    /// Generation the service is now serving (previous epoch + 1).
    pub epoch: u64,
    /// Models whose serve-time health (quarantine state and fault
    /// streak) survived the swap because the new pool carries the same
    /// model at the same configured index.
    pub carried_over: usize,
    /// Models that start the new generation with fresh health.
    pub reset: usize,
    /// Surviving models in the new pool.
    pub total_models: usize,
}

/// Upper bound on retained latency samples: percentiles in
/// [`ServeReport`] are computed over the most recent window, so a
/// long-lived service neither grows without bound nor slows down
/// `report()` over time.
const LATENCY_SAMPLE_CAP: usize = 4096;

/// Aggregated service counters and latency samples.
#[derive(Default)]
struct ServeStats {
    admitted: u64,
    rejected: u64,
    shed: u64,
    deadline_missed: u64,
    batches: u64,
    requests_scored: u64,
    requests_failed: u64,
    rows_scored: u64,
    predict_faults: u64,
    quarantined: u64,
    reloads: u64,
    /// Ring of the most recent [`LATENCY_SAMPLE_CAP`] request latencies.
    latencies_ms: VecDeque<u64>,
    /// EWMA of measured seconds per forecast cost unit — the
    /// calibration joining the scheduler's unitless forecasts to wall
    /// time for capacity estimates.
    secs_per_unit: Option<f64>,
}

struct ServiceInner {
    config: ServeConfig,
    clock: Arc<dyn Clock>,
    observer: Arc<dyn Observer>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    /// Lock order: `health` before `pool`; `stats` is never held
    /// together with either (see the discipline note in
    /// `process_once`). Batches clone the `Arc` and drop the read
    /// guard immediately, so a reload never waits on in-flight scoring.
    pool: RwLock<Arc<ServingPool>>,
    health: Mutex<ServeHealth>,
    stats: Mutex<ServeStats>,
}

/// A fault-tolerant online scoring service over a fitted [`Suod`].
///
/// Requests are admitted into a bounded queue ([`submit`](Self::submit)
/// rejects with [`SubmitError::Busy`] when full), coalesced into
/// micro-batches, scored through the estimator's fault-isolated masked
/// prediction path, and answered individually. Models that keep faulting
/// at predict time are quarantined out of subsequent batches; survivor
/// combination keeps every response's scores bit-identical to a
/// single-threaded pass over the same batch.
///
/// Two driving modes:
///
/// * **Background** — [`spawn_dispatcher`](Self::spawn_dispatcher)
///   starts a thread that waits for work, sleeps one batch window so
///   concurrent submitters coalesce, then assembles and scores a batch.
/// * **Manual** — the owner calls [`process_once`](Self::process_once)
///   to drive one batch synchronously. With a
///   [`ManualClock`](crate::ManualClock) this makes every decision —
///   batch composition, shed set, quarantine sequence — a pure function
///   of the submitted trace, which is how the chaos suite proves
///   determinism.
pub struct ScoreService {
    inner: Arc<ServiceInner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ScoreService {
    /// Builds a service over a fitted estimator with the system clock
    /// and no observer. Call
    /// [`spawn_dispatcher`](Self::spawn_dispatcher) for background
    /// operation or drive it with [`process_once`](Self::process_once).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for invalid knobs; [`Error::Core`] when the
    /// estimator is not fitted.
    pub fn new(clf: Suod, config: ServeConfig) -> Result<Self> {
        Self::with_parts(
            clf,
            config,
            Arc::new(SystemClock::new()),
            suod_observe::noop(),
        )
    }

    /// Builds a service with an explicit clock and observer — the
    /// constructor tests use with [`ManualClock`](crate::ManualClock)
    /// and a recording observer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn with_parts(
        clf: Suod,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        observer: Arc<dyn Observer>,
    ) -> Result<Self> {
        config.validate()?;
        let pool = ServingPool::new(clf, 0)?;
        let m = pool.model_names.len();
        Ok(ScoreService {
            inner: Arc::new(ServiceInner {
                config,
                clock,
                observer,
                queue: Mutex::new(QueueState {
                    pending: VecDeque::new(),
                    closed: false,
                }),
                work_ready: Condvar::new(),
                pool: RwLock::new(Arc::new(pool)),
                health: Mutex::new(ServeHealth {
                    epoch: 0,
                    active: vec![true; m],
                    streaks: vec![0; m],
                }),
                stats: Mutex::new(ServeStats::default()),
            }),
            dispatcher: None,
        })
    }

    /// Atomically replaces the served estimator with `clf` — **zero
    /// downtime**: in-flight batches finish on the generation they
    /// started with, every later batch scores on the new pool, and no
    /// admitted request is dropped or failed by the swap. Service
    /// counters ([`report`](Self::report)) keep accumulating across the
    /// swap; per-model quarantine state carries over for models the new
    /// pool serves at the same configured index (same algorithm), and
    /// resets for everything else.
    ///
    /// Typical flow: `Suod::load` a new snapshot (or
    /// [`warm_refit`](suod::Suod::warm_refit) in place) and hand it
    /// here.
    ///
    /// # Errors
    ///
    /// [`Error::Reload`] when the replacement's feature width differs
    /// from the served one; [`Error::Core`] when it is not fitted.
    /// On error the current pool keeps serving untouched.
    pub fn reload(&self, clf: Suod) -> Result<ReloadReport> {
        self.inner.reload(clf)
    }

    /// Generation of the currently served pool: 0 at construction,
    /// +1 per successful [`reload`](Self::reload).
    pub fn pool_epoch(&self) -> u64 {
        self.inner.pool_read().epoch
    }

    /// Starts the background dispatcher thread (idempotent).
    pub fn spawn_dispatcher(&mut self) {
        if self.dispatcher.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        self.dispatcher = Some(
            std::thread::Builder::new()
                .name("suod-serve-dispatcher".into())
                .spawn(move || inner.dispatch_loop())
                .expect("spawning the dispatcher thread"),
        );
    }

    /// Admits a score request with the configured default deadline.
    /// `rows` is one or more query rows in the fitted feature space.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the bounded queue is full (the
    /// backpressure signal), [`SubmitError::InvalidRequest`] for
    /// malformed input, [`SubmitError::Closed`] during shutdown.
    pub fn submit(&self, rows: Matrix) -> std::result::Result<Ticket, SubmitError> {
        let deadline = self.inner.config.default_deadline_ms;
        self.submit_with_deadline(rows, deadline)
    }

    /// Admits a score request with an explicit deadline budget in clock
    /// milliseconds (`None` = never shed).
    ///
    /// # Errors
    ///
    /// Same conditions as [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        rows: Matrix,
        deadline_ms: Option<u64>,
    ) -> std::result::Result<Ticket, SubmitError> {
        self.inner.submit_with_deadline(rows, deadline_ms)
    }

    /// Synchronously assembles and serves one micro-batch: drains
    /// admitted requests up to the batch caps, sheds those past their
    /// deadline, scores the rest through the fault-isolated masked
    /// prediction path, and fills every drained request's ticket.
    /// Returns the number of requests retired (scored, shed, or
    /// failed); `0` means the queue was empty.
    pub fn process_once(&self) -> usize {
        self.inner.process_once()
    }

    /// Current per-model activity mask, in surviving-ensemble order
    /// (`false` = quarantined at serve time).
    pub fn active_models(&self) -> Vec<bool> {
        lock_ignore_poison(&self.inner.health).active.clone()
    }

    /// Number of admitted requests currently waiting in the queue. A
    /// point-in-time sample for admission policies layered above the
    /// queue (the front end's lane gate); by the time the caller acts
    /// the depth may already have moved.
    pub fn queue_depth(&self) -> usize {
        lock_ignore_poison(&self.inner.queue).pending.len()
    }

    /// The configured admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.inner.config.queue_capacity
    }

    /// Snapshot of the service's counters and latency percentiles.
    pub fn report(&self) -> ServeReport {
        self.inner.report()
    }

    /// Shuts the service down: rejects future submissions, fails
    /// still-queued requests, and joins the dispatcher. Called by `Drop`;
    /// explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut queue = lock_ignore_poison(&self.inner.queue);
            queue.closed = true;
            for request in queue.pending.drain(..) {
                request
                    .slot
                    .fill(ScoreOutcome::Failed("service shut down".into()));
            }
        }
        self.inner.work_ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScoreService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServiceInner {
    fn dispatch_loop(&self) {
        loop {
            {
                let mut queue = lock_ignore_poison(&self.queue);
                while queue.pending.is_empty() && !queue.closed {
                    queue = self
                        .work_ready
                        .wait(queue)
                        .unwrap_or_else(|p| p.into_inner());
                }
                if queue.closed {
                    return;
                }
            }
            // Let concurrent submitters coalesce into this batch.
            self.clock.sleep(self.config.batch_window);
            self.process_once();
        }
    }

    fn submit_with_deadline(
        &self,
        rows: Matrix,
        deadline_ms: Option<u64>,
    ) -> std::result::Result<Ticket, SubmitError> {
        if rows.nrows() == 0 {
            return Err(SubmitError::InvalidRequest(
                "request carries no rows".into(),
            ));
        }
        let n_features = self.pool_read().n_features;
        if rows.ncols() != n_features {
            return Err(SubmitError::InvalidRequest(format!(
                "expected {n_features} features, got {}",
                rows.ncols()
            )));
        }
        if validate_finite(&rows, "serve").is_err() {
            return Err(SubmitError::InvalidRequest(
                "request contains non-finite values".into(),
            ));
        }
        let _span = suod_observe::span(
            self.observer.as_ref(),
            Stage::RequestEnqueue,
            SpanAttrs::none(),
        );
        let now = self.clock.now_millis();
        let slot = ResponseSlot::new();
        {
            let mut queue = lock_ignore_poison(&self.queue);
            if queue.closed {
                return Err(SubmitError::Closed);
            }
            if queue.pending.len() >= self.config.queue_capacity {
                self.observer.counter(Counter::Rejected, 1);
                lock_ignore_poison(&self.stats).rejected += 1;
                return Err(SubmitError::Busy {
                    capacity: self.config.queue_capacity,
                });
            }
            queue.pending.push_back(Pending {
                rows,
                enqueued_ms: now,
                deadline_at_ms: deadline_ms.map(|d| now.saturating_add(d)),
                deadline_ms,
                slot: Arc::clone(&slot),
            });
        }
        self.observer.counter(Counter::Admitted, 1);
        lock_ignore_poison(&self.stats).admitted += 1;
        self.work_ready.notify_all();
        Ok(Ticket { slot })
    }

    /// Clones the current pool `Arc`, dropping the read guard
    /// immediately so callers never pin a reload.
    fn pool_read(&self) -> Arc<ServingPool> {
        Arc::clone(
            &self
                .pool
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }

    fn reload(&self, clf: Suod) -> Result<ReloadReport> {
        let _span =
            suod_observe::span(self.observer.as_ref(), Stage::PoolReload, SpanAttrs::none());
        // Validate and derive the new pool's lookups *before* taking any
        // lock — a rejected reload leaves the service untouched.
        let current = self.pool_read();
        let incoming_features = clf.n_features()?;
        if incoming_features != current.n_features {
            return Err(Error::Reload(format!(
                "replacement pool scores {incoming_features} features, service was built \
                 for {}",
                current.n_features
            )));
        }
        let staged = ServingPool::new(clf, 0)?;

        // Lock order: `health` before `pool` (matches batch assembly).
        // Both guards are held only for the swap itself — never while
        // scoring — so in-flight batches are unaffected.
        let mut health = lock_ignore_poison(&self.health);
        let report =
            {
                let mut pool = self
                    .pool
                    .write()
                    .unwrap_or_else(|poison| poison.into_inner());
                let epoch = pool.epoch + 1;
                let new_pool = Arc::new(ServingPool { epoch, ..staged });
                let mut active = Vec::with_capacity(new_pool.model_names.len());
                let mut streaks = Vec::with_capacity(new_pool.model_names.len());
                let mut carried_over = 0usize;
                for &(pool_index, name) in &new_pool.model_names {
                    match pool.model_names.iter().position(|&(old_index, old_name)| {
                        old_index == pool_index && old_name == name
                    }) {
                        Some(old_pos) => {
                            active.push(health.active[old_pos]);
                            streaks.push(health.streaks[old_pos]);
                            carried_over += 1;
                        }
                        None => {
                            active.push(true);
                            streaks.push(0);
                        }
                    }
                }
                let total_models = new_pool.model_names.len();
                health.epoch = epoch;
                health.active = active;
                health.streaks = streaks;
                *pool = new_pool;
                ReloadReport {
                    epoch,
                    carried_over,
                    reset: total_models - carried_over,
                    total_models,
                }
            };
        drop(health);
        self.observer.counter(Counter::PoolReload, 1);
        lock_ignore_poison(&self.stats).reloads += 1;
        Ok(report)
    }

    /// Row cap for the next batch given the currently active models:
    /// the hard `max_batch_rows`, tightened by `max_batch_units` through
    /// the scheduler's deterministic cost forecast.
    fn batch_row_cap(&self, pool: &ServingPool, active: &[bool]) -> usize {
        let mut cap = self.config.max_batch_rows;
        if let Some(max_units) = self.config.max_batch_units {
            let active_cost: f64 = pool
                .unit_costs
                .iter()
                .zip(active)
                .filter(|(_, &a)| a)
                .map(|(&c, _)| c)
                .sum();
            if active_cost > 0.0 {
                // Invert forecast(rows) = active_cost * rows / train_rows.
                let rows = (max_units * pool.train_rows as f64 / active_cost).floor() as usize;
                cap = cap.min(rows.max(1));
            }
        }
        cap
    }

    fn process_once(&self) -> usize {
        // --- Assemble: drain FIFO up to the caps, shed expired work. ----
        let assemble_span = suod_observe::span(
            self.observer.as_ref(),
            Stage::BatchAssemble,
            SpanAttrs::none(),
        );
        // Snapshot (pool, mask) atomically: `health` is taken first,
        // then the pool `Arc` is cloned under it — the same order
        // `reload` uses, so the mask always describes this pool
        // generation. The read guard drops right away; the batch scores
        // on its own `Arc` and a concurrent reload never blocks on it.
        let (pool, active) = {
            let health = lock_ignore_poison(&self.health);
            (self.pool_read(), health.active.clone())
        };
        let row_cap = self.batch_row_cap(&pool, &active);
        let mut drained: Vec<Pending> = Vec::new();
        {
            let mut queue = lock_ignore_poison(&self.queue);
            let mut rows = 0usize;
            while let Some(front) = queue.pending.front() {
                let request_rows = front.rows.nrows();
                // Always take at least one request so oversized requests
                // cannot starve.
                if !drained.is_empty() && rows + request_rows > row_cap {
                    break;
                }
                rows += request_rows;
                drained.push(queue.pending.pop_front().expect("front exists"));
            }
        }
        if drained.is_empty() {
            drop(assemble_span);
            return 0;
        }
        let now = self.clock.now_millis();
        let mut batch: Vec<Pending> = Vec::with_capacity(drained.len());
        let mut retired = 0usize;
        for request in drained {
            match request.deadline_at_ms {
                Some(deadline_at) if deadline_at < now => {
                    self.observer.counter(Counter::Shed, 1);
                    self.observer.counter(Counter::DeadlineMissed, 1);
                    {
                        let mut stats = lock_ignore_poison(&self.stats);
                        stats.shed += 1;
                        stats.deadline_missed += 1;
                    }
                    request.slot.fill(ScoreOutcome::Shed {
                        waited_ms: now.saturating_sub(request.enqueued_ms),
                        deadline_ms: request.deadline_ms.unwrap_or(0),
                    });
                    retired += 1;
                }
                _ => batch.push(request),
            }
        }
        drop(assemble_span);
        if batch.is_empty() {
            return retired;
        }

        // --- Score the concatenated batch through the masked path. ------
        let n_cols = pool.n_features;
        let total_rows: usize = batch.iter().map(|r| r.rows.nrows()).sum();
        let mut data = Vec::with_capacity(total_rows * n_cols);
        for request in &batch {
            data.extend_from_slice(request.rows.as_slice());
        }
        let matrix = Matrix::from_vec(total_rows, n_cols, data)
            .expect("batch dimensions are consistent by construction");
        let scored = pool
            .clf
            .decision_function_masked(&matrix, &active, &self.observer);
        let (scores, predict_report) = match scored {
            Ok(pair) => pair,
            Err(e) => {
                let message = format!("prediction failed: {e}");
                // Stats are published before the tickets resolve so a
                // client that has observed its outcome always finds it
                // reflected in `report()`.
                lock_ignore_poison(&self.stats).requests_failed += batch.len() as u64;
                for request in &batch {
                    request.slot.fill(ScoreOutcome::Failed(message.clone()));
                }
                return retired + batch.len();
            }
        };

        // --- Health bookkeeping: streaks, timeouts, quarantine. ---------
        // Faults are derived from the *snapshot* mask first (no lock),
        // then written back under `health` only if the pool generation
        // is still the one this batch scored on — a batch that raced a
        // reload must not poison the fresh generation's streaks.
        //
        // Lock discipline: the service never holds `health` and `stats`
        // at the same time (`report()` relies on this — nested
        // acquisition in opposite orders would be an AB-BA deadlock).
        let mut faults: Vec<ModelFault> = Vec::new();
        let mut healthy_models = 0usize;
        let mut newly_quarantined = 0u64;
        let mut faulted = vec![false; active.len()];
        for failure in &predict_report.failures {
            if let Some(pos) = pool
                .model_names
                .iter()
                .position(|&(idx, _)| idx == failure.index)
            {
                faulted[pos] = true;
                faults.push(ModelFault {
                    pool_index: failure.index,
                    name: failure.name,
                    cause: failure.cause.to_string(),
                    quarantined: false,
                });
            }
        }
        if let Some(timeout) = self.config.predict_timeout {
            for (pos, &(pool_index, name)) in pool.model_names.iter().enumerate() {
                if active[pos] && !faulted[pos] && predict_report.model_times[pos] > timeout {
                    faulted[pos] = true;
                    faults.push(ModelFault {
                        pool_index,
                        name,
                        cause: format!(
                            "predict timeout: {:.1}ms > {:.1}ms budget",
                            predict_report.model_times[pos].as_secs_f64() * 1e3,
                            timeout.as_secs_f64() * 1e3
                        ),
                        quarantined: false,
                    });
                }
            }
        }
        for (pos, &was_faulted) in faulted.iter().enumerate() {
            if active[pos] && !was_faulted {
                healthy_models += 1;
            }
        }
        {
            let mut health = lock_ignore_poison(&self.health);
            if health.epoch == pool.epoch {
                for (pos, &was_faulted) in faulted.iter().enumerate() {
                    if !health.active[pos] {
                        continue;
                    }
                    if was_faulted {
                        health.streaks[pos] += 1;
                        if health.streaks[pos] >= self.config.predict_failure_budget {
                            health.active[pos] = false;
                            newly_quarantined += 1;
                            let pool_index = pool.model_names[pos].0;
                            for fault in &mut faults {
                                if fault.pool_index == pool_index {
                                    fault.quarantined = true;
                                }
                            }
                        }
                    } else {
                        health.streaks[pos] = 0;
                    }
                }
            }
        }
        if newly_quarantined > 0 {
            self.observer
                .counter(Counter::PredictQuarantined, newly_quarantined);
        }
        {
            let mut stats = lock_ignore_poison(&self.stats);
            stats.predict_faults += faults.len() as u64;
            stats.quarantined += newly_quarantined;
        }

        // --- Floor check + survivor-only combination. -------------------
        // The floor is taken over the models active for *this* batch, so
        // quarantining a persistently faulty model shrinks the
        // denominator and the service recovers even at
        // `min_healthy_fraction == 1.0`.
        let total_models = pool.model_names.len();
        let active_models = active.iter().filter(|&&a| a).count();
        let required = (((self.config.min_healthy_fraction * active_models as f64) - 1e-9).ceil()
            as usize)
            .max(1);
        if healthy_models < required {
            let message = format!(
                "ensemble degraded below serving floor: {healthy_models}/{active_models} \
                 active models healthy, {required} required"
            );
            lock_ignore_poison(&self.stats).requests_failed += batch.len() as u64;
            for request in &batch {
                request.slot.fill(ScoreOutcome::Failed(message.clone()));
            }
            return retired + batch.len();
        }
        let combine_span =
            suod_observe::span(self.observer.as_ref(), Stage::Combine, SpanAttrs::none());
        let combined = match pool.clf.combine_score_matrix(&scores) {
            Ok(c) => c,
            Err(e) => {
                let message = format!("combination failed: {e}");
                lock_ignore_poison(&self.stats).requests_failed += batch.len() as u64;
                for request in &batch {
                    request.slot.fill(ScoreOutcome::Failed(message.clone()));
                }
                return retired + batch.len();
            }
        };
        drop(combine_span);

        // --- Slice per-request outcomes, preserving row order. ----------
        let done = self.clock.now_millis();
        let mut offset = 0usize;
        let mut latencies = Vec::with_capacity(batch.len());
        let mut missed = 0u64;
        let mut outcomes = Vec::with_capacity(batch.len());
        for request in &batch {
            let rows = request.rows.nrows();
            let latency_ms = done.saturating_sub(request.enqueued_ms);
            if matches!(request.deadline_at_ms, Some(d) if done > d) {
                self.observer.counter(Counter::DeadlineMissed, 1);
                missed += 1;
            }
            latencies.push(latency_ms);
            outcomes.push(ScoreOutcome::Scored(ScoredBatch {
                combined: combined[offset..offset + rows].to_vec(),
                faults: faults.clone(),
                healthy_models,
                total_models,
                latency_ms,
            }));
            offset += rows;
        }

        // --- Stats + forecast calibration. ------------------------------
        // Published before the tickets resolve so a client that has
        // observed its outcome always finds it reflected in `report()`.
        {
            let mut stats = lock_ignore_poison(&self.stats);
            stats.batches += 1;
            stats.requests_scored += batch.len() as u64;
            stats.rows_scored += total_rows as u64;
            stats.deadline_missed += missed;
            stats.latencies_ms.extend(latencies);
            while stats.latencies_ms.len() > LATENCY_SAMPLE_CAP {
                stats.latencies_ms.pop_front();
            }
            let active_cost: f64 = pool
                .unit_costs
                .iter()
                .zip(&active)
                .filter(|(_, &a)| a)
                .map(|(&c, _)| c)
                .sum();
            let units =
                suod_scheduler::predict_batch_forecast(&[active_cost], total_rows, pool.train_rows);
            if units > 0.0 {
                let sample = predict_report.wall_time.as_secs_f64() / units;
                stats.secs_per_unit = Some(match stats.secs_per_unit {
                    Some(prev) => 0.7 * prev + 0.3 * sample,
                    None => sample,
                });
            }
        }
        for (request, outcome) in batch.iter().zip(outcomes) {
            request.slot.fill(outcome);
        }
        retired + batch.len()
    }

    fn report(&self) -> ServeReport {
        // Snapshot each lock separately — never hold `stats` and
        // `health` together (see the lock discipline note in
        // `process_once`).
        let mut report = {
            let stats = lock_ignore_poison(&self.stats);
            let mut sorted: Vec<u64> = stats.latencies_ms.iter().copied().collect();
            sorted.sort_unstable();
            let percentile = |p: f64| -> u64 {
                if sorted.is_empty() {
                    return 0;
                }
                let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            ServeReport {
                admitted: stats.admitted,
                rejected: stats.rejected,
                shed: stats.shed,
                deadline_missed: stats.deadline_missed,
                predict_faults: stats.predict_faults,
                quarantined: stats.quarantined,
                batches: stats.batches,
                requests_scored: stats.requests_scored,
                requests_failed: stats.requests_failed,
                rows_scored: stats.rows_scored,
                reloads: stats.reloads,
                pool_epoch: 0,
                active_models: 0,
                total_models: 0,
                p50_latency_ms: percentile(0.50),
                p99_latency_ms: percentile(0.99),
                max_latency_ms: sorted.last().copied().unwrap_or(0),
                secs_per_unit: stats.secs_per_unit,
            }
        };
        {
            let health = lock_ignore_poison(&self.health);
            report.pool_epoch = health.epoch;
            report.active_models = health.active.iter().filter(|&&a| a).count();
            report.total_models = health.active.len();
        }
        report
    }
}

/// Mutex helper mirroring the executor's convention: a poisoned lock
/// means a panicking thread, but serve state stays consistent (every
/// update is a complete transaction), so we keep serving.
pub(crate) fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;
    use suod::prelude::*;

    fn data(n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i % 9) as f64 * 0.3,
                    (i % 5) as f64 * 0.4,
                    ((i * 3) % 7) as f64,
                ]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn fitted(pool: Vec<ModelSpec>) -> Suod {
        let mut clf = Suod::builder()
            .base_estimators(pool)
            .min_healthy_fraction(0.5)
            .seed(11)
            .build()
            .unwrap();
        clf.fit(&data(48)).unwrap();
        clf
    }

    fn healthy_pool() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Hbos {
                n_bins: 8,
                tolerance: 0.3,
            },
            ModelSpec::IForest {
                n_estimators: 10,
                max_features: 1.0,
            },
        ]
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        for config in [
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch_rows: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch_units: Some(0.0),
                ..ServeConfig::default()
            },
            ServeConfig {
                predict_failure_budget: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                min_healthy_fraction: 1.5,
                ..ServeConfig::default()
            },
        ] {
            assert!(ScoreService::new(fitted(healthy_pool()), config).is_err());
        }
    }

    #[test]
    fn unfitted_estimator_is_rejected() {
        let clf = Suod::builder()
            .base_estimators(healthy_pool())
            .build()
            .unwrap();
        assert!(matches!(
            ScoreService::new(clf, ServeConfig::default()),
            Err(Error::Core(suod::Error::NotFitted))
        ));
    }

    #[test]
    fn submit_rejects_malformed_requests() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        // Empty request.
        assert!(matches!(
            service.submit(Matrix::zeros(0, 3)),
            Err(SubmitError::InvalidRequest(_))
        ));
        // Wrong feature count.
        assert!(matches!(
            service.submit(Matrix::zeros(2, 5)),
            Err(SubmitError::InvalidRequest(_))
        ));
        // Non-finite input never reaches a batch.
        let mut bad = Matrix::zeros(1, 3);
        bad.set(0, 1, f64::NAN);
        assert!(matches!(
            service.submit(bad),
            Err(SubmitError::InvalidRequest(_))
        ));
    }

    #[test]
    fn full_queue_pushes_back_with_busy() {
        let config = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let service = ScoreService::new(fitted(healthy_pool()), config).unwrap();
        let t1 = service.submit(data(3)).unwrap();
        let t2 = service.submit(data(3)).unwrap();
        match service.submit(data(3)).err() {
            Some(SubmitError::Busy { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected Busy, got {other:?}"),
        }
        // Draining the queue reopens admission; nothing was lost.
        assert_eq!(service.process_once(), 2);
        assert!(matches!(t1.wait(), ScoreOutcome::Scored(_)));
        assert!(matches!(t2.wait(), ScoreOutcome::Scored(_)));
        assert!(service.submit(data(3)).is_ok());
        let report = service.report();
        assert_eq!(report.admitted, 3);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn expired_deadlines_shed_before_compute() {
        let clock = Arc::new(ManualClock::new());
        let service = ScoreService::with_parts(
            fitted(healthy_pool()),
            ServeConfig::default(),
            clock.clone(),
            suod_observe::noop(),
        )
        .unwrap();
        let stale = service.submit_with_deadline(data(2), Some(10)).unwrap();
        let fresh = service.submit_with_deadline(data(2), Some(100)).unwrap();
        let eternal = service.submit_with_deadline(data(2), None).unwrap();
        clock.advance(50);
        assert_eq!(service.process_once(), 3);
        match stale.wait() {
            ScoreOutcome::Shed {
                waited_ms,
                deadline_ms,
            } => {
                assert_eq!(waited_ms, 50);
                assert_eq!(deadline_ms, 10);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        assert!(matches!(fresh.wait(), ScoreOutcome::Scored(_)));
        assert!(matches!(eternal.wait(), ScoreOutcome::Scored(_)));
        let report = service.report();
        assert_eq!(report.shed, 1);
        assert!(report.deadline_missed >= 1);
    }

    #[test]
    fn scores_match_direct_estimator_pass() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        let query = data(7);
        let ticket = service.submit(query.clone()).unwrap();
        service.process_once();
        let combined = match ticket.wait() {
            ScoreOutcome::Scored(batch) => batch.combined,
            other => panic!("expected scores, got {other:?}"),
        };
        let expected = fitted(healthy_pool()).combined_scores(&query).unwrap();
        assert_eq!(combined, expected);
    }

    #[test]
    fn oversized_request_is_not_starved() {
        let config = ServeConfig {
            max_batch_rows: 4,
            ..ServeConfig::default()
        };
        let service = ScoreService::new(fitted(healthy_pool()), config).unwrap();
        // 10 rows > max_batch_rows, but the batch always takes >= 1 request.
        let big = service.submit(data(10)).unwrap();
        assert_eq!(service.process_once(), 1);
        assert!(matches!(big.wait(), ScoreOutcome::Scored(_)));
    }

    #[test]
    fn forecast_cap_limits_batch_rows() {
        let clf = fitted(healthy_pool());
        let unit_cost: f64 = clf.predict_unit_costs().unwrap().iter().sum();
        let train_rows = clf.train_rows().unwrap() as f64;
        // Budget exactly enough units for ~6 rows.
        let config = ServeConfig {
            max_batch_units: Some(unit_cost * 6.0 / train_rows),
            ..ServeConfig::default()
        };
        let service = ScoreService::new(clf, config).unwrap();
        let a = service.submit(data(4)).unwrap();
        let b = service.submit(data(4)).unwrap();
        // 4 + 4 > 6-row cap: the second request waits for the next batch.
        assert_eq!(service.process_once(), 1);
        assert!(matches!(a.wait(), ScoreOutcome::Scored(_)));
        assert!(b.try_take().is_none());
        assert_eq!(service.process_once(), 1);
        assert!(matches!(b.wait(), ScoreOutcome::Scored(_)));
    }

    #[test]
    fn latency_samples_stay_bounded() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        // Pre-fill the ring to capacity; the next scored batch must
        // evict old samples instead of growing past the cap.
        {
            let mut stats = lock_ignore_poison(&service.inner.stats);
            stats.latencies_ms.extend(0..LATENCY_SAMPLE_CAP as u64);
        }
        let ticket = service.submit(data(3)).unwrap();
        service.process_once();
        assert!(matches!(ticket.wait(), ScoreOutcome::Scored(_)));
        let stats = lock_ignore_poison(&service.inner.stats);
        assert_eq!(stats.latencies_ms.len(), LATENCY_SAMPLE_CAP);
    }

    #[test]
    fn shutdown_fails_pending_requests() {
        let mut service =
            ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        let pending = service.submit(data(2)).unwrap();
        service.shutdown();
        assert!(matches!(pending.wait(), ScoreOutcome::Failed(_)));
        assert!(matches!(service.submit(data(2)), Err(SubmitError::Closed)));
    }

    #[test]
    fn reload_swaps_pool_and_preserves_counters() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        let before = service.submit(data(3)).unwrap();
        service.process_once();
        assert!(matches!(before.wait(), ScoreOutcome::Scored(_)));
        assert_eq!(service.pool_epoch(), 0);

        let replacement = fitted(healthy_pool());
        let expected = replacement.combined_scores(&data(5)).unwrap();
        let reload = service.reload(replacement).unwrap();
        assert_eq!(reload.epoch, 1);
        assert_eq!(reload.carried_over, 2);
        assert_eq!(reload.reset, 0);
        assert_eq!(service.pool_epoch(), 1);

        let after = service.submit(data(5)).unwrap();
        service.process_once();
        match after.wait() {
            ScoreOutcome::Scored(batch) => assert_eq!(batch.combined, expected),
            other => panic!("expected scores, got {other:?}"),
        }
        // Counters accumulate across the swap.
        let report = service.report();
        assert_eq!(report.admitted, 2);
        assert_eq!(report.requests_scored, 2);
        assert_eq!(report.reloads, 1);
        assert_eq!(report.pool_epoch, 1);
    }

    #[test]
    fn reload_rejects_mismatched_feature_width() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        let mut narrow = Suod::builder()
            .base_estimators(healthy_pool())
            .seed(11)
            .build()
            .unwrap();
        let rows: Vec<Vec<f64>> = (0..48).map(|i| vec![(i % 9) as f64 * 0.3]).collect();
        narrow.fit(&Matrix::from_rows(&rows).unwrap()).unwrap();
        assert!(matches!(service.reload(narrow), Err(Error::Reload(_))));
        // The rejected reload left the original pool serving.
        assert_eq!(service.pool_epoch(), 0);
        let ticket = service.submit(data(2)).unwrap();
        service.process_once();
        assert!(matches!(ticket.wait(), ScoreOutcome::Scored(_)));
    }

    #[test]
    fn reload_rejects_unfitted_estimator() {
        let service = ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        let unfitted = Suod::builder()
            .base_estimators(healthy_pool())
            .build()
            .unwrap();
        assert!(matches!(
            service.reload(unfitted),
            Err(Error::Core(suod::Error::NotFitted))
        ));
        assert_eq!(service.pool_epoch(), 0);
    }

    #[test]
    fn reload_carries_quarantine_state_for_matching_models() {
        let mut pool = healthy_pool();
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::NanOnPredict,
            n_neighbors: 3,
        });
        let config = ServeConfig {
            predict_failure_budget: 1,
            min_healthy_fraction: 0.5,
            ..ServeConfig::default()
        };
        let service = ScoreService::new(fitted(pool.clone()), config).unwrap();
        // One faulting batch quarantines the chaos model outright.
        let ticket = service.submit(data(3)).unwrap();
        service.process_once();
        assert!(matches!(ticket.wait(), ScoreOutcome::Scored(_)));
        assert_eq!(service.active_models(), vec![true, true, false]);

        // Same pool shape at the same indices: quarantine survives.
        let reload = service.reload(fitted(pool)).unwrap();
        assert_eq!(reload.carried_over, 3);
        assert_eq!(service.active_models(), vec![true, true, false]);

        // A different pool resets health for the changed slots.
        let reload = service.reload(fitted(healthy_pool())).unwrap();
        assert_eq!(reload.total_models, 2);
        assert_eq!(reload.carried_over, 2);
        assert_eq!(service.active_models(), vec![true, true]);
    }

    #[test]
    fn background_dispatcher_serves_concurrent_clients() {
        let mut service =
            ScoreService::new(fitted(healthy_pool()), ServeConfig::default()).unwrap();
        service.spawn_dispatcher();
        let service = Arc::new(service);
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || service.submit(data(3)).unwrap().wait())
            })
            .collect();
        for client in clients {
            assert!(matches!(client.join().unwrap(), ScoreOutcome::Scored(_)));
        }
        assert_eq!(service.report().requests_scored, 4);
    }
}
