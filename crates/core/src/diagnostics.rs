//! Unified diagnostics for fits and predictions.
//!
//! Telemetry used to be scattered across six ad-hoc `Suod` accessors
//! (`fit_report`, `model_health`, `fit_times`, `approximated`,
//! `projected`, `decision_function_timed`). [`FitDiagnostics`] collapses
//! them into one view derived from a single fit's event stream: the
//! executor's [`ExecutionReport`], the pool's [`ModelHealth`], and one
//! [`ModelDiagnostics`] row per configured model, plus the
//! [`CpuFeatures`] record of which hardware kernel path produced the
//! fit. [`PredictReport`] is the prediction-side counterpart returned by
//! `Suod::decision_function_observed`.
//!
//! (The old accessors briefly survived as `#[deprecated]` delegates;
//! they are gone now — every caller reads this type directly.)

use crate::health::{ModelHealth, ModelStatus};
use std::time::Duration;
use suod_linalg::{NeighborBackend, Precision, SimdLane};
use suod_scheduler::ExecutionReport;

/// The hardware kernel path a fit's distance kernels ran on — recorded
/// so bench JSON and traces say what produced their numbers.
///
/// The lane is host-dependent (runtime CPU detection, overridable via
/// `SUOD_SIMD_LANE` or [`suod_linalg::set_simd_lane_override`]); the
/// precision is configuration. In [`Precision::F64`] the lane never
/// changes any score bit, so this record is purely provenance; in
/// [`Precision::Mixed`] scores carry the documented f32-storage error
/// bound regardless of lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// Micro-kernel lane the kernels selected at fit time.
    pub simd_lane: SimdLane,
    /// Whether the host CPU supports the AVX2+FMA lane at all.
    pub avx2_supported: bool,
    /// Numeric precision the kernels were configured with.
    pub precision: Precision,
    /// Neighbour index backend the proximity detectors were configured
    /// with (exact, or the approximate HNSW graph with its recall knob).
    pub neighbor: NeighborBackend,
}

impl CpuFeatures {
    /// Captures the current host's lane selection alongside the
    /// configured precision and neighbour backend.
    pub fn detect(precision: Precision, neighbor: NeighborBackend) -> Self {
        Self {
            simd_lane: SimdLane::detect(),
            avx2_supported: SimdLane::supported() == SimdLane::Avx2,
            precision,
            neighbor,
        }
    }
}

impl std::fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lane={} (avx2 {}), precision={}, neighbors={}",
            self.simd_lane,
            if self.avx2_supported {
                "supported"
            } else {
                "unsupported"
            },
            self.precision,
            self.neighbor,
        )
    }
}

/// Everything one `Suod::fit` learned about itself.
///
/// Produced by every fit that reaches the execution stage — including
/// fits that ultimately fail with
/// [`Error::PoolDegraded`](crate::Error::PoolDegraded) — and retrievable
/// via `Suod::diagnostics`. The three sections are views over one event
/// stream: [`execution`](Self::execution) aggregates executor telemetry,
/// [`health`](Self::health) aggregates per-model fault handling, and
/// [`models`](Self::models) joins both with the module decisions
/// (projection, approximation) per pool member.
#[derive(Debug, Clone)]
pub struct FitDiagnostics {
    execution: ExecutionReport,
    health: ModelHealth,
    models: Vec<ModelDiagnostics>,
    cpu_features: CpuFeatures,
    ann_fallbacks: u64,
}

/// Diagnostics for one configured pool member, joined across the
/// execution report, the health report, and the module decisions.
#[derive(Debug, Clone)]
pub struct ModelDiagnostics {
    /// Index in the configured pool (stable across quarantines).
    pub index: usize,
    /// Short algorithm name (e.g. `"lof"`).
    pub name: &'static str,
    /// Whether the model survived the fit.
    pub status: ModelStatus,
    /// Total fit attempts consumed (1 = succeeded first try).
    pub attempts: usize,
    /// Whether the model ran far past its BPS forecast
    /// (wall-clock-dependent; excluded from determinism guarantees).
    pub straggler: bool,
    /// Measured fit duration of the successful attempt; `None` for
    /// quarantined models.
    pub fit_time: Option<Duration>,
    /// Whether the model was fitted in a JL-projected subspace.
    pub projected: bool,
    /// Whether the model's predictions are served by a PSA approximator.
    pub approximated: bool,
}

impl FitDiagnostics {
    /// Assembles the view (one `ModelDiagnostics` per configured model,
    /// in pool-index order).
    pub(crate) fn new(
        execution: ExecutionReport,
        health: ModelHealth,
        models: Vec<ModelDiagnostics>,
        cpu_features: CpuFeatures,
        ann_fallbacks: u64,
    ) -> Self {
        Self {
            execution,
            health,
            models,
            cpu_features,
            ann_fallbacks,
        }
    }

    /// The hardware kernel path (SIMD lane, precision, neighbour
    /// backend) the fit ran on.
    pub fn cpu_features(&self) -> CpuFeatures {
        self.cpu_features
    }

    /// Neighbour-graph builds that requested the approximate HNSW
    /// backend but routed to the exact path instead (input below the
    /// backend's `min_rows`, or a non-Euclidean metric) — the exactness
    /// fallback counter, summed over the fit's shared-cache builds.
    /// Always 0 on the exact backend.
    pub fn ann_fallbacks(&self) -> u64 {
        self.ann_fallbacks
    }

    /// Execution telemetry from the fit: per-task wall times, per-worker
    /// busy times, steals, cache hit/miss/build-time counters, failures
    /// and retries. The per-task times are the *measured* cost vector to
    /// correlate against the scheduler's forecasts (e.g. with
    /// `suod_metrics::spearman`).
    pub fn execution(&self) -> &ExecutionReport {
        &self.execution
    }

    /// Per-model health: which models survived, which were quarantined
    /// and why, attempts consumed, straggler flags.
    pub fn health(&self) -> &ModelHealth {
        &self.health
    }

    /// Per-model diagnostics rows, indexed like the configured pool.
    pub fn models(&self) -> &[ModelDiagnostics] {
        &self.models
    }

    /// Mutable rows, for the orchestrator to back-fill decisions made
    /// after the diagnostics were first recorded (PSA approximation).
    pub(crate) fn models_mut(&mut self) -> &mut [ModelDiagnostics] {
        &mut self.models
    }

    /// The diagnostics row of pool member `i`, if it exists.
    pub fn model(&self, i: usize) -> Option<&ModelDiagnostics> {
        self.models.get(i)
    }

    /// Measured fit durations of the **surviving** models, in pool-index
    /// order — the true cost vector used by the scheduling benchmarks.
    pub fn fit_times(&self) -> Vec<Duration> {
        self.models.iter().filter_map(|m| m.fit_time).collect()
    }

    /// Which surviving models were fitted in a projected subspace, in
    /// pool-index order.
    pub fn projected(&self) -> Vec<bool> {
        self.survivors().map(|m| m.projected).collect()
    }

    /// Which surviving models ended up with a PSA approximator, in
    /// pool-index order.
    pub fn approximated(&self) -> Vec<bool> {
        self.survivors().map(|m| m.approximated).collect()
    }

    fn survivors(&self) -> impl Iterator<Item = &ModelDiagnostics> {
        self.models
            .iter()
            .filter(|m| m.status == ModelStatus::Healthy)
    }
}

impl std::fmt::Display for FitDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fit: {} models, {} healthy, wall {:.3}s, utilization {:.2}, {} steals, \
             cache {}h/{}m, {} failures, {} retries",
            self.models.len(),
            self.health.healthy(),
            self.execution.wall_time.as_secs_f64(),
            self.execution.utilization(),
            self.execution.steals,
            self.execution.cache_hits,
            self.execution.cache_misses,
            self.execution.failures,
            self.execution.retries,
        )?;
        if self.ann_fallbacks > 0 {
            writeln!(
                f,
                "kernels: {} ({} ann fallbacks to exact)",
                self.cpu_features, self.ann_fallbacks
            )?;
        } else {
            writeln!(f, "kernels: {}", self.cpu_features)?;
        }
        for m in &self.models {
            write!(
                f,
                "  [{}] {} {} (attempts {}{}{}{})",
                m.index,
                m.name,
                m.status,
                m.attempts,
                if m.projected { ", projected" } else { "" },
                if m.approximated { ", approximated" } else { "" },
                if m.straggler { ", straggler" } else { "" },
            )?;
            match m.fit_time {
                Some(t) => writeln!(f, " {:.4}s", t.as_secs_f64())?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

/// One model's predict-time failure, recorded instead of failing the
/// whole scoring call: the model's column in the score matrix is NaN
/// (the quarantined-column convention the combiners skip) and the cause
/// lands here. The prediction-side analog of
/// [`ModelReport`](crate::ModelReport).
#[derive(Debug, Clone)]
pub struct PredictFailure {
    /// Original configured-pool index of the failed model (stable across
    /// fit-time quarantines, matching [`ModelReport`](crate::ModelReport)
    /// indices).
    pub index: usize,
    /// Short algorithm name (e.g. `"chaos"`).
    pub name: &'static str,
    /// Why scoring failed: a caught panic
    /// ([`Panicked`](suod_detectors::Error::Panicked)), a typed detector
    /// error, or non-finite query scores
    /// ([`DegenerateData`](suod_detectors::Error::DegenerateData)).
    pub cause: suod_detectors::Error,
}

/// Telemetry from one fault-isolated prediction pass
/// (`Suod::decision_function_observed` / `decision_function_masked`).
#[derive(Debug, Clone)]
pub struct PredictReport {
    /// Measured scoring duration of each surviving model, indexed by
    /// surviving-ensemble position (the order of
    /// [`surviving_models`](crate::Suod::surviving_models), the same
    /// index space as `skipped` — NOT configured-pool indices;
    /// approximated models answer through their regressors): the sum of
    /// the model's (model × row-chunk) task times. Zero for models the
    /// caller masked out.
    pub model_times: Vec<Duration>,
    /// End-to-end wall time of the prediction pass.
    pub wall_time: Duration,
    /// Number of query rows scored.
    pub n_rows: usize,
    /// Executor telemetry for the predict-phase task batch: per-task wall
    /// times, steals, and the fault-isolation `failures` counter, with
    /// `stragglers` holding the positions (in the surviving ensemble) of
    /// models whose measured scoring time ran far past their forecast
    /// share.
    pub execution: ExecutionReport,
    /// Models whose scoring failed this call (panic, typed error, or
    /// non-finite scores). Their columns in the returned matrix are NaN.
    pub failures: Vec<PredictFailure>,
    /// Positions (in the surviving ensemble) the caller masked out —
    /// e.g. models quarantined at serve time. Their columns are NaN and
    /// no work was scheduled for them.
    pub skipped: Vec<usize>,
}

impl PredictReport {
    /// Number of models that produced usable (finite) score columns.
    pub fn healthy_models(&self) -> usize {
        self.model_times
            .len()
            .saturating_sub(self.failures.len() + self.skipped.len())
    }

    /// `true` when every scheduled model scored successfully.
    pub fn fully_healthy(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for PredictReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "predict: {} rows, {} models ({} healthy, {} failed, {} skipped), wall {:.4}s, \
             {} task failures, {} steals",
            self.n_rows,
            self.model_times.len(),
            self.healthy_models(),
            self.failures.len(),
            self.skipped.len(),
            self.wall_time.as_secs_f64(),
            self.execution.failures,
            self.execution.steals,
        )?;
        for fail in &self.failures {
            writeln!(f, "  [{}] {} failed: {}", fail.index, fail.name, fail.cause)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::ModelReport;

    fn sample() -> FitDiagnostics {
        let health = ModelHealth::new(vec![
            ModelReport {
                index: 0,
                name: "knn",
                status: ModelStatus::Healthy,
                cause: None,
                attempts: 1,
                straggler: false,
            },
            ModelReport {
                index: 1,
                name: "chaos",
                status: ModelStatus::Quarantined,
                cause: Some(suod_detectors::Error::Panicked("boom".into())),
                attempts: 2,
                straggler: false,
            },
            ModelReport {
                index: 2,
                name: "hbos",
                status: ModelStatus::Healthy,
                cause: None,
                attempts: 1,
                straggler: true,
            },
        ]);
        let models = vec![
            ModelDiagnostics {
                index: 0,
                name: "knn",
                status: ModelStatus::Healthy,
                attempts: 1,
                straggler: false,
                fit_time: Some(Duration::from_millis(10)),
                projected: true,
                approximated: true,
            },
            ModelDiagnostics {
                index: 1,
                name: "chaos",
                status: ModelStatus::Quarantined,
                attempts: 2,
                straggler: false,
                fit_time: None,
                projected: false,
                approximated: false,
            },
            ModelDiagnostics {
                index: 2,
                name: "hbos",
                status: ModelStatus::Healthy,
                attempts: 1,
                straggler: true,
                fit_time: Some(Duration::from_millis(3)),
                projected: false,
                approximated: false,
            },
        ];
        FitDiagnostics::new(
            ExecutionReport::default(),
            health,
            models,
            CpuFeatures::detect(Precision::F64, NeighborBackend::Exact),
            0,
        )
    }

    #[test]
    fn survivor_views_skip_quarantined_models() {
        let d = sample();
        assert_eq!(
            d.fit_times(),
            vec![Duration::from_millis(10), Duration::from_millis(3)]
        );
        assert_eq!(d.projected(), vec![true, false]);
        assert_eq!(d.approximated(), vec![true, false]);
        assert_eq!(d.health().healthy(), 2);
        assert_eq!(d.models().len(), 3);
        assert_eq!(d.model(1).unwrap().attempts, 2);
        assert!(d.model(3).is_none());
    }

    #[test]
    fn display_summarizes_pool() {
        let text = sample().to_string();
        assert!(text.contains("3 models, 2 healthy"));
        assert!(text.contains("kernels: lane="));
        assert!(text.contains("precision=f64"));
        assert!(text.contains("neighbors=exact"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("projected"));
        assert!(text.contains("straggler"));
    }
}
