//! Distance metrics and brute-force k-nearest-neighbour search.
//!
//! Every proximity-based detector in the zoo (kNN, average-kNN, LOF, LoOP,
//! ABOD's fast variant) needs "distances from query points to training
//! points" plus "the k smallest of them". [`KnnIndex`] centralizes that so
//! the detectors share one carefully tested implementation. The paper's LOF
//! grid varies the metric (`manhattan`, `euclidean`, `minkowski`), which
//! [`DistanceMetric`] models.
//!
//! # Backends
//!
//! Brute-force evaluation is pluggable via [`DistanceBackend`]:
//!
//! * `naive` — one query row against the full training matrix at a time;
//!   the reference implementation.
//! * `blocked` (default) — identical arithmetic, tiled over column blocks
//!   so a panel of training rows stays cache-resident; **bit-identical**
//!   to `naive` for every metric.
//! * `gemm` — Euclidean distances through the packed-panel GEMM in
//!   [`crate::gemm`] via the norm trick `d² = ‖x‖² + ‖y‖² − 2·x·y`
//!   (clamped at zero); fastest, numerically equal within ~1e-9 on squared
//!   distances but *not* bitwise equal to `naive`. Non-Euclidean metrics
//!   fall back to `blocked` and record a fallback hit. The micro-kernel
//!   lane (scalar or AVX2) is picked per invocation by
//!   [`SimdLane::detect`](crate::gemm::SimdLane::detect) — invisible in
//!   the output, visible in the counters. With
//!   [`Precision::Mixed`](crate::gemm::Precision) the gemm paths store
//!   panels in f32 and accumulate in f64: distances are then taken
//!   between the f32-rounded rows, within
//!   [`mixed_distance_error_bound`](crate::gemm::mixed_distance_error_bound)
//!   of the exact values, and still deterministic across thread counts
//!   and lanes.

use crate::gemm::{
    dist_from_gram, DistanceBackend, KernelConfig, KernelCounters, KernelStats, PackedPanels,
    PackedPanelsF32, Precision, SimdLane, NR,
};
use crate::hnsw::{DistCtx, HnswGraph, NeighborBackend};
use crate::{Error, Matrix, Result};
use std::sync::Arc;

/// Distance metric between feature vectors.
///
/// Matches the LOF hyperparameter grid in the paper's Table B.1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DistanceMetric {
    /// L2 distance.
    #[default]
    Euclidean,
    /// L1 distance.
    Manhattan,
    /// Lp distance with the given exponent `p >= 1`.
    Minkowski(f64),
}

impl DistanceMetric {
    /// Distance between two equally long vectors.
    ///
    /// # Panics
    ///
    /// Debug-asserts equal lengths.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match *self {
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            DistanceMetric::Manhattan => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum(),
            DistanceMetric::Minkowski(p) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y).abs().powf(p))
                .sum::<f64>()
                .powf(1.0 / p),
        }
    }

    /// Parses the PyOD-style metric name used in the paper's model grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "euclidean" => Ok(DistanceMetric::Euclidean),
            "manhattan" => Ok(DistanceMetric::Manhattan),
            "minkowski" => Ok(DistanceMetric::Minkowski(3.0)),
            other => Err(Error::InvalidParameter(format!(
                "unknown distance metric `{other}`"
            ))),
        }
    }
}

/// Rows of `b` per cache tile in the blocked backend: at the widths the
/// paper evaluates (d ≤ a few hundred) a 256-row tile is L1/L2-resident,
/// so a block of `a` rows streams over a hot tile instead of re-reading
/// all of `b` from L3/DRAM per query row.
const BLOCKED_J_TILE: usize = 256;

/// Rows of `a` per cache tile in the blocked backend: bounds the output
/// window a `b` tile sweeps before advancing, so writes stay inside a
/// band of rows (TLB-friendly at 10k+ row matrices) while the `b` tile
/// is reused from L1 across the whole band.
const BLOCKED_I_TILE: usize = 64;

/// Query rows per micro-tile in the batched brute-force kNN fast path.
const KNN_Q_TILE: usize = 32;

/// Training rows per tile in the batched brute-force kNN fast path.
const KNN_T_TILE: usize = 512;

/// Full pairwise distance matrix between the rows of `a` and the rows of `b`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances(a: &Matrix, b: &Matrix, metric: DistanceMetric) -> Result<Matrix> {
    pairwise_distances_parallel(a, b, metric, 1)
}

/// [`pairwise_distances`] chunked over row blocks of `a` across
/// `n_threads` scoped threads, evaluated through the blocked kernel
/// (bit-identical to naive — see [`DistanceBackend::Blocked`]).
///
/// Each output element is computed by the same code path regardless of
/// chunking and tiling, so the result is **bit-identical** to the
/// single-threaded naive kernel for every `n_threads`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances_parallel(
    a: &Matrix,
    b: &Matrix,
    metric: DistanceMetric,
    n_threads: usize,
) -> Result<Matrix> {
    pairwise_distances_backend(a, b, metric, DistanceBackend::Blocked, n_threads, None)
}

/// Pairwise distances through an explicit [`DistanceBackend`].
///
/// `naive` and `blocked` produce bitwise-equal matrices for every metric;
/// `gemm` applies the norm trick for [`DistanceMetric::Euclidean`] and
/// falls back to `blocked` otherwise (recording a fallback hit on
/// `stats`). All backends are bit-identical across `n_threads`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances_backend(
    a: &Matrix,
    b: &Matrix,
    metric: DistanceMetric,
    backend: DistanceBackend,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::ShapeMismatch {
            op: "pairwise_distances",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    match backend {
        DistanceBackend::Naive => Ok(naive_pairwise(a, b, metric, n_threads)),
        DistanceBackend::Blocked => Ok(blocked_pairwise(a, b, metric, n_threads)),
        DistanceBackend::Gemm => {
            if metric == DistanceMetric::Euclidean {
                gemm_pairwise(a, b, Precision::F64, n_threads, stats)
            } else {
                if let Some(s) = stats {
                    s.record_fallback();
                }
                Ok(blocked_pairwise(a, b, metric, n_threads))
            }
        }
    }
}

/// Pairwise distances honouring a full [`KernelConfig`]: the backend
/// *and* the precision. [`Precision::Mixed`] only changes the
/// [`DistanceBackend::Gemm`] Euclidean path (f32 packed storage, f64
/// accumulation, within [`crate::gemm::mixed_distance_error_bound`] of
/// the exact distances); every other combination is exact and identical
/// to [`pairwise_distances_backend`]. All paths remain bit-identical
/// across `n_threads`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances_with(
    a: &Matrix,
    b: &Matrix,
    metric: DistanceMetric,
    config: KernelConfig,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if config.backend == DistanceBackend::Gemm
        && config.precision == Precision::Mixed
        && metric == DistanceMetric::Euclidean
    {
        if a.ncols() != b.ncols() {
            return Err(Error::ShapeMismatch {
                op: "pairwise_distances",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        return gemm_pairwise(a, b, Precision::Mixed, n_threads, stats);
    }
    pairwise_distances_backend(a, b, metric, config.backend, n_threads, stats)
}

fn naive_pairwise(a: &Matrix, b: &Matrix, metric: DistanceMetric, n_threads: usize) -> Matrix {
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols, n_threads, |rows, block| {
        for (offset, out_row) in block.chunks_mut(cols).enumerate() {
            let ra = a.row(rows.start + offset);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = metric.distance(ra, b.row(j));
            }
        }
    });
    out
}

fn blocked_pairwise(a: &Matrix, b: &Matrix, metric: DistanceMetric, n_threads: usize) -> Matrix {
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols, n_threads, |rows, block| {
        // i-tile x j-tile: the j-tile of `b` rows stays in L1 while a
        // bounded band of `a` rows consumes it, and output writes stay
        // inside that band instead of striding the whole matrix per
        // tile. Per element the arithmetic is exactly the naive
        // `metric.distance` call — bit-identical.
        let block_rows = rows.len();
        for i0 in (0..block_rows).step_by(BLOCKED_I_TILE) {
            let i1 = (i0 + BLOCKED_I_TILE).min(block_rows);
            for j0 in (0..cols).step_by(BLOCKED_J_TILE) {
                let j1 = (j0 + BLOCKED_J_TILE).min(cols);
                for offset in i0..i1 {
                    let ra = a.row(rows.start + offset);
                    let out_row = &mut block[offset * cols..(offset + 1) * cols];
                    for (j, o) in out_row[j0..j1].iter_mut().enumerate() {
                        *o = metric.distance(ra, b.row(j0 + j));
                    }
                }
            }
        }
    });
    out
}

fn gemm_pairwise(
    a: &Matrix,
    b: &Matrix,
    precision: Precision,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Result<Matrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::ShapeMismatch {
            op: "gemm_pairwise",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let lane = SimdLane::detect();
    if let Some(s) = stats {
        s.record_gemm(a.nrows(), b.nrows(), lane, precision);
    }
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    // The norm-trick epilogue is fused into the GEMM tile write-back:
    // distances stream out in a single pass instead of materialising the
    // Gram matrix and re-walking it (which triples memory traffic on
    // large inputs). In mixed mode the norms are taken over the
    // f32-rounded rows so every term refers to the same rounded data.
    match precision {
        Precision::F64 => {
            let na = crate::gemm::row_sq_norms(a);
            let nb = crate::gemm::row_sq_norms(b);
            let packed = PackedPanels::from_rows(b);
            crate::parallel::par_row_blocks(
                out.as_mut_slice(),
                cols.max(1),
                n_threads,
                |rows, block| {
                    crate::gemm::gram_rows_dist_into(a, rows, &packed, lane, &na, &nb, block);
                },
            );
        }
        Precision::Mixed => {
            let na = crate::gemm::row_sq_norms_mixed(a);
            let nb = crate::gemm::row_sq_norms_mixed(b);
            let packed = PackedPanelsF32::from_rows(b);
            crate::parallel::par_row_blocks(
                out.as_mut_slice(),
                cols.max(1),
                n_threads,
                |rows, block| {
                    crate::gemm::gram_rows_dist_into_mixed(a, rows, &packed, lane, &na, &nb, block);
                },
            );
        }
    }
    Ok(out)
}

/// Self-distance matrix of `a`: equal to `pairwise_distances(a, a, m)`
/// but computes only the upper triangle and mirrors it, halving the
/// metric evaluations.
///
/// The mirror is exact: every supported metric is built from terms
/// symmetric in its arguments (`(x - y)^2`, `|x - y|`), so
/// `distance(u, v)` is bitwise equal to `distance(v, u)` and the result
/// matches the naive full computation bit-for-bit.
pub fn pairwise_distances_symmetric(a: &Matrix, metric: DistanceMetric) -> Matrix {
    pairwise_distances_symmetric_parallel(a, metric, 1)
}

/// [`pairwise_distances_symmetric`] with the upper-triangle rows chunked
/// across `n_threads` scoped threads through the blocked kernel
/// (bit-identical to naive for every `n_threads`).
pub fn pairwise_distances_symmetric_parallel(
    a: &Matrix,
    metric: DistanceMetric,
    n_threads: usize,
) -> Matrix {
    pairwise_distances_symmetric_backend(a, metric, DistanceBackend::Blocked, n_threads, None)
}

/// Symmetric pairwise distances through an explicit [`DistanceBackend`].
///
/// `naive`/`blocked` evaluate the upper triangle and mirror (bitwise
/// equal to each other and to the full naive matrix); `gemm` computes the
/// full norm-trick matrix directly — the Gram matrix and the norm sums
/// are symmetric term by term, so the result is still exactly symmetric.
/// Non-Euclidean metrics under `gemm` fall back to `blocked` (recording a
/// fallback hit on `stats`).
pub fn pairwise_distances_symmetric_backend(
    a: &Matrix,
    metric: DistanceMetric,
    backend: DistanceBackend,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Matrix {
    pairwise_distances_symmetric_with(
        a,
        metric,
        KernelConfig::default().with_backend(backend),
        n_threads,
        stats,
    )
}

/// Symmetric pairwise distances honouring a full [`KernelConfig`]
/// (backend and precision) — the symmetric counterpart of
/// [`pairwise_distances_with`]. Mixed precision affects only the gemm
/// Euclidean path; the norm trick stays exactly symmetric there and the
/// diagonal is exactly zero (norms and Gram diagonal are both taken over
/// the f32-rounded rows, so the terms cancel bitwise).
pub fn pairwise_distances_symmetric_with(
    a: &Matrix,
    metric: DistanceMetric,
    config: KernelConfig,
    n_threads: usize,
    stats: Option<&KernelStats>,
) -> Matrix {
    let backend = config.backend;
    if backend == DistanceBackend::Gemm {
        if metric == DistanceMetric::Euclidean {
            return gemm_pairwise(a, a, config.precision, n_threads, stats)
                .expect("same matrix: shapes agree");
        }
        if let Some(s) = stats {
            s.record_fallback();
        }
    }
    let n = a.nrows();
    let mut out = Matrix::zeros(n, n);
    let tile = match backend {
        DistanceBackend::Naive => n.max(1),
        _ => BLOCKED_J_TILE,
    };
    let itile = match backend {
        DistanceBackend::Naive => n.max(1),
        _ => BLOCKED_I_TILE,
    };
    crate::parallel::par_row_blocks(out.as_mut_slice(), n.max(1), n_threads, |rows, block| {
        let block_rows = rows.len();
        for i0 in (0..block_rows).step_by(itile) {
            let i1 = (i0 + itile).min(block_rows);
            for j0 in (0..n).step_by(tile) {
                let j1 = (j0 + tile).min(n);
                for offset in i0..i1 {
                    let i = rows.start + offset;
                    let ra = a.row(i);
                    let out_row = &mut block[offset * n..(offset + 1) * n];
                    // Rows past this tile's end contribute nothing
                    // (lo == j1).
                    let lo = j0.max(i).min(j1);
                    for (j, o) in out_row[lo..j1].iter_mut().enumerate() {
                        *o = metric.distance(ra, a.row(lo + j));
                    }
                }
            }
        }
    });
    // Mirror the strict upper triangle; cheap copies, no metric calls.
    for i in 1..n {
        for j in 0..i {
            let d = out.get(j, i);
            out.set(i, j, d);
        }
    }
    out
}

/// A neighbour returned by [`KnnIndex`] queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the training matrix.
    pub index: usize,
    /// Distance from the query to that training row.
    pub distance: f64,
}

/// k-nearest-neighbour index over a training matrix.
///
/// Two exact backends — brute force (`O(n d)` per query, the complexity
/// the paper quotes for proximity-based models) and a
/// [`KdTree`](crate::kdtree::KdTree) used automatically for
/// low-dimensional data, where branch-and-bound wins decisively — plus
/// an opt-in approximate backend, the seeded deterministic
/// [`HnswGraph`] selected via
/// [`NeighborBackend::Hnsw`] in the [`KernelConfig`]. The exact
/// backends return identical results; HNSW trades a documented recall
/// target for `O(n log n)` construction and engages only on Euclidean
/// indexes with at least
/// [`HnswParams::min_rows`](crate::hnsw::HnswParams) rows (everything
/// else routes to the exact path and records an
/// [`ann_fallback_hits`](KernelCounters::ann_fallback_hits) count).
///
/// The brute-force sweep is evaluated through the [`DistanceBackend`]
/// in the index's [`KernelConfig`]; the KD-tree crossover
/// (`d ≤ kdtree_crossover_dim`, `n ≥ kdtree_min_rows`) is configurable
/// there too. None of the backends caps the number of indexed or
/// queried rows — the batched sweeps stream tiles through bounded
/// per-query heaps, so memory stays `O(n d + q k)` at any size. (Until
/// PR 5 the self-sweep materialized an `n x n` matrix and documented an
/// `n ≤ 4096` practical cap; the cap is gone — 4096 rows survives only
/// as the size at which the symmetric-matrix fast path hands over to
/// tile streaming, see [`Self::self_query_batch`].)
///
/// # Example
///
/// ```
/// use suod_linalg::{DistanceMetric, KnnIndex, Matrix};
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let train = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]])?;
/// let index = KnnIndex::build(&train, DistanceMetric::Euclidean)?;
/// let nn = index.query(&[0.2], 2);
/// assert_eq!(nn[0].index, 0);
/// assert_eq!(nn[1].index, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnnIndex {
    train: Matrix,
    metric: DistanceMetric,
    tree: Option<crate::kdtree::KdTree>,
    /// The approximate graph, when [`NeighborBackend::Hnsw`] is
    /// configured and the index is eligible (Euclidean, large enough).
    hnsw: Option<HnswGraph>,
    config: KernelConfig,
    /// Cached `‖row‖²` for the norm-trick paths; populated on the
    /// brute-force Euclidean gemm configuration and whenever the HNSW
    /// backend engages (its distance evaluations use the same trick).
    train_sq_norms: Option<Vec<f64>>,
    stats: Arc<KernelStats>,
}

impl KnnIndex {
    /// Builds an index over the rows of `train` with the default
    /// [`KernelConfig`], choosing the KD-tree backend automatically for
    /// low-dimensional data.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build(train: &Matrix, metric: DistanceMetric) -> Result<Self> {
        Self::build_with(train, metric, KernelConfig::default())
    }

    /// Builds an index with explicit kernel tuning: the distance backend
    /// for brute-force sweeps and the KD-tree crossover thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build_with(
        train: &Matrix,
        metric: DistanceMetric,
        config: KernelConfig,
    ) -> Result<Self> {
        Self::build_inner(train, metric, config, 1, true, "KnnIndex::build")
    }

    /// [`build_with`](Self::build_with) with an explicit worker budget
    /// for index construction. Only the HNSW backend has parallel
    /// construction work (its frozen-graph candidate searches); the
    /// resulting index is **bit-identical for every `n_threads`**.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build_with_threads(
        train: &Matrix,
        metric: DistanceMetric,
        config: KernelConfig,
        n_threads: usize,
    ) -> Result<Self> {
        Self::build_inner(train, metric, config, n_threads, true, "KnnIndex::build")
    }

    /// Serializes the index for a `suod-pool/1` snapshot: the training
    /// slab, metric, and [`KernelConfig`]. Tree/graph internals are *not*
    /// stored — [`snapshot_read`](Self::snapshot_read) rebuilds them
    /// deterministically (KD-tree construction is input-ordered and the
    /// HNSW build is seeded), which keeps the format independent of
    /// in-memory layout while preserving bit-identical query results.
    pub fn snapshot_write(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.write_matrix(&self.train);
        w.write_metric(self.metric);
        w.write_kernel_config(&self.config);
    }

    /// Reconstructs an index written by [`snapshot_write`](Self::snapshot_write),
    /// rebuilding any KD-tree or HNSW structure with `n_threads` workers
    /// (bit-identical for every thread count).
    ///
    /// # Errors
    ///
    /// Returns a `snapshot:`-prefixed [`Error::InvalidParameter`] on a
    /// truncated or corrupt payload, and propagates build failures.
    pub fn snapshot_read(
        r: &mut crate::snapshot::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        let train = r.read_matrix()?;
        let metric = r.read_metric()?;
        let config = r.read_kernel_config()?;
        Self::build_with_threads(&train, metric, config, n_threads)
    }

    /// Builds an index that always scans linearly (used by tests to check
    /// backend equivalence, and available when the access pattern defeats
    /// tree pruning).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build_brute_force(train: &Matrix, metric: DistanceMetric) -> Result<Self> {
        Self::build_inner(
            train,
            metric,
            KernelConfig::default(),
            1,
            false,
            "KnnIndex::build_brute_force",
        )
    }

    fn build_inner(
        train: &Matrix,
        metric: DistanceMetric,
        config: KernelConfig,
        n_threads: usize,
        allow_acceleration: bool,
        op: &'static str,
    ) -> Result<Self> {
        if train.nrows() == 0 {
            return Err(Error::Empty(op));
        }
        let stats = Arc::new(KernelStats::new());
        // The ANN backend takes precedence over the KD-tree when it is
        // eligible; otherwise it falls back to the exact decision chain
        // and records the exactness fallback.
        let hnsw_params = match config.neighbor {
            NeighborBackend::Hnsw(p)
                if allow_acceleration
                    && metric == DistanceMetric::Euclidean
                    && train.nrows() >= p.min_rows =>
            {
                Some(p)
            }
            NeighborBackend::Hnsw(_) => {
                stats.record_ann_fallback();
                None
            }
            NeighborBackend::Exact => None,
        };
        let tree = if hnsw_params.is_none()
            && allow_acceleration
            && config.uses_kdtree(train.nrows(), train.ncols())
        {
            Some(crate::kdtree::KdTree::build(train, metric)?)
        } else {
            None
        };
        let gemm_brute =
            hnsw_params.is_none() && tree.is_none() && config.backend == DistanceBackend::Gemm;
        if gemm_brute && metric != DistanceMetric::Euclidean {
            // The gemm backend only accelerates Euclidean; every sweep on
            // this index will take the blocked path instead.
            stats.record_fallback();
        }
        // In mixed mode the cached norms are taken over the f32-rounded
        // rows — the invariant that keeps every norm-trick term (norms,
        // Gram tiles, single-query dots) referring to the same data. The
        // HNSW graph shares the cached norms for its norm-trick distance
        // evaluations.
        let train_sq_norms = ((gemm_brute && metric == DistanceMetric::Euclidean)
            || hnsw_params.is_some())
        .then(|| match config.precision {
            Precision::F64 => crate::gemm::row_sq_norms(train),
            Precision::Mixed => crate::gemm::row_sq_norms_mixed(train),
        });
        let hnsw = hnsw_params.map(|p| {
            HnswGraph::build(
                train,
                train_sq_norms.as_deref().expect("norms cached for hnsw"),
                config.precision,
                p,
                n_threads,
            )
        });
        Ok(Self {
            train: train.clone(),
            metric,
            tree,
            hnsw,
            config,
            train_sq_norms,
            stats,
        })
    }

    /// `true` when queries go through the KD-tree backend.
    pub fn uses_kdtree(&self) -> bool {
        self.tree.is_some()
    }

    /// `true` when queries go through the approximate HNSW graph.
    pub fn uses_hnsw(&self) -> bool {
        self.hnsw.is_some()
    }

    /// The HNSW graph, when the approximate backend engaged.
    pub fn hnsw(&self) -> Option<&HnswGraph> {
        self.hnsw.as_ref()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.train.nrows()
    }

    /// `true` when the index holds no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.train.nrows() == 0
    }

    /// The indexed training matrix.
    pub fn train_data(&self) -> &Matrix {
        &self.train
    }

    /// The metric this index was built with.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The kernel tuning this index was built with.
    pub fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    /// Snapshot of the kernel-work counters accumulated by this index
    /// (and its clones — the counters are shared).
    pub fn kernel_counters(&self) -> KernelCounters {
        self.stats.snapshot()
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending distance.
    ///
    /// `k` is clamped to the index size. Ties are broken by training index.
    ///
    /// # Panics
    ///
    /// Panics when `query.len()` differs from the training dimensionality.
    pub fn query(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.train.ncols(),
            "query dimensionality must match the index"
        );
        if let Some(h) = &self.hnsw {
            // Approximate path: beam search over the HNSW graph with the
            // same norm-trick distances as the gemm tiles. `ef_search`
            // floors at k so the beam can always hold a full answer.
            self.stats.record_ann_query(1);
            let norms = self
                .train_sq_norms
                .as_deref()
                .expect("hnsw caches row norms at build");
            let ctx = DistCtx::new(&self.train, norms, self.config.precision);
            return h.search(&ctx, query, k.min(self.train.nrows()), h.params().ef_search);
        }
        if let Some(tree) = &self.tree {
            return tree.query(query, k);
        }
        // Single-query gemm path: same `dist_from_gram` combination, and
        // the scalar `dot` carries the same bits as the packed micro-kernel
        // (one accumulator, ascending k) — so per-row queries agree
        // bitwise with the batched gemm tiles. The mixed variant swaps in
        // the f32-rounding dot/norm, which the mixed micro-kernel matches
        // bitwise on either lane.
        if let Some(norms) = &self.train_sq_norms {
            let mixed = self.config.precision == Precision::Mixed;
            let nq = if mixed {
                crate::gemm::norm_sq_mixed(query)
            } else {
                crate::matrix::norm_sq(query)
            };
            let all: Vec<Neighbor> = (0..self.train.nrows())
                .map(|i| {
                    let g = if mixed {
                        crate::gemm::dot_mixed(query, self.train.row(i))
                    } else {
                        crate::matrix::dot(query, self.train.row(i))
                    };
                    Neighbor {
                        index: i,
                        distance: dist_from_gram(nq, norms[i], g),
                    }
                })
                .collect();
            return select_smallest(all, k);
        }
        let all: Vec<Neighbor> = (0..self.train.nrows())
            .map(|i| Neighbor {
                index: i,
                distance: self.metric.distance(query, self.train.row(i)),
            })
            .collect();
        select_smallest(all, k)
    }

    /// Like [`query`](Self::query) but excludes the training row
    /// `exclude` — used for leave-one-out queries on the training set
    /// itself (LOF, LoOP, kNN training scores).
    pub fn query_excluding(&self, query: &[f64], k: usize, exclude: usize) -> Vec<Neighbor> {
        let mut nn = self.query(query, (k + 1).min(self.train.nrows()));
        nn.retain(|n| n.index != exclude);
        nn.truncate(k);
        nn
    }

    /// k-nearest neighbours for every row of `queries`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when dimensionality differs.
    pub fn query_batch(&self, queries: &Matrix, k: usize) -> Result<Vec<Vec<Neighbor>>> {
        self.query_batch_parallel(queries, k, 1)
    }

    /// [`query_batch`](Self::query_batch) with the queries chunked
    /// across `n_threads` scoped threads (both backends). Results are
    /// bit-identical to the sequential batch for every `n_threads`, and
    /// equal to per-row [`query`](Self::query) calls.
    ///
    /// On the brute-force blocked/gemm backends this runs the batched
    /// fast path: distances are produced tile by tile (scalar tiles for
    /// `blocked`, packed GEMM tiles plus the norm trick for `gemm`) and
    /// each query keeps its k best in a bounded max-heap — the full
    /// `queries x train` distance matrix is never materialized.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when dimensionality differs.
    pub fn query_batch_parallel(
        &self,
        queries: &Matrix,
        k: usize,
        n_threads: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if queries.ncols() != self.train.ncols() {
            return Err(Error::ShapeMismatch {
                op: "KnnIndex::query_batch",
                lhs: queries.shape(),
                rhs: self.train.shape(),
            });
        }
        if self.hnsw.is_some()
            || self.tree.is_some()
            || self.config.backend == DistanceBackend::Naive
        {
            // Per-row queries chunked across threads; graph searches are
            // pure reads, so chunking cannot change any result.
            return Ok(crate::parallel::par_chunk_map(
                queries.nrows(),
                n_threads,
                |range| range.map(|i| self.query(queries.row(i), k)).collect(),
            ));
        }
        Ok(self.brute_batch_topk(queries, k, n_threads, false))
    }

    /// Leave-one-out k-nearest neighbours for every training row —
    /// `self_query_batch(k, t)[i]` equals `query_excluding(row(i), k, i)`
    /// bit-for-bit. This is the hot loop of every proximity detector's
    /// `fit` (LOF, kNN, LoOP, COF, ABOD).
    ///
    /// Brute-force gemm indexes stream norm-trick GEMM tiles through
    /// per-row bounded heaps (no `n x n` matrix, no size cap). Other
    /// brute-force backends use the symmetric-matrix fast path up to a
    /// memory cap — distances from
    /// [`pairwise_distances_symmetric_backend`], which evaluates the
    /// metric only for the upper triangle and mirrors — and the blocked
    /// backend switches to the tiled heap sweep beyond the cap. The
    /// KD-tree backend (and oversized naive inputs) fall back to per-row
    /// queries, chunked across `n_threads` either way.
    pub fn self_query_batch(&self, k: usize, n_threads: usize) -> Vec<Vec<Neighbor>> {
        let n = self.train.nrows();
        if self.hnsw.is_some() {
            // Leave-one-out via the approximate graph: per-row searches
            // with the `query_excluding` k+1 protocol, chunked across
            // threads (pure reads — thread-count invariant).
            return crate::parallel::par_chunk_map(n, n_threads, |range| {
                range
                    .map(|i| self.query_excluding(self.train.row(i), k, i))
                    .collect()
            });
        }
        if self.tree.is_none() {
            if self.train_sq_norms.is_some() {
                return self.brute_batch_topk(&self.train, k, n_threads, true);
            }
            if n <= SELF_BATCH_MATRIX_MAX_ROWS {
                // Gemm lands here only for non-Euclidean metrics; its
                // symmetric fallback is the blocked kernel (the fallback
                // hit was recorded at build time).
                let backend = match self.config.backend {
                    DistanceBackend::Naive => DistanceBackend::Naive,
                    _ => DistanceBackend::Blocked,
                };
                let d = pairwise_distances_symmetric_backend(
                    &self.train,
                    self.metric,
                    backend,
                    n_threads,
                    None,
                );
                return crate::parallel::par_chunk_map(n, n_threads, |range| {
                    range
                        .map(|i| {
                            let all: Vec<Neighbor> = d
                                .row(i)
                                .iter()
                                .enumerate()
                                .map(|(j, &distance)| Neighbor { index: j, distance })
                                .collect();
                            // Same k+1 / drop-self / truncate protocol as
                            // `query_excluding`, fed bitwise-equal distances.
                            let mut nn = select_smallest(all, (k + 1).min(n));
                            nn.retain(|nb| nb.index != i);
                            nn.truncate(k);
                            nn
                        })
                        .collect()
                });
            }
            if self.config.backend != DistanceBackend::Naive {
                return self.brute_batch_topk(&self.train, k, n_threads, true);
            }
        }
        crate::parallel::par_chunk_map(n, n_threads, |range| {
            range
                .map(|i| self.query_excluding(self.train.row(i), k, i))
                .collect()
        })
    }

    /// The batched brute-force kNN fast path: stream `train` tiles
    /// (packed GEMM tiles on the gemm configuration, scalar blocked tiles
    /// otherwise) through a bounded max-heap per query.
    ///
    /// Deterministic across `n_threads` and tile boundaries: every
    /// distance is computed by a per-element code path independent of the
    /// tiling, and the heap keeps the k smallest under the total order
    /// (distance, index) — a unique set, so push order is irrelevant.
    /// With `exclude_self` the heap holds `k+1` candidates and the
    /// querying row is dropped afterwards, the exact
    /// [`query_excluding`](Self::query_excluding) protocol.
    fn brute_batch_topk(
        &self,
        queries: &Matrix,
        k: usize,
        n_threads: usize,
        exclude_self: bool,
    ) -> Vec<Vec<Neighbor>> {
        let n = self.train.nrows();
        let k_eff = if exclude_self {
            (k + 1).min(n)
        } else {
            k.min(n)
        };
        let gemm = self.train_sq_norms.as_deref();
        let precision = self.config.precision;
        let lane = SimdLane::detect();
        if gemm.is_some() {
            // Logical work of one queries x train gemm; derived from
            // shapes so the counters match at every thread count (the
            // lane tag is host-dependent, the rest is not).
            self.stats.record_gemm(queries.nrows(), n, lane, precision);
        }
        let train = &self.train;
        let metric = self.metric;
        crate::parallel::par_chunk_map(queries.nrows(), n_threads, |range| {
            let mut heaps: Vec<TopK> = range.clone().map(|_| TopK::new(k_eff)).collect();
            let mut scratch = vec![0.0; KNN_Q_TILE * KNN_T_TILE];
            for t0 in (0..n).step_by(KNN_T_TILE) {
                let t1 = (t0 + KNN_T_TILE).min(n);
                // Pack the train tile once per thread; the packing cost is
                // O(n d) per sweep, noise next to the O(nq n d) contraction.
                let packed = gemm.is_some().then(|| match precision {
                    Precision::F64 => {
                        TrainTile::F64(PackedPanels::from_row_range(train, t0..t1, NR))
                    }
                    Precision::Mixed => {
                        TrainTile::F32(PackedPanelsF32::from_row_range(train, t0..t1, NR))
                    }
                });
                for q0 in (range.start..range.end).step_by(KNN_Q_TILE) {
                    let q1 = (q0 + KNN_Q_TILE).min(range.end);
                    if let (Some(norms), Some(packed)) = (gemm, &packed) {
                        let tile = &mut scratch[..(q1 - q0) * (t1 - t0)];
                        match packed {
                            TrainTile::F64(p) => {
                                crate::gemm::gram_rows_into(queries, q0..q1, p, lane, tile)
                            }
                            TrainTile::F32(p) => {
                                crate::gemm::gram_rows_into_mixed(queries, q0..q1, p, lane, tile)
                            }
                        }
                        for qi in q0..q1 {
                            let nq = match precision {
                                Precision::F64 => crate::matrix::norm_sq(queries.row(qi)),
                                Precision::Mixed => crate::gemm::norm_sq_mixed(queries.row(qi)),
                            };
                            let row = &tile[(qi - q0) * (t1 - t0)..(qi - q0 + 1) * (t1 - t0)];
                            let heap = &mut heaps[qi - range.start];
                            for (j, &g) in row.iter().enumerate() {
                                heap.push(Neighbor {
                                    index: t0 + j,
                                    distance: dist_from_gram(nq, norms[t0 + j], g),
                                });
                            }
                        }
                    } else {
                        for qi in q0..q1 {
                            let rq = queries.row(qi);
                            let heap = &mut heaps[qi - range.start];
                            for j in t0..t1 {
                                heap.push(Neighbor {
                                    index: j,
                                    distance: metric.distance(rq, train.row(j)),
                                });
                            }
                        }
                    }
                }
            }
            heaps
                .into_iter()
                .enumerate()
                .map(|(offset, heap)| {
                    let mut nn = heap.into_sorted();
                    if exclude_self {
                        nn.retain(|nb| nb.index != range.start + offset);
                        nn.truncate(k);
                    }
                    nn
                })
                .collect()
        })
    }
}

/// A packed train tile of the batched kNN fast path, in whichever
/// storage precision the index is configured for.
enum TrainTile {
    F64(PackedPanels),
    F32(PackedPanelsF32),
}

/// Memory cap for the symmetric-matrix fast path of
/// [`KnnIndex::self_query_batch`]: a 4096-row set costs a 128 MiB
/// distance matrix; beyond that the blocked/gemm backends stream tiles
/// through bounded heaps and the naive backend falls back to row-at-a-time
/// queries.
const SELF_BATCH_MATRIX_MAX_ROWS: usize = 4096;

/// Bounded max-heap over the total order (distance, index): keeps the
/// `k` smallest neighbours seen. Because the order is total, the k-smallest
/// set is unique and [`TopK::into_sorted`] matches [`select_smallest`]
/// exactly, independent of push order.
struct TopK {
    heap: Vec<Neighbor>,
    k: usize,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            heap: Vec::with_capacity(k),
            k,
        }
    }

    #[inline]
    fn push(&mut self, n: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(n);
            self.sift_up(self.heap.len() - 1);
        } else if self.k > 0 && cmp_neighbor(&n, &self.heap[0]) == std::cmp::Ordering::Less {
            self.heap[0] = n;
            self.sift_down();
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp_neighbor(&self.heap[i], &self.heap[parent]) == std::cmp::Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self) {
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let mut largest = left;
            let right = left + 1;
            if right < len
                && cmp_neighbor(&self.heap[right], &self.heap[left]) == std::cmp::Ordering::Greater
            {
                largest = right;
            }
            if cmp_neighbor(&self.heap[largest], &self.heap[i]) == std::cmp::Ordering::Greater {
                self.heap.swap(i, largest);
                i = largest;
            } else {
                break;
            }
        }
    }

    fn into_sorted(mut self) -> Vec<Neighbor> {
        self.heap.sort_by(cmp_neighbor);
        self.heap
    }
}

/// Keeps the `k` smallest neighbours sorted ascending (distance, then
/// index): partial selection then sort of the head, `O(n + k log k)`.
fn select_smallest(mut all: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    let k = k.min(all.len());
    if all.is_empty() {
        return all;
    }
    let pivot = k.saturating_sub(1);
    all.select_nth_unstable_by(pivot, cmp_neighbor);
    all.truncate(k);
    all.sort_by(cmp_neighbor);
    all
}

fn cmp_neighbor(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .expect("distances are finite")
        .then(a.index.cmp(&b.index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Matrix {
        Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap()
    }

    #[test]
    fn metric_values() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(DistanceMetric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(DistanceMetric::Manhattan.distance(&a, &b), 7.0);
        let mink = DistanceMetric::Minkowski(2.0).distance(&a, &b);
        assert!((mink - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_p1_equals_manhattan() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 4.0, 2.5];
        let m1 = DistanceMetric::Minkowski(1.0).distance(&a, &b);
        let man = DistanceMetric::Manhattan.distance(&a, &b);
        assert!((m1 - man).abs() < 1e-12);
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            DistanceMetric::parse("euclidean").unwrap(),
            DistanceMetric::Euclidean
        );
        assert_eq!(
            DistanceMetric::parse("manhattan").unwrap(),
            DistanceMetric::Manhattan
        );
        assert!(matches!(
            DistanceMetric::parse("minkowski").unwrap(),
            DistanceMetric::Minkowski(_)
        ));
        assert!(DistanceMetric::parse("cosine").is_err());
    }

    #[test]
    fn pairwise_shapes_and_values() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let d = pairwise_distances(&a, &b, DistanceMetric::Euclidean).unwrap();
        assert_eq!(d.shape(), (2, 1));
        assert!((d.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((d.get(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn knn_query_sorted() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let nn = idx.query(&[1.4], 3);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        assert!(nn[0].distance <= nn[1].distance && nn[1].distance <= nn[2].distance);
    }

    #[test]
    fn knn_k_clamped() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(idx.query(&[0.0], 99).len(), 4);
    }

    #[test]
    fn knn_excluding_self() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let nn = idx.query_excluding(&[1.0], 2, 1);
        assert!(nn.iter().all(|n| n.index != 1));
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].index, 0); // tie with 2, broken by index
    }

    #[test]
    fn knn_build_empty_errors() {
        let empty = Matrix::zeros(0, 3);
        assert!(KnnIndex::build(&empty, DistanceMetric::Euclidean).is_err());
    }

    #[test]
    fn batch_matches_single() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let q = Matrix::from_rows(&[vec![0.1], vec![9.0]]).unwrap();
        let batch = idx.query_batch(&q, 2).unwrap();
        assert_eq!(batch[0], idx.query(&[0.1], 2));
        assert_eq!(batch[1], idx.query(&[9.0], 2));
    }

    /// Deterministic pseudo-random matrix for bit-identity tests.
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    const ALL_METRICS: [DistanceMetric; 3] = [
        DistanceMetric::Euclidean,
        DistanceMetric::Manhattan,
        DistanceMetric::Minkowski(3.0),
    ];

    #[test]
    fn pairwise_parallel_bit_identical() {
        let a = random_matrix(37, 5, 7);
        let b = random_matrix(23, 5, 11);
        for metric in ALL_METRICS {
            let base = pairwise_distances(&a, &b, metric).unwrap();
            for threads in [2usize, 4, 8] {
                let par = pairwise_distances_parallel(&a, &b, metric, threads).unwrap();
                assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn blocked_backend_bit_identical_to_naive() {
        // Shapes straddling the j-tile width so edge tiles are exercised.
        let a = random_matrix(67, 9, 21);
        let b = random_matrix(BLOCKED_J_TILE + 37, 9, 22);
        for metric in ALL_METRICS {
            let naive = pairwise_distances_backend(&a, &b, metric, DistanceBackend::Naive, 1, None)
                .unwrap();
            for threads in [1usize, 3] {
                let blocked = pairwise_distances_backend(
                    &a,
                    &b,
                    metric,
                    DistanceBackend::Blocked,
                    threads,
                    None,
                )
                .unwrap();
                assert_eq!(
                    blocked.as_slice(),
                    naive.as_slice(),
                    "{metric:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn gemm_backend_close_to_naive_and_deterministic() {
        let a = random_matrix(41, 7, 31);
        let b = random_matrix(29, 7, 32);
        let naive = pairwise_distances_backend(
            &a,
            &b,
            DistanceMetric::Euclidean,
            DistanceBackend::Naive,
            1,
            None,
        )
        .unwrap();
        let base = pairwise_distances_backend(
            &a,
            &b,
            DistanceMetric::Euclidean,
            DistanceBackend::Gemm,
            1,
            None,
        )
        .unwrap();
        for (g, n) in base.as_slice().iter().zip(naive.as_slice()) {
            assert!((g - n).abs() <= 1e-9 * (1.0 + n.abs()), "{g} vs {n}");
        }
        for threads in [2usize, 5] {
            let par = pairwise_distances_backend(
                &a,
                &b,
                DistanceMetric::Euclidean,
                DistanceBackend::Gemm,
                threads,
                None,
            )
            .unwrap();
            assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn gemm_backend_non_euclidean_falls_back() {
        let a = random_matrix(12, 4, 3);
        let stats = KernelStats::new();
        let gemm = pairwise_distances_backend(
            &a,
            &a,
            DistanceMetric::Manhattan,
            DistanceBackend::Gemm,
            1,
            Some(&stats),
        )
        .unwrap();
        let naive = pairwise_distances_backend(
            &a,
            &a,
            DistanceMetric::Manhattan,
            DistanceBackend::Naive,
            1,
            None,
        )
        .unwrap();
        assert_eq!(gemm.as_slice(), naive.as_slice());
        assert_eq!(stats.snapshot().fallback_hits, 1);
        assert_eq!(stats.snapshot().gemm_tiles, 0);
    }

    #[test]
    fn symmetric_bit_identical_to_full() {
        let a = random_matrix(31, 4, 3);
        for metric in ALL_METRICS {
            let full = pairwise_distances(&a, &a, metric).unwrap();
            let sym = pairwise_distances_symmetric(&a, metric);
            assert_eq!(sym.as_slice(), full.as_slice(), "{metric:?}");
            for threads in [2usize, 4] {
                let par = pairwise_distances_symmetric_parallel(&a, metric, threads);
                assert_eq!(
                    par.as_slice(),
                    full.as_slice(),
                    "{metric:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn symmetric_gemm_is_symmetric_and_zero_diagonal_free() {
        let a = random_matrix(19, 6, 13);
        let d = pairwise_distances_symmetric_backend(
            &a,
            DistanceMetric::Euclidean,
            DistanceBackend::Gemm,
            1,
            None,
        );
        for i in 0..a.nrows() {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..a.nrows() {
                assert_eq!(d.get(i, j).to_bits(), d.get(j, i).to_bits());
                assert!(d.get(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn query_batch_parallel_bit_identical() {
        let train = random_matrix(60, 6, 1);
        let queries = random_matrix(33, 6, 2);
        for idx in [
            KnnIndex::build(&train, DistanceMetric::Euclidean).unwrap(),
            KnnIndex::build_brute_force(&train, DistanceMetric::Euclidean).unwrap(),
        ] {
            let base = idx.query_batch(&queries, 5).unwrap();
            for threads in [2usize, 4, 8] {
                let par = idx.query_batch_parallel(&queries, 5, threads).unwrap();
                assert_eq!(par, base, "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_fast_path_matches_per_row_queries() {
        // Cross the KNN_T_TILE boundary so multiple tiles feed the heaps.
        let train = random_matrix(KNN_T_TILE + 77, 6, 40);
        let queries = random_matrix(KNN_Q_TILE + 11, 6, 41);
        for backend in [DistanceBackend::Blocked, DistanceBackend::Gemm] {
            let cfg = KernelConfig {
                kdtree_crossover_dim: 0, // force brute
                ..KernelConfig::default().with_backend(backend)
            };
            let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, cfg).unwrap();
            assert!(!idx.uses_kdtree());
            let batch = idx.query_batch(&queries, 7).unwrap();
            for (i, nn) in batch.iter().enumerate() {
                assert_eq!(nn, &idx.query(queries.row(i), 7), "{backend:?} row {i}");
            }
            for threads in [2usize, 4] {
                let par = idx.query_batch_parallel(&queries, 7, threads).unwrap();
                assert_eq!(par, batch, "{backend:?} threads={threads}");
            }
        }
    }

    #[test]
    fn gemm_index_records_counters() {
        let train = random_matrix(50, 6, 50);
        let cfg = KernelConfig {
            kdtree_crossover_dim: 0,
            ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
        };
        let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, cfg).unwrap();
        idx.self_query_batch(3, 1);
        let c = idx.kernel_counters();
        assert!(c.gemm_tiles > 0);
        assert!(c.packed_panels > 0);
        assert_eq!(c.fallback_hits, 0);
    }

    #[test]
    fn gemm_index_non_euclidean_counts_fallback() {
        let train = random_matrix(30, 6, 51);
        let cfg = KernelConfig {
            kdtree_crossover_dim: 0,
            ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
        };
        let idx = KnnIndex::build_with(&train, DistanceMetric::Manhattan, cfg).unwrap();
        let c = idx.kernel_counters();
        assert_eq!(c.fallback_hits, 1);
        // The sweeps still agree exactly with the naive reference.
        let naive = KnnIndex::build_brute_force(&train, DistanceMetric::Manhattan).unwrap();
        assert_eq!(idx.self_query_batch(4, 1), naive.self_query_batch(4, 1));
    }

    #[test]
    fn self_query_batch_matches_query_excluding() {
        // Brute backend (symmetric fast path) and KD-tree backend.
        let wide = random_matrix(50, 20, 9); // > crossover dim -> brute
        let narrow = random_matrix(150, 3, 10); // KD-tree eligible
        for train in [&wide, &narrow] {
            let idx = KnnIndex::build(train, DistanceMetric::Euclidean).unwrap();
            let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
                .map(|i| idx.query_excluding(train.row(i), 4, i))
                .collect();
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    idx.self_query_batch(4, threads),
                    expected,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn self_query_batch_gemm_matches_query_excluding() {
        let train = random_matrix(90, 8, 12);
        let cfg = KernelConfig {
            kdtree_crossover_dim: 0,
            ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
        };
        let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, cfg).unwrap();
        let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
            .map(|i| idx.query_excluding(train.row(i), 5, i))
            .collect();
        for threads in [1usize, 3] {
            assert_eq!(
                idx.self_query_batch(5, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn self_query_batch_respects_metric() {
        let train = random_matrix(40, 18, 5);
        let idx = KnnIndex::build_brute_force(&train, DistanceMetric::Manhattan).unwrap();
        let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
            .map(|i| idx.query_excluding(train.row(i), 3, i))
            .collect();
        assert_eq!(idx.self_query_batch(3, 2), expected);
    }

    #[test]
    fn crossover_config_controls_tree_choice() {
        let train = random_matrix(200, 10, 60);
        let on = KnnIndex::build_with(
            &train,
            DistanceMetric::Euclidean,
            KernelConfig {
                kdtree_crossover_dim: 10,
                ..KernelConfig::default()
            },
        )
        .unwrap();
        assert!(on.uses_kdtree());
        let off = KnnIndex::build_with(
            &train,
            DistanceMetric::Euclidean,
            KernelConfig {
                kdtree_crossover_dim: 9,
                ..KernelConfig::default()
            },
        )
        .unwrap();
        assert!(!off.uses_kdtree());
        // Both backends return the same neighbours.
        assert_eq!(on.self_query_batch(4, 1), off.self_query_batch(4, 1));
    }

    /// Mixed-precision gemm config with the KD-tree disabled so every
    /// sweep runs the brute norm-trick path.
    fn mixed_cfg() -> KernelConfig {
        KernelConfig {
            kdtree_crossover_dim: 0,
            precision: Precision::Mixed,
            ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
        }
    }

    #[test]
    fn mixed_pairwise_within_bound_and_thread_deterministic() {
        let a = random_matrix(43, 9, 81);
        let b = random_matrix(27, 9, 82);
        let exact = pairwise_distances_backend(
            &a,
            &b,
            DistanceMetric::Euclidean,
            DistanceBackend::Naive,
            1,
            None,
        )
        .unwrap();
        let base = pairwise_distances_with(&a, &b, DistanceMetric::Euclidean, mixed_cfg(), 1, None)
            .unwrap();
        for i in 0..a.nrows() {
            let na = crate::matrix::norm_sq(a.row(i)).sqrt();
            for j in 0..b.nrows() {
                let nb = crate::matrix::norm_sq(b.row(j)).sqrt();
                let bound = crate::gemm::mixed_distance_error_bound(na, nb);
                let (got, want) = (base.get(i, j), exact.get(i, j));
                assert!(
                    (got - want).abs() <= bound,
                    "mixed {got} vs exact {want} beyond bound {bound} at ({i},{j})"
                );
            }
        }
        for threads in [2usize, 5] {
            let par = pairwise_distances_with(
                &a,
                &b,
                DistanceMetric::Euclidean,
                mixed_cfg(),
                threads,
                None,
            )
            .unwrap();
            assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn mixed_non_euclidean_ignores_precision() {
        let a = random_matrix(14, 5, 83);
        let mixed =
            pairwise_distances_with(&a, &a, DistanceMetric::Manhattan, mixed_cfg(), 1, None)
                .unwrap();
        let naive = pairwise_distances_backend(
            &a,
            &a,
            DistanceMetric::Manhattan,
            DistanceBackend::Naive,
            1,
            None,
        )
        .unwrap();
        assert_eq!(mixed.as_slice(), naive.as_slice());
    }

    #[test]
    fn mixed_symmetric_has_exact_zero_diagonal() {
        let a = random_matrix(21, 6, 84);
        let d =
            pairwise_distances_symmetric_with(&a, DistanceMetric::Euclidean, mixed_cfg(), 1, None);
        for i in 0..a.nrows() {
            assert_eq!(d.get(i, i), 0.0, "diagonal at {i}");
            for j in 0..a.nrows() {
                assert_eq!(d.get(i, j).to_bits(), d.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn mixed_batch_fast_path_matches_per_row_queries() {
        // The batched mixed tiles and the single-query mixed dot must
        // agree bitwise — the same consistency contract the f64 gemm
        // path has, across the KNN tile boundaries.
        let train = random_matrix(KNN_T_TILE + 41, 6, 85);
        let queries = random_matrix(KNN_Q_TILE + 9, 6, 86);
        let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, mixed_cfg()).unwrap();
        assert!(!idx.uses_kdtree());
        let batch = idx.query_batch(&queries, 7).unwrap();
        for (i, nn) in batch.iter().enumerate() {
            assert_eq!(nn, &idx.query(queries.row(i), 7), "row {i}");
        }
        for threads in [2usize, 4] {
            let par = idx.query_batch_parallel(&queries, 7, threads).unwrap();
            assert_eq!(par, batch, "threads={threads}");
        }
    }

    #[test]
    fn mixed_self_query_batch_matches_query_excluding() {
        let train = random_matrix(90, 8, 87);
        let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, mixed_cfg()).unwrap();
        let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
            .map(|i| idx.query_excluding(train.row(i), 5, i))
            .collect();
        for threads in [1usize, 3] {
            assert_eq!(
                idx.self_query_batch(5, threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mixed_neighbor_sets_mostly_match_f64() {
        // The quality contract: f32 storage may flip near-ties, but the
        // overwhelming majority of neighbour sets must survive.
        let train = random_matrix(400, 12, 88);
        let f64_idx = KnnIndex::build_with(
            &train,
            DistanceMetric::Euclidean,
            KernelConfig {
                kdtree_crossover_dim: 0,
                ..KernelConfig::default().with_backend(DistanceBackend::Gemm)
            },
        )
        .unwrap();
        let mixed_idx =
            KnnIndex::build_with(&train, DistanceMetric::Euclidean, mixed_cfg()).unwrap();
        let k = 10;
        let exact = f64_idx.self_query_batch(k, 1);
        let approx = mixed_idx.self_query_batch(k, 1);
        let mut agree = 0usize;
        let mut total = 0usize;
        for (e, a) in exact.iter().zip(&approx) {
            let es: std::collections::HashSet<usize> = e.iter().map(|n| n.index).collect();
            agree += a.iter().filter(|n| es.contains(&n.index)).count();
            total += e.len();
        }
        let frac = agree as f64 / total as f64;
        assert!(frac >= 0.99, "neighbour agreement too low: {frac}");
    }

    #[test]
    fn mixed_counters_tag_invocations() {
        let train = random_matrix(60, 6, 89);
        let idx = KnnIndex::build_with(&train, DistanceMetric::Euclidean, mixed_cfg()).unwrap();
        idx.self_query_batch(3, 1);
        let c = idx.kernel_counters();
        assert!(c.gemm_tiles > 0);
        assert_eq!(c.mixed_invocations, 1);
        assert_eq!(c.simd_invocations + c.scalar_invocations, 1);
    }

    #[test]
    fn topk_matches_select_smallest() {
        let train = random_matrix(300, 3, 70);
        let all: Vec<Neighbor> = (0..train.nrows())
            .map(|i| Neighbor {
                index: i,
                distance: train.get(i, 0).abs(),
            })
            .collect();
        for k in [0usize, 1, 7, 299, 300, 400] {
            let mut heap = TopK::new(k.min(all.len()));
            for &n in &all {
                heap.push(n);
            }
            assert_eq!(heap.into_sorted(), select_smallest(all.clone(), k), "k={k}");
        }
    }
}
