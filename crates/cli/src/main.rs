//! `suod-cli` entry point — all logic lives (tested) in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match suod_cli::parse_args(&args).and_then(suod_cli::run) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
