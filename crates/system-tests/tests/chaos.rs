//! Chaos tests for the fault-tolerant fit path: injected panics, NaN
//! scores, and stragglers against a realistic 20-model heterogeneous
//! pool. All injections are seeded and deterministic (see
//! `suod_detectors::chaos`), so every assertion here is exact — a flaky
//! test of the fault-tolerance layer would defeat its own point.

use suod::prelude::*;
use suod::ModelHealth;

/// 100 x 6 synthetic grid with two planted outliers (rows 98, 99).
fn data() -> Matrix {
    let mut rows: Vec<Vec<f64>> = (0..98)
        .map(|i| {
            vec![
                (i % 10) as f64 * 0.2,
                (i / 10) as f64 * 0.2,
                ((i * 3) % 7) as f64 * 0.1,
                ((i * 5) % 11) as f64 * 0.1,
                ((i * 7) % 13) as f64 * 0.1,
                ((i * 11) % 5) as f64 * 0.1,
            ]
        })
        .collect();
    rows.push(vec![9.0; 6]);
    rows.push(vec![-9.0, 9.0, -9.0, 9.0, -9.0, 9.0]);
    Matrix::from_rows(&rows).unwrap()
}

/// 18 healthy models across six families — the pool the chaos members
/// ride on. Chaos members are appended at the END so the shared prefix
/// keeps identical pool indices (and therefore identical derived seeds)
/// with and without them.
fn base_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 15,
            method: KnnMethod::Mean,
        },
        ModelSpec::Knn {
            n_neighbors: 8,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 5,
            metric: Metric::Euclidean,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Lof {
            n_neighbors: 20,
            metric: Metric::Euclidean,
        },
        ModelSpec::Lof {
            n_neighbors: 8,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 5 },
        ModelSpec::Abod { n_neighbors: 8 },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.5,
        },
        ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        },
        ModelSpec::IForest {
            n_estimators: 40,
            max_features: 1.0,
        },
        ModelSpec::Loda {
            n_members: 20,
            n_bins: 10,
        },
        ModelSpec::Loda {
            n_members: 40,
            n_bins: 15,
        },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
        ModelSpec::Pca {
            variance_retained: 0.5,
        },
    ]
}

fn chaos(mode: ChaosMode) -> ModelSpec {
    ModelSpec::Chaos {
        mode,
        n_neighbors: 5,
    }
}

/// Flattens a health report into a comparable, wall-clock-free shape:
/// `(index, name, healthy?, cause text, attempts)` per model. The
/// straggler flag is timing-dependent and deliberately excluded.
fn health_key(health: &ModelHealth) -> Vec<(usize, &'static str, bool, String, usize)> {
    health
        .reports()
        .iter()
        .map(|r| {
            (
                r.index,
                r.name,
                r.status == ModelStatus::Healthy,
                r.cause.as_ref().map(|c| c.to_string()).unwrap_or_default(),
                r.attempts,
            )
        })
        .collect()
}

#[test]
fn twenty_model_pool_survives_injected_failures_bit_identically() {
    // 18 healthy models + one panicking + one NaN-scoring member: the fit
    // must complete, quarantine exactly the two injected models with
    // distinct causes, and leave every survivor's scores bit-identical to
    // a pool that never contained the chaos members.
    let x = data();
    let build = |pool: Vec<ModelSpec>| {
        Suod::builder()
            .base_estimators(pool)
            .with_projection(false)
            .with_approximation(false)
            .min_healthy_fraction(0.5)
            .n_workers(4)
            .seed(7)
            .build()
            .unwrap()
    };
    let mut clean = build(base_pool());
    clean.fit(&x).unwrap();
    assert!(!clean.diagnostics().unwrap().health().is_degraded());

    let mut pool = base_pool();
    pool.push(chaos(ChaosMode::PanicOnFit)); // index 18
    pool.push(chaos(ChaosMode::NanScores)); // index 19
    let mut chaotic = build(pool);
    chaotic.fit(&x).unwrap();

    let health = chaotic.diagnostics().unwrap().health();
    assert_eq!(health.len(), 20);
    assert_eq!(health.healthy(), 18);
    assert_eq!(health.quarantined_indices(), vec![18, 19]);
    assert!(matches!(
        health.report(18).unwrap().cause,
        Some(suod_detectors::Error::Panicked(_))
    ));
    assert!(matches!(
        health.report(19).unwrap().cause,
        Some(suod_detectors::Error::DegenerateData(_))
    ));

    // Survivors only: 18 columns, bit-identical to the clean pool.
    let a = clean.decision_function(&x).unwrap();
    let b = chaotic.decision_function(&x).unwrap();
    assert_eq!(a.shape(), (100, 18));
    assert_eq!(b.shape(), (100, 18));
    assert_eq!(a.as_slice(), b.as_slice());
    assert_eq!(
        clean.combined_scores(&x).unwrap(),
        chaotic.combined_scores(&x).unwrap()
    );
    assert_eq!(clean.predict(&x).unwrap(), chaotic.predict(&x).unwrap());
}

#[test]
fn degradation_floor_returns_typed_error_with_health_attached() {
    // 3 of 4 models panic; min_healthy_fraction 0.5 needs 2 survivors.
    let pool = vec![
        chaos(ChaosMode::PanicOnFit),
        chaos(ChaosMode::PanicOnFit),
        chaos(ChaosMode::PanicOnFit),
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
    ];
    let mut clf = Suod::builder()
        .base_estimators(pool)
        .min_healthy_fraction(0.5)
        .build()
        .unwrap();
    match clf.fit(&data()).unwrap_err() {
        suod::Error::PoolDegraded {
            healthy,
            total,
            required,
            cause,
        } => {
            assert_eq!((healthy, total, required), (1, 4, 2));
            assert!(matches!(cause, suod_detectors::Error::Panicked(_)));
        }
        other => panic!("expected PoolDegraded, got {other}"),
    }
    assert!(!clf.is_fitted());
    // The health report survives the failed fit for postmortems.
    let health = clf.diagnostics().unwrap().health();
    assert_eq!(health.quarantined_indices(), vec![0, 1, 2]);
    assert_eq!(health.healthy_indices(), vec![3]);
}

#[test]
fn flaky_model_recovers_on_salted_retry() {
    // Master seed 2 gives pool index 0 an even derived seed, so
    // FlakyPanic panics on the first attempt; the retry XORs in an odd
    // salt, flipping the parity, and succeeds — deterministically.
    let pool = vec![
        chaos(ChaosMode::FlakyPanic), // index 0: even seed under master 2
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
    ];
    let mut clf = Suod::builder()
        .base_estimators(pool)
        .seed(2)
        .build()
        .unwrap();
    clf.fit(&data()).unwrap();
    let diag = clf.diagnostics().unwrap();
    let health = diag.health();
    assert_eq!(health.healthy(), 2);
    let flaky = health.report(0).unwrap();
    assert_eq!(flaky.status, ModelStatus::Healthy);
    assert_eq!(flaky.attempts, 2);
    assert!(flaky.cause.is_none());
    let report = diag.execution();
    assert_eq!(report.retries, 1);
    assert_eq!(report.failures, 1);
}

#[test]
fn retry_then_quarantine_deterministic_across_thread_counts() {
    // Mixed fault pattern: FlakyPanic members recover (or not) purely by
    // derived-seed parity, PanicOnFit never recovers, NanScores never
    // recovers. The entire health report — statuses, causes, attempt
    // counts — and the survivor scores must not depend on the worker
    // count that executed the pool.
    let x = data();
    let run = |workers: usize| {
        let mut pool = base_pool();
        pool.push(chaos(ChaosMode::FlakyPanic));
        pool.push(chaos(ChaosMode::FlakyPanic));
        pool.push(chaos(ChaosMode::PanicOnFit));
        pool.push(chaos(ChaosMode::NanScores));
        let mut clf = Suod::builder()
            .base_estimators(pool)
            .with_projection(false)
            .with_approximation(false)
            .min_healthy_fraction(0.5)
            .n_workers(workers)
            .seed(2)
            .build()
            .unwrap();
        clf.fit(&x).unwrap();
        let diag = clf.diagnostics().unwrap();
        let health_fingerprint = health_key(diag.health());
        let retries = diag.execution().retries;
        (
            health_fingerprint,
            retries,
            clf.combined_scores(&x).unwrap(),
        )
    };
    let (health_1, retries_1, scores_1) = run(1);
    let (health_4, retries_4, scores_4) = run(4);
    assert_eq!(health_1, health_4);
    assert_eq!(retries_1, retries_4);
    // PanicOnFit and NanScores are always quarantined; the flaky members'
    // fates are seed-determined but identical across runs.
    let quarantined: Vec<usize> = health_1
        .iter()
        .filter(|(_, _, healthy, _, _)| !healthy)
        .map(|&(i, _, _, _, _)| i)
        .collect();
    assert!(quarantined.contains(&20));
    assert!(quarantined.contains(&21));
    assert_eq!(scores_1.len(), scores_4.len());
    for (a, b) in scores_1.iter().zip(&scores_4) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn slow_model_flagged_as_straggler_but_not_quarantined() {
    // One member sleeps 400ms; its pool-mates finish in milliseconds. Its
    // measured time dwarfs its forecast-implied share, so it must be
    // flagged — and must stay in the ensemble, because slow is not wrong.
    let mut pool: Vec<ModelSpec> = (0..9)
        .map(|i| ModelSpec::Knn {
            n_neighbors: 5 + i,
            method: KnnMethod::Largest,
        })
        .collect();
    pool.push(chaos(ChaosMode::SlowFit(400))); // index 9
    let mut clf = Suod::builder()
        .base_estimators(pool)
        .with_projection(false)
        .with_approximation(false)
        .seed(1)
        .build()
        .unwrap();
    clf.fit(&data()).unwrap();
    let diag = clf.diagnostics().unwrap();
    let health = diag.health();
    assert_eq!(health.healthy(), 10);
    assert!(health.straggler_indices().contains(&9));
    assert!(diag.execution().stragglers.contains(&9));
    // Straggling alone never quarantines.
    assert_eq!(health.report(9).unwrap().status, ModelStatus::Healthy);
}
