//! Integration tests for the extension surfaces: the learned cost
//! predictor plugged into `Suod`, timed prediction, LSCP/XGBOD on real
//! pipelines, and failure propagation.

use std::sync::Arc;
use std::time::Instant;
use suod::lscp::{lscp_scores, LscpConfig, LscpVariant};
use suod::prelude::*;
use suod::xgbod::Xgbod;
use suod_datasets::{registry, train_test_split};
use suod_metrics::roc_auc;
use suod_scheduler::cost::CostSample;
use suod_scheduler::{DatasetMeta, ForestCostPredictor};

fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 15,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 25,
            max_features: 0.8,
        },
        ModelSpec::Loda {
            n_members: 30,
            n_bins: 10,
        },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
    ]
}

/// Builds a trained ForestCostPredictor from real measured timings of the
/// pool's specs on a couple of dataset shapes.
fn trained_cost_predictor() -> ForestCostPredictor {
    let mut samples = Vec::new();
    for (i, scale) in [0.1f64, 0.25].iter().enumerate() {
        let ds = registry::load_scaled("cardio", 50 + i as u64, *scale).unwrap();
        let meta = DatasetMeta::extract(&ds.x);
        for (j, spec) in pool().iter().enumerate() {
            let mut det = spec.build(j as u64).unwrap();
            let start = Instant::now();
            det.fit(&ds.x).unwrap();
            samples.push(CostSample {
                task: spec.task_descriptor(),
                meta,
                seconds: start.elapsed().as_secs_f64().max(1e-7),
            });
        }
    }
    let mut predictor = ForestCostPredictor::new(20, 0);
    predictor.fit(&samples).unwrap();
    predictor
}

#[test]
fn learned_cost_model_drives_suod_scheduling() {
    let ds = registry::load_scaled("cardio", 3, 0.3).unwrap();
    let predictor = trained_cost_predictor();
    let mut clf = Suod::builder()
        .base_estimators(pool())
        .with_bps(true)
        .n_workers(3)
        .cost_model(Arc::new(predictor))
        .seed(4)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let scores = clf.combined_scores(&ds.x).unwrap();
    let auc = roc_auc(&ds.y, &scores).unwrap();
    assert!(auc > 0.6, "AUC {auc} with learned cost model");

    // And the simulation API works with the learned model.
    let (generic, bps) = clf.simulate_fit_schedules(3).unwrap();
    assert!(bps.makespan > 0.0 && generic.makespan > 0.0);
}

#[test]
fn timed_prediction_matches_untimed() {
    let ds = registry::load_scaled("pima", 8, 0.5).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(pool())
        .seed(9)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let plain = clf.decision_function(&ds.x).unwrap();
    let observer = suod::observe::noop();
    let (timed, report) = clf.decision_function_observed(&ds.x, &observer).unwrap();
    assert_eq!(plain, timed);
    assert_eq!(report.model_times.len(), pool().len());
    assert_eq!(report.n_rows, ds.x.nrows());
}

#[test]
fn lscp_on_full_pipeline() {
    let ds = registry::load_scaled("thyroid", 6, 0.3).unwrap();
    let split = train_test_split(&ds, 0.4, 6).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(pool())
        .with_projection(false)
        .seed(6)
        .build()
        .unwrap();
    clf.fit(&split.x_train).unwrap();

    let lscp = lscp_scores(
        &split.x_train,
        &clf.training_scores().unwrap(),
        &split.x_test,
        &clf.decision_function(&split.x_test).unwrap(),
        &LscpConfig {
            region_size: 25,
            variant: LscpVariant::Moa { s: 2 },
        },
    )
    .unwrap();
    let auc = roc_auc(&split.y_test, &lscp).unwrap();
    assert!(auc > 0.6, "LSCP AUC {auc}");
}

#[test]
fn xgbod_beats_unsupervised_on_labeled_data() {
    let ds = registry::load_scaled("cardio", 12, 0.35).unwrap();
    let split = train_test_split(&ds, 0.4, 12).unwrap();

    let mut unsup = Suod::builder()
        .base_estimators(pool())
        .seed(1)
        .build()
        .unwrap();
    unsup.fit(&split.x_train).unwrap();
    let auc_unsup = roc_auc(
        &split.y_test,
        &unsup.combined_scores(&split.x_test).unwrap(),
    )
    .unwrap();

    let mut xgbod = Xgbod::new(Suod::builder().base_estimators(pool()).seed(1), 40).unwrap();
    xgbod.fit(&split.x_train, &split.y_train).unwrap();
    let auc_semi = roc_auc(
        &split.y_test,
        &xgbod.decision_function(&split.x_test).unwrap(),
    )
    .unwrap();

    assert!(
        auc_semi > auc_unsup - 0.05,
        "XGBOD {auc_semi} should not trail unsupervised {auc_unsup}"
    );
}

#[test]
fn detector_failures_propagate_from_fit() {
    // ABOD needs >= 3 samples; a 2-row fit quarantines the lone model and
    // (with the default min_healthy_fraction of 1.0) surfaces a typed
    // PoolDegraded error carrying the detector cause — not a panic.
    let tiny = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(vec![ModelSpec::Abod { n_neighbors: 5 }])
        .build()
        .unwrap();
    match clf.fit(&tiny).unwrap_err() {
        suod::Error::PoolDegraded {
            healthy,
            total,
            required,
            ..
        } => {
            assert_eq!((healthy, total, required), (0, 1, 1));
        }
        other => panic!("expected PoolDegraded, got {other}"),
    }
    let health = clf.diagnostics().unwrap().health();
    assert_eq!(health.quarantined(), 1);
    assert!(health.report(0).unwrap().cause.is_some());
}

#[test]
fn eleven_family_pool_end_to_end() {
    // One spec from every family, all three modules on.
    let ds = registry::load_scaled("waveform", 15, 0.2).unwrap();
    let all_families = vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 10 },
        ModelSpec::Hbos {
            n_bins: 15,
            tolerance: 0.2,
        },
        ModelSpec::IForest {
            n_estimators: 25,
            max_features: 0.7,
        },
        ModelSpec::Cblof { n_clusters: 4 },
        ModelSpec::Ocsvm {
            nu: 0.3,
            kernel: Kernel::Rbf { gamma: 0.0 },
        },
        ModelSpec::FeatureBagging { n_estimators: 5 },
        ModelSpec::Loop { n_neighbors: 10 },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
        ModelSpec::Loda {
            n_members: 40,
            n_bins: 10,
        },
    ];
    let mut clf = Suod::builder()
        .base_estimators(all_families)
        .with_projection(true)
        .with_approximation(true)
        .with_bps(true)
        .n_workers(2)
        .seed(3)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let scores = clf.decision_function(&ds.x).unwrap();
    assert_eq!(scores.ncols(), 12);
    assert!(scores.as_slice().iter().all(|v| v.is_finite()));
    let auc = roc_auc(&ds.y, &clf.combined_scores(&ds.x).unwrap()).unwrap();
    assert!(auc > 0.6, "12-model pool AUC {auc}");
}
