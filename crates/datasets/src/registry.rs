//! Named synthetic analogs of the paper's benchmark datasets.
//!
//! Table A.1 of the paper lists 22 ODDS/DAMI datasets with their sizes,
//! dimensionalities and outlier fractions. The originals cannot be
//! redistributed or downloaded offline, so [`load`] produces a seeded
//! synthetic analog matching each dataset's `n`, `d` and contamination
//! (see `DESIGN.md` §4 for the substitution rationale). Dataset names are
//! case-insensitive.

use crate::synthetic::{generate, Dataset, OutlierKind, SyntheticConfig};
use crate::{Error, Result};

/// Static description of one Table A.1 benchmark dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetInfo {
    /// Canonical (lowercase) dataset name.
    pub name: &'static str,
    /// Number of samples in the original benchmark.
    pub n_samples: usize,
    /// Number of features.
    pub n_features: usize,
    /// Number of labelled outliers.
    pub n_outliers: usize,
}

impl DatasetInfo {
    /// Outlier fraction of the original benchmark.
    pub fn contamination(&self) -> f64 {
        self.n_outliers as f64 / self.n_samples as f64
    }
}

/// Table A.1 of the paper, verbatim.
pub const TABLE_A1: &[DatasetInfo] = &[
    DatasetInfo {
        name: "annthyroid",
        n_samples: 7200,
        n_features: 6,
        n_outliers: 534,
    },
    DatasetInfo {
        name: "arrhythmia",
        n_samples: 452,
        n_features: 274,
        n_outliers: 66,
    },
    DatasetInfo {
        name: "breastw",
        n_samples: 683,
        n_features: 9,
        n_outliers: 239,
    },
    DatasetInfo {
        name: "cardio",
        n_samples: 1831,
        n_features: 21,
        n_outliers: 176,
    },
    DatasetInfo {
        name: "http",
        n_samples: 567_479,
        n_features: 3,
        n_outliers: 2211,
    },
    DatasetInfo {
        name: "letter",
        n_samples: 1600,
        n_features: 32,
        n_outliers: 100,
    },
    DatasetInfo {
        name: "mnist",
        n_samples: 7603,
        n_features: 100,
        n_outliers: 700,
    },
    DatasetInfo {
        name: "musk",
        n_samples: 3062,
        n_features: 166,
        n_outliers: 97,
    },
    DatasetInfo {
        name: "pageblock",
        n_samples: 5393,
        n_features: 10,
        n_outliers: 510,
    },
    DatasetInfo {
        name: "pendigits",
        n_samples: 6870,
        n_features: 16,
        n_outliers: 156,
    },
    DatasetInfo {
        name: "pima",
        n_samples: 768,
        n_features: 8,
        n_outliers: 268,
    },
    DatasetInfo {
        name: "satellite",
        n_samples: 6435,
        n_features: 36,
        n_outliers: 2036,
    },
    DatasetInfo {
        name: "satimage-2",
        n_samples: 5803,
        n_features: 36,
        n_outliers: 71,
    },
    DatasetInfo {
        name: "seismic",
        n_samples: 2584,
        n_features: 10,
        n_outliers: 170,
    },
    DatasetInfo {
        name: "shuttle",
        n_samples: 49_097,
        n_features: 9,
        n_outliers: 3511,
    },
    DatasetInfo {
        name: "spamspace",
        n_samples: 4207,
        n_features: 57,
        n_outliers: 1679,
    },
    DatasetInfo {
        name: "speech",
        n_samples: 3686,
        n_features: 400,
        n_outliers: 61,
    },
    DatasetInfo {
        name: "thyroid",
        n_samples: 3772,
        n_features: 6,
        n_outliers: 93,
    },
    DatasetInfo {
        name: "vertebral",
        n_samples: 240,
        n_features: 6,
        n_outliers: 30,
    },
    DatasetInfo {
        name: "vowels",
        n_samples: 1456,
        n_features: 12,
        n_outliers: 50,
    },
    DatasetInfo {
        name: "waveform",
        n_samples: 3443,
        n_features: 21,
        n_outliers: 100,
    },
    DatasetInfo {
        name: "wilt",
        n_samples: 4819,
        n_features: 5,
        n_outliers: 257,
    },
];

/// All registry dataset names.
pub fn names() -> Vec<&'static str> {
    TABLE_A1.iter().map(|d| d.name).collect()
}

/// Metadata for a named dataset.
///
/// # Errors
///
/// Returns [`Error::UnknownDataset`] for names not in Table A.1.
pub fn info(name: &str) -> Result<DatasetInfo> {
    let lower = name.to_ascii_lowercase();
    TABLE_A1
        .iter()
        .find(|d| d.name == lower)
        .copied()
        .ok_or_else(|| Error::UnknownDataset(name.to_string()))
}

/// Loads the full-size synthetic analog of a Table A.1 dataset.
///
/// # Errors
///
/// Returns [`Error::UnknownDataset`] for unknown names.
pub fn load(name: &str, seed: u64) -> Result<Dataset> {
    load_scaled(name, seed, 1.0)
}

/// Loads a synthetic analog subsampled to `scale * n` samples (outlier
/// fraction preserved). Useful for keeping experiment harnesses within a
/// CI-friendly time budget; `scale = 1.0` reproduces the paper's sizes.
///
/// # Errors
///
/// * [`Error::UnknownDataset`] for unknown names.
/// * [`Error::InvalidConfig`] when `scale` is not in `(0, 1]`.
pub fn load_scaled(name: &str, seed: u64, scale: f64) -> Result<Dataset> {
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(Error::InvalidConfig(format!(
            "scale must be in (0, 1], got {scale}"
        )));
    }
    let meta = info(name)?;
    let n = ((meta.n_samples as f64 * scale).round() as usize).max(16);
    // Salt the seed with the dataset identity so different datasets drawn
    // with the same user seed do not share geometry.
    let salt = meta
        .name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    // Structure knobs derived from the dataset shape: wider datasets get
    // noise dims (curse-of-dimensionality regime); bigger datasets get more
    // clusters.
    let n_noise = if meta.n_features >= 50 {
        meta.n_features / 4
    } else {
        0
    };
    let n_clusters = (2 + meta.n_samples / 2000).min(8);
    let mut ds = generate(&SyntheticConfig {
        n_samples: n,
        n_features: meta.n_features,
        contamination: meta.contamination().min(0.5),
        n_clusters,
        n_noise_features: n_noise,
        outlier_kind: OutlierKind::Mixed,
        seed: seed ^ salt,
    })?;
    ds.name = meta.name.to_string();
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_22_datasets() {
        assert_eq!(TABLE_A1.len(), 22);
        assert_eq!(names().len(), 22);
    }

    #[test]
    fn info_is_case_insensitive() {
        let a = info("Cardio").unwrap();
        let b = info("cardio").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.n_samples, 1831);
        assert_eq!(a.n_features, 21);
        assert_eq!(a.n_outliers, 176);
    }

    #[test]
    fn unknown_dataset_errors() {
        assert!(matches!(
            info("not-a-dataset").unwrap_err(),
            Error::UnknownDataset(_)
        ));
    }

    #[test]
    fn load_matches_metadata() {
        let ds = load("pima", 1).unwrap();
        assert_eq!(ds.n_samples(), 768);
        assert_eq!(ds.n_features(), 8);
        // Contamination within rounding of the paper's 34.9 %.
        assert!((ds.contamination() - 0.349).abs() < 0.01);
        assert_eq!(ds.name, "pima");
    }

    #[test]
    fn scaling_preserves_contamination() {
        let full = load("cardio", 5).unwrap();
        let half = load_scaled("cardio", 5, 0.5).unwrap();
        assert!((half.n_samples() as f64 - 0.5 * full.n_samples() as f64).abs() <= 1.0);
        assert!((half.contamination() - full.contamination()).abs() < 0.02);
    }

    #[test]
    fn invalid_scale_rejected() {
        assert!(load_scaled("cardio", 0, 0.0).is_err());
        assert!(load_scaled("cardio", 0, 1.5).is_err());
    }

    #[test]
    fn different_datasets_differ_under_same_seed() {
        let a = load_scaled("thyroid", 9, 0.1).unwrap();
        let b = load_scaled("annthyroid", 9, 0.1).unwrap();
        assert_ne!(a.x.row(0), b.x.row(0));
    }

    #[test]
    fn wide_datasets_get_noise_dims() {
        // speech (d=400) analog should include noise features; simply check
        // it loads with the right width at small scale.
        let ds = load_scaled("speech", 3, 0.05).unwrap();
        assert_eq!(ds.n_features(), 400);
    }

    #[test]
    fn contamination_table_consistency() {
        for d in TABLE_A1 {
            assert!(
                d.contamination() > 0.0 && d.contamination() < 0.5,
                "{}",
                d.name
            );
        }
    }
}
