//! Table 3 reproduction: training time, generic scheduling vs BPS.
//!
//! For each dataset and pool size `m`, per-model training costs are
//! **measured once** by fitting the pool sequentially; worker makespans
//! for `t ∈ {2, 4, 8}` are then computed exactly with the discrete-event
//! simulator for (a) the generic contiguous chunking over the
//! family-grouped model order and (b) BPS over analytically forecasted
//! costs. `Redu%` is the paper's reduction column. (See DESIGN.md §4 on
//! why multi-worker times are simulated on this single-core host.)
//!
//! Flags: `--quick`, `--paper-scale`.

use std::time::Instant;
use suod::prelude::*;
use suod_bench::{CsvSink, Scale};
use suod_datasets::registry;
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, CostModel, DatasetMeta,
};

const DATASETS: &[&str] = &["cardio", "letter", "pageblock", "pendigits"];
const WORKERS: &[usize] = &[2, 4, 8];

/// A family-grouped pool of `m` models (all of family A first, then B, ...)
/// — the adversarial ordering for generic chunking that the paper's §3.5
/// example describes ("the first 25 models (all kNNs) on worker 1 ...").
fn grouped_pool(m: usize) -> Vec<ModelSpec> {
    let knn_grid = [5usize, 10, 15, 20, 25, 50];
    let lof_grid = [5usize, 10, 15, 20, 25, 50];
    let hbos_grid = [5usize, 10, 20, 30, 40, 50];
    let ifor_grid = [10usize, 20, 30, 50, 75, 100];
    let per_family = m / 4;
    let mut pool = Vec::with_capacity(m);
    for i in 0..per_family {
        pool.push(ModelSpec::Knn {
            n_neighbors: knn_grid[i % knn_grid.len()],
            method: KnnMethod::Largest,
        });
    }
    for i in 0..per_family {
        pool.push(ModelSpec::Lof {
            n_neighbors: lof_grid[i % lof_grid.len()],
            metric: Metric::Euclidean,
        });
    }
    for i in 0..per_family {
        pool.push(ModelSpec::Hbos {
            n_bins: hbos_grid[i % hbos_grid.len()],
            tolerance: 0.3,
        });
    }
    while pool.len() < m {
        pool.push(ModelSpec::IForest {
            n_estimators: ifor_grid[pool.len() % ifor_grid.len()],
            max_features: 0.8,
        });
    }
    pool
}

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.05, 0.3, 1.0);
    let pool_sizes: Vec<usize> = scale.pick(vec![16], vec![40, 80], vec![100, 500, 1000]);
    let mut csv = CsvSink::create("table3", "dataset,n,d,m,t,generic_s,bps_s,reduction_pct");

    println!(
        "Table 3: Generic vs BPS training makespan (measured per-model costs, simulated workers)"
    );
    println!(
        "{:<10} {:>6} {:>3} {:>5} {:>2} {:>10} {:>10} {:>8}",
        "dataset", "n", "d", "m", "t", "Generic", "BPS", "Redu(%)"
    );

    for ds_name in DATASETS {
        let ds = registry::load_scaled(ds_name, 17, data_scale).expect("registry dataset");
        let meta = DatasetMeta::extract(&ds.x);
        for &m in &pool_sizes {
            let pool = grouped_pool(m);
            // Measure each model's true sequential fit cost once.
            let mut costs = Vec::with_capacity(pool.len());
            for (i, spec) in pool.iter().enumerate() {
                let mut det = spec.build(i as u64).expect("valid spec");
                let start = Instant::now();
                det.fit(&ds.x).expect("detector fit");
                costs.push(start.elapsed().as_secs_f64().max(1e-9));
            }
            // Forecasts drive BPS; truth drives the makespan evaluation.
            let tasks: Vec<_> = pool.iter().map(|s| s.task_descriptor()).collect();
            let predicted = AnalyticCostModel::new().predict_costs(&tasks, &meta);

            for &t in WORKERS {
                let generic =
                    simulate_makespan(&costs, &generic_schedule(pool.len(), t).expect("m,t >= 1"))
                        .expect("matching lengths");
                let bps = simulate_makespan(
                    &costs,
                    &bps_schedule(&predicted, t, 1.0).expect("finite costs"),
                )
                .expect("matching lengths");
                let redu = 100.0 * (generic.makespan - bps.makespan) / generic.makespan.max(1e-12);
                println!(
                    "{:<10} {:>6} {:>3} {:>5} {:>2} {:>10.3} {:>10.3} {:>8.2}",
                    ds_name,
                    ds.n_samples(),
                    ds.n_features(),
                    m,
                    t,
                    generic.makespan,
                    bps.makespan,
                    redu
                );
                csv.row(&format!(
                    "{ds_name},{},{},{m},{t},{:.6},{:.6},{redu:.2}",
                    ds.n_samples(),
                    ds.n_features(),
                    generic.makespan,
                    bps.makespan,
                ));
            }
        }
    }
    println!("\nwrote {}", csv.path().display());
    println!("(expected shape: BPS reduction grows with more workers and larger");
    println!(" datasets — the paper reports up to ~61% on PageBlock at t=4.)");
}
