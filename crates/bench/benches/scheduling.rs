//! Criterion micro-benchmarks: scheduling overhead.
//!
//! BPS adds a ranking + greedy-assignment step on top of generic
//! chunking; this bench shows that the overhead is microseconds even for
//! 1000-model pools — negligible against seconds of detector training.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use suod_scheduler::{bps_schedule, generic_schedule, shuffled_schedule, simulate_makespan};

fn costs(m: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..m).map(|_| rng.random_range(0.01..10.0)).collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_m1000_t8");
    group.sample_size(20);
    let cost_vec = costs(1000);

    group.bench_function("generic", |b| {
        b.iter(|| generic_schedule(black_box(1000), 8).expect("valid"))
    });
    group.bench_function("shuffled", |b| {
        b.iter(|| shuffled_schedule(black_box(1000), 8, 3).expect("valid"))
    });
    group.bench_function("bps", |b| {
        b.iter(|| bps_schedule(black_box(&cost_vec), 8, 1.0).expect("valid"))
    });
    group.bench_function("simulate_makespan", |b| {
        let a = bps_schedule(&cost_vec, 8, 1.0).expect("valid");
        b.iter(|| simulate_makespan(black_box(&cost_vec), &a).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
