//! Interpretability + downstream-combination extensions.
//!
//! Exercises the three capabilities the paper lists as benefits or future
//! work beyond the core acceleration modules:
//!
//! 1. **Feature importances** from the pseudo-supervised approximators
//!    (§3.4 Remark 1: tree regressors "yield feature importance
//!    automatically to facilitate understanding");
//! 2. **LSCP** — locally selective score combination (§5, future work);
//! 3. **XGBOD** — semi-supervised detection on SUOD-augmented features
//!    (§5, future work).
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example interpretability_and_extensions
//! ```

use suod::lscp::{lscp_scores, LscpConfig, LscpVariant};
use suod::prelude::*;
use suod::xgbod::Xgbod;
use suod_datasets::{registry, train_test_split};
use suod_metrics::roc_auc;

fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 15,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 30,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 20,
            metric: Metric::Euclidean,
        },
        ModelSpec::Cblof { n_clusters: 4 },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 50,
            max_features: 0.8,
        },
        ModelSpec::Loda {
            n_members: 50,
            n_bins: 10,
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = registry::load_scaled("cardio", 17, 0.4)?;
    let split = train_test_split(&ds, 0.4, 17)?;
    println!(
        "dataset: {} analog, {} train / {} test, {} features\n",
        ds.name,
        split.x_train.nrows(),
        split.x_test.nrows(),
        ds.n_features()
    );

    // --- 1. Which features drive the outlier scores? --------------------
    // Keep approximators in the original space (projection off) so their
    // importances attribute to input columns.
    let mut clf = Suod::builder()
        .base_estimators(pool())
        .with_projection(false)
        .with_approximation(true)
        .seed(17)
        .build()?;
    clf.fit(&split.x_train)?;
    let imp = clf.feature_importances()?;
    let mut ranked: Vec<(usize, f64)> = imp.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
    println!("top-5 features by ensemble approximator importance:");
    for (feat, weight) in ranked.iter().take(5) {
        println!("  feature {feat:>2}: {:.3}", weight);
    }

    // --- 2. LSCP: locally selective combination vs plain averaging. ------
    let train_scores = clf.training_scores()?;
    let test_scores = clf.decision_function(&split.x_test)?;
    let avg = clf.combined_scores(&split.x_test)?;
    let lscp = lscp_scores(
        &split.x_train,
        &train_scores,
        &split.x_test,
        &test_scores,
        &LscpConfig {
            region_size: 30,
            variant: LscpVariant::Moa { s: 3 },
        },
    )?;
    println!("\ncombination on held-out data:");
    println!("  Average ROC : {:.4}", roc_auc(&split.y_test, &avg)?);
    println!("  LSCP-MOA ROC: {:.4}", roc_auc(&split.y_test, &lscp)?);

    // --- 3. XGBOD: spend the labels when you have them. -------------------
    let mut xgbod = Xgbod::new(Suod::builder().base_estimators(pool()).seed(17), 60)?;
    xgbod.fit(&split.x_train, &split.y_train)?;
    let supervised = xgbod.decision_function(&split.x_test)?;
    println!(
        "  XGBOD ROC   : {:.4}  (semi-supervised, uses train labels)",
        roc_auc(&split.y_test, &supervised)?
    );
    Ok(())
}
