//! Chaos-at-predict and serving-layer system tests.
//!
//! The serving determinism contract: survivor scores are bit-identical
//! at any worker count, even while injected predict-time faults (panics,
//! stragglers, NaN columns) are quarantining models mid-stream; the shed
//! set under deadline pressure is a pure function of the arrival trace
//! on a manual clock; and no injected model fault ever fails a whole
//! request batch. All chaos injections are pure functions of the model
//! seed (see `suod_detectors::chaos`), so every assertion is exact.

use std::sync::Arc;
use suod::prelude::*;
use suod_serve::{ManualClock, ScoreOutcome, ScoreService, ServeConfig, SubmitError};

/// 90 x 5 synthetic grid with two planted outliers.
fn data() -> Matrix {
    let mut rows: Vec<Vec<f64>> = (0..88)
        .map(|i| {
            vec![
                (i % 10) as f64 * 0.2,
                (i / 10) as f64 * 0.2,
                ((i * 3) % 7) as f64 * 0.1,
                ((i * 5) % 11) as f64 * 0.1,
                ((i * 7) % 13) as f64 * 0.1,
            ]
        })
        .collect();
    rows.push(vec![9.0; 5]);
    rows.push(vec![-9.0, 9.0, -9.0, 9.0, -9.0]);
    Matrix::from_rows(&rows).unwrap()
}

/// Query rows disjoint from the training grid.
fn queries(n: usize) -> Vec<Matrix> {
    (0..n)
        .map(|r| {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|i| {
                    let k = (r * 4 + i) as f64;
                    vec![
                        (k * 0.17) % 2.0,
                        (k * 0.29) % 2.0,
                        (k * 0.41) % 0.7,
                        (k * 0.53) % 1.1,
                        (k * 0.61) % 1.3,
                    ]
                })
                .collect();
            Matrix::from_rows(&rows).unwrap()
        })
        .collect()
}

/// Eight healthy models across five families, chaos members appended at
/// the end so the healthy prefix keeps identical derived seeds.
fn healthy_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 8,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.5,
        },
        ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        },
        ModelSpec::Loda {
            n_members: 20,
            n_bins: 10,
        },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
    ]
}

fn chaotic_pool() -> Vec<ModelSpec> {
    let mut pool = healthy_pool();
    pool.push(ModelSpec::Chaos {
        mode: ChaosMode::PanicOnPredict,
        n_neighbors: 5,
    });
    pool.push(ModelSpec::Chaos {
        mode: ChaosMode::NanOnPredict,
        n_neighbors: 5,
    });
    pool
}

fn fit(pool: Vec<ModelSpec>, n_workers: usize) -> Suod {
    let mut clf = Suod::builder()
        .base_estimators(pool)
        .min_healthy_fraction(0.5)
        .n_workers(n_workers)
        .seed(41)
        .build()
        .unwrap();
    clf.fit(&data()).unwrap();
    clf
}

/// Serves a fixed request trace through a manual-clock service and
/// returns each request's terminal outcome plus the final report.
fn serve_trace(
    clf: Suod,
    config: ServeConfig,
) -> (Vec<ScoreOutcome>, suod_serve::ServeReport, Vec<bool>) {
    let clock = Arc::new(ManualClock::new());
    let service =
        ScoreService::with_parts(clf, config, clock.clone(), suod_observe::noop()).unwrap();
    let mut tickets = Vec::new();
    for query in queries(6) {
        tickets.push(service.submit(query).unwrap());
        clock.advance(1);
        service.process_once();
    }
    let outcomes: Vec<ScoreOutcome> = tickets.into_iter().map(|t| t.wait()).collect();
    (outcomes, service.report(), service.active_models())
}

fn combined_bits(outcome: &ScoreOutcome) -> Vec<u64> {
    match outcome {
        ScoreOutcome::Scored(batch) => batch.combined.iter().map(|v| v.to_bits()).collect(),
        other => panic!("expected Scored, got {other:?}"),
    }
}

#[test]
fn survivor_scores_bit_identical_across_worker_counts_under_predict_chaos() {
    // One panicking + one NaN-scoring model injected at predict time.
    // Every batch must still be answered, with survivor scores
    // bit-identical across 1/2/8 workers.
    let config = ServeConfig {
        predict_failure_budget: 3,
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let reference = serve_trace(fit(chaotic_pool(), 1), config.clone());
    for workers in [2usize, 8] {
        let run = serve_trace(fit(chaotic_pool(), workers), config.clone());
        for (a, b) in reference.0.iter().zip(&run.0) {
            assert_eq!(combined_bits(a), combined_bits(b));
        }
        // Quarantine decisions are part of the contract too.
        assert_eq!(reference.2, run.2);
        assert_eq!(reference.1.quarantined, run.1.quarantined);
        assert_eq!(reference.1.predict_faults, run.1.predict_faults);
    }
    // The chaos members (positions 8 and 9) burned through their budget
    // of 3 and left the mask; the healthy prefix stayed active.
    assert_eq!(reference.2[..8], [true; 8]);
    assert_eq!(&reference.2[8..], [false, false]);
    assert_eq!(reference.1.quarantined, 2);
}

#[test]
fn chaotic_survivor_scores_match_chaos_free_pool() {
    // Once the saboteurs are quarantined, served scores must equal those
    // of a pool that never contained them (the healthy prefix keeps its
    // seeds because chaos members sit at the end).
    let config = ServeConfig {
        predict_failure_budget: 1,
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let chaotic = serve_trace(fit(chaotic_pool(), 2), config.clone());
    let clean = serve_trace(fit(healthy_pool(), 2), config);
    // Batch 0 carries the chaos faults; from batch 1 on the masks have
    // converged and scores must match the clean pool bit for bit.
    for i in 1..6 {
        assert_eq!(combined_bits(&chaotic.0[i]), combined_bits(&clean.0[i]));
    }
    assert_eq!(chaotic.1.quarantined, 2);
    assert_eq!(clean.1.quarantined, 0);
}

#[test]
fn no_injected_fault_ever_fails_a_request_batch() {
    let config = ServeConfig {
        predict_failure_budget: 100, // never quarantine: fault every batch
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let (outcomes, report, _) = serve_trace(fit(chaotic_pool(), 2), config);
    for outcome in &outcomes {
        match outcome {
            ScoreOutcome::Scored(batch) => {
                assert!(batch.combined.iter().all(|v| v.is_finite()));
                assert_eq!(batch.healthy_models, 8);
                assert_eq!(batch.total_models, 10);
                assert!(!batch.faults.is_empty());
            }
            other => panic!("injected fault failed a batch: {other:?}"),
        }
    }
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.requests_scored, 6);
    // Two faulting models x six batches.
    assert_eq!(report.predict_faults, 12);
}

#[test]
fn quarantine_respects_failure_budget_exactly() {
    let config = ServeConfig {
        predict_failure_budget: 2,
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let service = ScoreService::with_parts(
        fit(chaotic_pool(), 2),
        config,
        clock.clone(),
        suod_observe::noop(),
    )
    .unwrap();
    let queries = queries(3);
    // Batch 1: both saboteurs fault (streak 1), still active.
    let t = service.submit(queries[0].clone()).unwrap();
    service.process_once();
    assert!(matches!(t.wait(), ScoreOutcome::Scored(_)));
    assert_eq!(service.active_models()[8..], [true, true]);
    // Batch 2: streak 2 == budget — quarantined, flagged on the fault.
    let t = service.submit(queries[1].clone()).unwrap();
    service.process_once();
    match t.wait() {
        ScoreOutcome::Scored(batch) => {
            assert!(batch.faults.iter().all(|f| f.quarantined));
        }
        other => panic!("expected Scored, got {other:?}"),
    }
    assert_eq!(service.active_models()[8..], [false, false]);
    // Batch 3: masked out — no work scheduled, no faults reported.
    let t = service.submit(queries[2].clone()).unwrap();
    service.process_once();
    match t.wait() {
        ScoreOutcome::Scored(batch) => {
            assert!(batch.faults.is_empty());
            assert_eq!(batch.healthy_models, 8);
        }
        other => panic!("expected Scored, got {other:?}"),
    }
    assert_eq!(service.report().quarantined, 2);
}

#[test]
fn deadline_shed_set_is_deterministic_for_fixed_trace() {
    // A fixed arrival trace on a manual clock: requests 0 and 2 are
    // admitted with tight budgets and aged past them before their batch
    // assembles; 1 and 3 stay fresh. The shed set must be exactly
    // {0, 2} on every run and every worker count.
    let run = |workers: usize| -> Vec<bool> {
        let clock = Arc::new(ManualClock::new());
        let service = ScoreService::with_parts(
            fit(healthy_pool(), workers),
            ServeConfig::default(),
            clock.clone(),
            suod_observe::noop(),
        )
        .unwrap();
        let q = queries(4);
        let t0 = service.submit_with_deadline(q[0].clone(), Some(5)).unwrap();
        let t1 = service
            .submit_with_deadline(q[1].clone(), Some(500))
            .unwrap();
        clock.advance(10); // t0 now expired
        let t2 = service.submit_with_deadline(q[2].clone(), Some(3)).unwrap();
        let t3 = service.submit_with_deadline(q[3].clone(), None).unwrap();
        clock.advance(20); // t2 now expired too
        assert_eq!(service.process_once(), 4);
        [t0, t1, t2, t3]
            .into_iter()
            .map(|t| matches!(t.wait(), ScoreOutcome::Shed { .. }))
            .collect()
    };
    let reference = run(1);
    assert_eq!(reference, vec![true, false, true, false]);
    for workers in [2usize, 8] {
        assert_eq!(run(workers), reference);
    }
}

#[test]
fn backpressure_bounds_the_queue_under_flood() {
    let config = ServeConfig {
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let service = ScoreService::new(fit(healthy_pool(), 2), config).unwrap();
    let q = queries(1).pop().unwrap();
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..20 {
        match service.submit(q.clone()) {
            Ok(ticket) => admitted.push(ticket),
            Err(SubmitError::Busy { capacity }) => {
                assert_eq!(capacity, 4);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(admitted.len(), 4);
    assert_eq!(rejected, 16);
    // Every admitted request is eventually answered; nothing is lost.
    while service.process_once() > 0 {}
    for ticket in admitted {
        assert!(matches!(ticket.wait(), ScoreOutcome::Scored(_)));
    }
    let report = service.report();
    assert_eq!(report.admitted, 4);
    assert_eq!(report.rejected, 16);
    assert_eq!(report.requests_scored, 4);
}

#[test]
fn serving_floor_fails_batches_not_the_service() {
    // Floor demands all 10 models healthy, but two always fault: every
    // batch fails cleanly, the service survives, and relaxing to a pool
    // below the floor never poisons subsequent admissions.
    let config = ServeConfig {
        predict_failure_budget: 100,
        min_healthy_fraction: 1.0,
        ..ServeConfig::default()
    };
    let (outcomes, report, _) = serve_trace(fit(chaotic_pool(), 2), config);
    for outcome in &outcomes {
        match outcome {
            ScoreOutcome::Failed(msg) => assert!(msg.contains("degraded")),
            other => panic!("expected Failed below the floor, got {other:?}"),
        }
    }
    assert_eq!(report.requests_failed, 6);
    assert_eq!(report.requests_scored, 0);
}

#[test]
fn quarantine_recovers_service_at_strict_default_floor() {
    // The default min_healthy_fraction of 1.0 is taken over the models
    // active for each batch, not the full served ensemble: a faulty
    // model fails at most `predict_failure_budget` batches before it
    // leaves the denominator and the service recovers.
    let config = ServeConfig {
        predict_failure_budget: 2,
        ..ServeConfig::default() // min_healthy_fraction: 1.0
    };
    let (outcomes, report, active) = serve_trace(fit(chaotic_pool(), 2), config);
    // Batches 0 and 1 carry faults from still-active saboteurs; with
    // every active model required, they fail cleanly.
    for outcome in &outcomes[..2] {
        assert!(
            matches!(outcome, ScoreOutcome::Failed(msg) if msg.contains("degraded")),
            "expected Failed below the floor, got {outcome:?}"
        );
    }
    // From batch 2 on the saboteurs are quarantined out of the
    // denominator and every batch scores again.
    for outcome in &outcomes[2..] {
        match outcome {
            ScoreOutcome::Scored(batch) => {
                assert_eq!(batch.healthy_models, 8);
                assert!(batch.faults.is_empty());
            }
            other => panic!("service did not recover after quarantine: {other:?}"),
        }
    }
    assert_eq!(&active[8..], [false, false]);
    assert_eq!(report.requests_failed, 2);
    assert_eq!(report.requests_scored, 4);
    assert_eq!(report.quarantined, 2);
}

#[test]
fn core_predict_chaos_is_bit_identical_across_worker_counts() {
    // The serving contract rests on the estimator's own guarantee:
    // decision_function with injected predict faults produces the same
    // matrix (NaN columns included) at any worker count.
    let q = {
        let all = queries(6);
        let mut rows = Vec::new();
        for m in &all {
            for r in 0..m.nrows() {
                rows.push(m.row(r).to_vec());
            }
        }
        Matrix::from_rows(&rows).unwrap()
    };
    let score = |workers: usize| -> Vec<u64> {
        fit(chaotic_pool(), workers)
            .decision_function(&q)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    let reference = score(1);
    // NaN columns are present (the saboteurs) but deterministic.
    assert!(reference.iter().any(|&b| f64::from_bits(b).is_nan()));
    assert_eq!(score(2), reference);
    assert_eq!(score(8), reference);
}
