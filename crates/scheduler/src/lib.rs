#![warn(missing_docs)]

//! Execution-level scheduling for the SUOD reproduction (paper §3.5).
//!
//! Heterogeneous detector pools have wildly varying per-model costs: a
//! kNN on 50k samples costs orders of magnitude more than an HBOS. The
//! generic scheduler in joblib/scikit-learn splits a model list into `t`
//! contiguous chunks, so a chunk of kNNs becomes the straggler that gates
//! the whole fit. SUOD's Balanced Parallel Scheduling (BPS) forecasts
//! each model's cost, converts costs to **discounted ranks** (ranks
//! transfer across hardware; the discount `1 + alpha * rank / m` stops
//! high ranks from dominating the sum), and assigns models to workers so
//! the per-worker rank sums are nearly equal (Eq. 2 of the paper).
//!
//! # Modules
//!
//! * [`meta`] — dataset meta-features feeding the cost predictor.
//! * [`cost`] — cost models: a closed-form [`cost::AnalyticCostModel`] and
//!   a trainable [`cost::ForestCostPredictor`] (random forest over
//!   meta-features, validated by Spearman rank correlation as in §3.5).
//! * [`assignment`] — generic / shuffled / BPS schedulers.
//! * [`executor`] — a real thread-pool executor running one worker thread
//!   per group.
//! * [`work_stealing`] — a persistent pool whose per-worker deques are
//!   seeded from the BPS placement; idle workers steal from the tail of
//!   the most-loaded peer, and each run emits an
//!   [`work_stealing::ExecutionReport`] (per-task wall time, per-worker
//!   busy time, steal count, failure/retry/straggler telemetry). A
//!   fault-isolated mode (`run_with_report_isolated`) catches each
//!   task's panic individually as a [`work_stealing::TaskFailure`]
//!   instead of aborting the batch.
//! * [`simulate`] — a discrete-event executor computing exact worker
//!   makespans from per-model costs. Used to reproduce the paper's
//!   multi-worker timing tables on hosts with fewer physical cores (see
//!   DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use suod_scheduler::assignment::{bps_schedule, generic_schedule};
//! use suod_scheduler::simulate::simulate_makespan;
//!
//! // Four expensive models followed by four cheap ones.
//! let costs = [8.0, 8.0, 8.0, 8.0, 1.0, 1.0, 1.0, 1.0];
//! let generic = generic_schedule(costs.len(), 2).unwrap();
//! let bps = bps_schedule(&costs, 2, 1.0).unwrap();
//! let g = simulate_makespan(&costs, &generic).unwrap();
//! let b = simulate_makespan(&costs, &bps).unwrap();
//! assert!(b.makespan < g.makespan);
//! ```

pub mod assignment;
pub mod cost;
pub mod executor;
pub mod meta;
pub mod simulate;
pub mod work_stealing;

pub use assignment::{bps_schedule, generic_schedule, shuffled_schedule, Assignment};
pub use cost::{
    predict_batch_forecast, predict_chunk_costs, AnalyticCostModel, CostModel, ForestCostPredictor,
    TaskDescriptor,
};
pub use executor::ThreadPoolExecutor;
pub use meta::DatasetMeta;
pub use simulate::{simulate_makespan, SimulationResult};
pub use work_stealing::{ExecutionReport, TaskFailure, WorkStealingExecutor};

use std::fmt;

/// The algorithm families the cost models know about.
///
/// Mirrors the paper's statement that the cost predictor "only covers the
/// major methods in PyOD. For unseen models, they are classified as
/// `unknown` to be assigned with the max cost to prevent over-optimistic
/// scheduling."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AlgorithmFamily {
    /// k-nearest-neighbour distance detectors (incl. average kNN).
    Knn,
    /// Local Outlier Factor.
    Lof,
    /// Angle-Based Outlier Detection (fast variant).
    Abod,
    /// Histogram-Based Outlier Score.
    Hbos,
    /// Isolation Forest.
    IForest,
    /// Clustering-Based LOF.
    Cblof,
    /// One-Class SVM.
    Ocsvm,
    /// Feature Bagging over LOF.
    FeatureBagging,
    /// Local Outlier Probabilities.
    Loop,
    /// PCA-based anomaly detection (minor-component reconstruction).
    Pca,
    /// LODA: sparse random projections + 1-D histograms.
    Loda,
    /// Anything the predictor was not trained on: gets the maximum cost.
    Unknown,
}

impl AlgorithmFamily {
    /// All known (non-`Unknown`) families.
    pub fn known() -> [AlgorithmFamily; 11] {
        [
            AlgorithmFamily::Knn,
            AlgorithmFamily::Lof,
            AlgorithmFamily::Abod,
            AlgorithmFamily::Hbos,
            AlgorithmFamily::IForest,
            AlgorithmFamily::Cblof,
            AlgorithmFamily::Ocsvm,
            AlgorithmFamily::FeatureBagging,
            AlgorithmFamily::Loop,
            AlgorithmFamily::Pca,
            AlgorithmFamily::Loda,
        ]
    }

    /// Stable index used for one-hot embeddings (Unknown maps to 11).
    pub fn index(&self) -> usize {
        match self {
            AlgorithmFamily::Knn => 0,
            AlgorithmFamily::Lof => 1,
            AlgorithmFamily::Abod => 2,
            AlgorithmFamily::Hbos => 3,
            AlgorithmFamily::IForest => 4,
            AlgorithmFamily::Cblof => 5,
            AlgorithmFamily::Ocsvm => 6,
            AlgorithmFamily::FeatureBagging => 7,
            AlgorithmFamily::Loop => 8,
            AlgorithmFamily::Pca => 9,
            AlgorithmFamily::Loda => 10,
            AlgorithmFamily::Unknown => 11,
        }
    }
}

impl fmt::Display for AlgorithmFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AlgorithmFamily::Knn => "knn",
            AlgorithmFamily::Lof => "lof",
            AlgorithmFamily::Abod => "abod",
            AlgorithmFamily::Hbos => "hbos",
            AlgorithmFamily::IForest => "iforest",
            AlgorithmFamily::Cblof => "cblof",
            AlgorithmFamily::Ocsvm => "ocsvm",
            AlgorithmFamily::FeatureBagging => "feature_bagging",
            AlgorithmFamily::Loop => "loop",
            AlgorithmFamily::Pca => "pca",
            AlgorithmFamily::Loda => "loda",
            AlgorithmFamily::Unknown => "unknown",
        };
        f.write_str(name)
    }
}

/// Errors produced by scheduling and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
    /// The cost predictor was asked to predict before training.
    NotFitted(&'static str),
    /// An assignment referenced task indices that do not exist.
    BadAssignment(String),
    /// Propagated regression failure from the learned cost model.
    Supervised(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NotFitted(what) => write!(f, "{what} must be trained before prediction"),
            Error::BadAssignment(msg) => write!(f, "bad assignment: {msg}"),
            Error::Supervised(msg) => write!(f, "cost regressor error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<suod_supervised::Error> for Error {
    fn from(e: suod_supervised::Error) -> Self {
        Error::Supervised(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
