//! Criterion micro-benchmarks: scheduling overhead and executor behaviour.
//!
//! BPS adds a ranking + greedy-assignment step on top of generic
//! chunking; the first group shows that the overhead is microseconds even
//! for 1000-model pools — negligible against seconds of detector
//! training. The second group runs a skewed-cost straggler workload (one
//! task ~50x the rest, under a deliberately wrong cost forecast) through
//! the static [`ThreadPoolExecutor`] and the [`WorkStealingExecutor`]:
//! stealing bounds the damage of a misprediction, static chunking eats it
//! in full. (On a single-core host both degenerate to sequential time;
//! the gap appears with >= 2 physical cores.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use suod_scheduler::{
    bps_schedule, generic_schedule, shuffled_schedule, simulate_makespan, ThreadPoolExecutor,
    WorkStealingExecutor,
};

fn costs(m: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..m).map(|_| rng.random_range(0.01..10.0)).collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_m1000_t8");
    group.sample_size(20);
    let cost_vec = costs(1000);

    group.bench_function("generic", |b| {
        b.iter(|| generic_schedule(black_box(1000), 8).expect("valid"))
    });
    group.bench_function("shuffled", |b| {
        b.iter(|| shuffled_schedule(black_box(1000), 8, 3).expect("valid"))
    });
    group.bench_function("bps", |b| {
        b.iter(|| bps_schedule(black_box(&cost_vec), 8, 1.0).expect("valid"))
    });
    group.bench_function("simulate_makespan", |b| {
        let a = bps_schedule(&cost_vec, 8, 1.0).expect("valid");
        b.iter(|| simulate_makespan(black_box(&cost_vec), &a).expect("valid"))
    });
    group.finish();
}

/// CPU-bound busy work of roughly `units` equal cost quanta.
fn spin(units: u64) -> u64 {
    let mut acc = 0x9E3779B97F4A7C15u64;
    for i in 0..units * 20_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// One 50x straggler among cheap tasks, forecast as merely 2x — the
/// misprediction BPS cannot fix statically.
fn straggler_tasks() -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
    (0..16u64)
        .map(|i| {
            let units = if i == 0 { 50 } else { 1 };
            Box::new(move || spin(units)) as _
        })
        .collect()
}

fn bench_straggler(c: &mut Criterion) {
    let mut wrong_costs = vec![1.0; 16];
    wrong_costs[0] = 2.0;
    let assignment = bps_schedule(&wrong_costs, 4, 1.0).expect("valid");
    let pool = WorkStealingExecutor::new(4).expect("valid");

    let mut group = c.benchmark_group("straggler_m16_t4");
    group.sample_size(10);
    group.bench_function("static", |b| {
        b.iter_batched(
            straggler_tasks,
            |tasks| {
                ThreadPoolExecutor::new()
                    .run(tasks, &assignment)
                    .expect("runs")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("stealing", |b| {
        b.iter_batched(
            straggler_tasks,
            |tasks| pool.run(tasks, &assignment).expect("runs"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_straggler);
criterion_main!(benches);
