//! Pseudo-Supervised Approximation (paper §3.4).
//!
//! After an unsupervised detector is fitted, its training-set outlyingness
//! scores act as "pseudo ground truth" for a fast supervised regressor;
//! the regressor then *replaces* the detector for scoring new samples.
//! The paper recommends tree ensembles (Remark 1); [`ApproxSpec`] also
//! offers ridge and k-NN regressors for the ablation studies.

use crate::Result;
use suod_linalg::Matrix;
use suod_supervised::{KnnRegressor, RandomForestRegressor, Regressor, Ridge};

/// Which supervised regressor approximates costly detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxSpec {
    /// Random forest regressor (the paper's recommendation).
    RandomForest {
        /// Number of trees.
        n_estimators: usize,
        /// Maximum tree depth.
        max_depth: usize,
    },
    /// Ridge regression — a deliberately coarse linear baseline.
    Ridge {
        /// Regularization strength.
        lambda: f64,
    },
    /// k-NN regression — accurate but as slow as what it replaces; used
    /// to demonstrate why tree ensembles are the right default.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
}

impl Default for ApproxSpec {
    fn default() -> Self {
        ApproxSpec::RandomForest {
            n_estimators: 50,
            max_depth: 12,
        }
    }
}

impl ApproxSpec {
    /// Instantiates the regressor.
    ///
    /// # Errors
    ///
    /// Propagates hyperparameter validation from the regressors.
    pub fn build(&self, seed: u64) -> Result<Box<dyn Regressor>> {
        Ok(match *self {
            ApproxSpec::RandomForest {
                n_estimators,
                max_depth,
            } => Box::new(RandomForestRegressor::new(n_estimators, seed).with_max_depth(max_depth)),
            ApproxSpec::Ridge { lambda } => Box::new(Ridge::new(lambda)?),
            ApproxSpec::Knn { k } => Box::new(KnnRegressor::new(k)?),
        })
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ApproxSpec::RandomForest { .. } => "random_forest",
            ApproxSpec::Ridge { .. } => "ridge",
            ApproxSpec::Knn { .. } => "knn_regressor",
        }
    }

    /// Appends the spec to a `suod-pool/1` snapshot body.
    pub fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) {
        match *self {
            ApproxSpec::RandomForest {
                n_estimators,
                max_depth,
            } => {
                w.write_u64(0);
                w.write_usize(n_estimators);
                w.write_usize(max_depth);
            }
            ApproxSpec::Ridge { lambda } => {
                w.write_u64(1);
                w.write_f64(lambda);
            }
            ApproxSpec::Knn { k } => {
                w.write_u64(2);
                w.write_usize(k);
            }
        }
    }

    /// Reads a spec written by [`ApproxSpec::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`](crate::Error::Linalg) on truncated input
    /// or an unknown variant tag.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        Ok(match r.read_u64()? {
            0 => ApproxSpec::RandomForest {
                n_estimators: r.read_usize()?,
                max_depth: r.read_usize()?,
            },
            1 => ApproxSpec::Ridge {
                lambda: r.read_f64()?,
            },
            2 => ApproxSpec::Knn { k: r.read_usize()? },
            other => {
                return Err(crate::Error::Linalg(suod_linalg::Error::InvalidParameter(
                    format!("snapshot: unknown ApproxSpec tag {other}"),
                )))
            }
        })
    }
}

/// Trains an approximator on `(features, pseudo_truth)` — the distillation
/// step of PSA.
///
/// # Errors
///
/// Propagates regressor construction/fitting failures.
pub fn fit_approximator(
    spec: &ApproxSpec,
    features: &Matrix,
    pseudo_truth: &[f64],
    seed: u64,
) -> Result<Box<dyn Regressor>> {
    let mut regressor = spec.build(seed)?;
    regressor.fit(features, pseudo_truth)?;
    Ok(regressor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_detectors::{Detector, KnnDetector, KnnMethod};

    fn training_data() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.2, (i / 8) as f64 * 0.2])
            .collect();
        rows.push(vec![8.0, 8.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn approximator_reproduces_detector_ranking() {
        let x = training_data();
        let mut det = KnnDetector::new(3, KnnMethod::Largest).unwrap();
        det.fit(&x).unwrap();
        let truth = det.training_scores().unwrap();

        for spec in [
            ApproxSpec::default(),
            ApproxSpec::Ridge { lambda: 1e-3 },
            ApproxSpec::Knn { k: 3 },
        ] {
            let approx = fit_approximator(&spec, &x, &truth, 0).unwrap();
            let pred = approx.predict(&x).unwrap();
            // The far outlier must stay on top of the approximated scores.
            let top = suod_linalg::rank::argsort_desc(&pred)[0];
            assert_eq!(top, 40, "{} lost the outlier", spec.name());
        }
    }

    #[test]
    fn rf_approximator_generalizes_to_new_points() {
        let x = training_data();
        let mut det = KnnDetector::new(3, KnnMethod::Largest).unwrap();
        det.fit(&x).unwrap();
        let truth = det.training_scores().unwrap();
        let approx = fit_approximator(&ApproxSpec::default(), &x, &truth, 1).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5], vec![7.5, 7.5]]).unwrap();
        let pred = approx.predict(&q).unwrap();
        assert!(pred[1] > pred[0]);
    }

    #[test]
    fn default_is_random_forest() {
        assert_eq!(ApproxSpec::default().name(), "random_forest");
    }

    #[test]
    fn invalid_params_propagate() {
        assert!(ApproxSpec::Ridge { lambda: -1.0 }.build(0).is_err());
        assert!(ApproxSpec::Knn { k: 0 }.build(0).is_err());
    }
}
