//! Integration tests for the scheduling path: measured costs from real
//! detector fits feeding the BPS pipeline, reproducing the paper's §3.5
//! claims at test scale.

use std::time::Instant;
use suod::prelude::*;
use suod_datasets::registry;
use suod_metrics::spearman;
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, CostModel, DatasetMeta,
};

/// A deliberately grouped pool: heavy proximity models first, cheap
/// histogram/forest models last — the paper's motivating worst case for
/// generic chunked scheduling.
fn grouped_pool() -> Vec<ModelSpec> {
    let mut pool = Vec::new();
    for k in [5usize, 10, 15, 20] {
        pool.push(ModelSpec::Knn {
            n_neighbors: k,
            method: KnnMethod::Largest,
        });
    }
    for k in [5usize, 10, 15, 20] {
        pool.push(ModelSpec::Lof {
            n_neighbors: k,
            metric: Metric::Euclidean,
        });
    }
    for b in [5usize, 10, 15, 20] {
        pool.push(ModelSpec::Hbos {
            n_bins: b,
            tolerance: 0.3,
        });
    }
    for t in [10usize, 15, 20, 25] {
        pool.push(ModelSpec::IForest {
            n_estimators: t,
            max_features: 0.8,
        });
    }
    pool
}

#[test]
fn analytic_costs_rank_correlate_with_measured_times() {
    let ds = registry::load_scaled("cardio", 3, 0.35).unwrap();
    let pool = grouped_pool();

    // Measure true sequential fit times.
    let mut measured = Vec::with_capacity(pool.len());
    for (i, spec) in pool.iter().enumerate() {
        let mut det = spec.build(i as u64).unwrap();
        let start = Instant::now();
        det.fit(&ds.x).unwrap();
        measured.push(start.elapsed().as_secs_f64().max(1e-9));
    }

    let meta = DatasetMeta::extract(&ds.x);
    let model = AnalyticCostModel::new();
    let tasks: Vec<_> = pool.iter().map(|s| s.task_descriptor()).collect();
    let predicted = model.predict_costs(&tasks, &meta);

    let rho = spearman(&measured, &predicted).unwrap();
    assert!(
        rho > 0.5,
        "analytic cost rank correlation too low: {rho} (measured {measured:?})"
    );
}

#[test]
fn bps_reduces_simulated_makespan_on_grouped_pool() {
    let ds = registry::load_scaled("cardio", 5, 0.35).unwrap();
    let pool = grouped_pool();

    let mut measured = Vec::with_capacity(pool.len());
    for (i, spec) in pool.iter().enumerate() {
        let mut det = spec.build(i as u64).unwrap();
        let start = Instant::now();
        det.fit(&ds.x).unwrap();
        measured.push(start.elapsed().as_secs_f64().max(1e-9));
    }

    let meta = DatasetMeta::extract(&ds.x);
    let tasks: Vec<_> = pool.iter().map(|s| s.task_descriptor()).collect();
    let predicted = AnalyticCostModel::new().predict_costs(&tasks, &meta);

    for t in [2usize, 4] {
        let generic =
            simulate_makespan(&measured, &generic_schedule(pool.len(), t).unwrap()).unwrap();
        let bps = simulate_makespan(&measured, &bps_schedule(&predicted, t, 1.0).unwrap()).unwrap();
        assert!(
            bps.makespan <= generic.makespan * 1.05,
            "t={t}: BPS {} vs generic {}",
            bps.makespan,
            generic.makespan
        );
        // On this grouped pool generic should be clearly imbalanced.
        assert!(generic.efficiency() < 0.999, "t={t}");
    }
}

#[test]
fn suod_simulation_api_reports_improvement() {
    let ds = registry::load_scaled("pendigits", 2, 0.1).unwrap();
    let mut clf = Suod::builder()
        .base_estimators(grouped_pool())
        .with_projection(false)
        .with_approximation(false)
        .seed(1)
        .build()
        .unwrap();
    clf.fit(&ds.x).unwrap();
    let (generic, bps) = clf.simulate_fit_schedules(4).unwrap();
    // BPS must never be drastically worse, and is typically better on the
    // grouped ordering.
    assert!(bps.makespan <= generic.makespan * 1.25);
    assert!(bps.speedup() >= 1.0);
}
