//! Connectivity-based Outlier Factor — COF (Tang et al., PAKDD 2002).
//!
//! LOF struggles when outliers deviate from *patterns* (e.g. points off a
//! line) rather than from density. COF replaces LOF's reachability
//! density with the **average chaining distance**: the cost of greedily
//! linking a point's neighbourhood one nearest point at a time (the
//! set-based nearest path), with earlier links weighted more heavily.
//! A point whose neighbourhood chains much more expensively than its
//! neighbours' do is connectivity-isolated:
//!
//! ```text
//! COF(p) = ac_dist(p) / mean_{o in N_k(p)} ac_dist(o)
//! ```

use crate::{check_dims, Detector, Error, FitContext, Result};
use std::sync::Arc;
use suod_linalg::distance::Neighbor;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// COF detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{CofDetector, Detector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// // Points on a line; one point dangles off the pattern.
/// let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
/// rows.push(vec![5.0, 3.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut cof = CofDetector::new(5)?;
/// cof.fit(&x)?;
/// let s = cof.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CofDetector {
    k: usize,
    index: Option<Arc<KnnIndex>>,
    /// Average chaining distance of each training point.
    ac_dist: Vec<f64>,
    train_scores: Vec<f64>,
}

impl CofDetector {
    /// Creates a COF detector with `k` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k < 2` (the chain needs
    /// at least two links).
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter("n_neighbors must be >= 2".into()));
        }
        Ok(Self {
            k,
            index: None,
            ac_dist: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Average chaining distance of `point` over the rows `neighbors`
    /// (the set-based nearest path cost with linearly decaying weights).
    fn average_chaining_distance(metric: DistanceMetric, point: &[f64], neighbors: &Matrix) -> f64 {
        let k = neighbors.nrows();
        if k == 0 {
            return 0.0;
        }
        // Greedy SBN path: start from {point}, repeatedly attach the
        // remaining neighbour closest to the current set.
        let mut in_set: Vec<&[f64]> = vec![point];
        let mut remaining: Vec<usize> = (0..k).collect();
        // min_dist[j] = distance of remaining neighbour j to the set.
        let mut min_dist: Vec<f64> = (0..k)
            .map(|j| metric.distance(point, neighbors.row(j)))
            .collect();

        let denom = (k * (k + 1)) as f64;
        let mut acc = 0.0;
        for step in 1..=k {
            // Pick the closest remaining neighbour.
            let (pos, &j) = remaining
                .iter()
                .enumerate()
                .min_by(|&(_, &a), &(_, &b)| {
                    min_dist[a]
                        .partial_cmp(&min_dist[b])
                        .expect("finite distances")
                })
                .expect("remaining non-empty");
            let edge = min_dist[j];
            // Weight 2(k+1-step) / (k(k+1)): early links dominate.
            acc += (2.0 * (k + 1 - step) as f64 / denom) * edge;

            let new_row = neighbors.row(j);
            in_set.push(new_row);
            remaining.swap_remove(pos);
            for &r in &remaining {
                let d = metric.distance(new_row, neighbors.row(r));
                if d < min_dist[r] {
                    min_dist[r] = d;
                }
            }
        }
        acc
    }

    fn score_query(&self, index: &KnnIndex, q: &[f64], nn: &[Neighbor]) -> f64 {
        let ids: Vec<usize> = nn.iter().map(|n| n.index).collect();
        let neighbors = index.train_data().select_rows(&ids);
        let ac_q = Self::average_chaining_distance(index.metric(), q, &neighbors);
        let mean_nb: f64 =
            ids.iter().map(|&i| self.ac_dist[i]).sum::<f64>() / ids.len().max(1) as f64;
        if mean_nb <= 1e-300 {
            if ac_q <= 1e-300 {
                1.0
            } else {
                1e12
            }
        } else {
            ac_q / mean_nb
        }
    }
}

impl Detector for CofDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.fit_with_context(x, &FitContext::default())
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        let n = x.nrows();
        if n < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: n,
            });
        }
        let k = self.k.min(n - 1);

        // Leave-one-out neighbour lists (pool-shared prefix views or a
        // direct sweep) and chaining distances.
        let (index, neighbors) = ctx.self_neighbors(x, DistanceMetric::Euclidean, k)?;
        let neighbor_ids: Vec<Vec<usize>> = neighbors
            .iter()
            .map(|nn| nn.iter().map(|nb| nb.index).collect())
            .collect();
        let ac_dist: Vec<f64> = (0..n)
            .map(|i| {
                let neighbors = x.select_rows(&neighbor_ids[i]);
                Self::average_chaining_distance(DistanceMetric::Euclidean, x.row(i), &neighbors)
            })
            .collect();

        self.train_scores = (0..n)
            .map(|i| {
                let mean_nb: f64 = neighbor_ids[i].iter().map(|&j| ac_dist[j]).sum::<f64>()
                    / neighbor_ids[i].len().max(1) as f64;
                if mean_nb <= 1e-300 {
                    if ac_dist[i] <= 1e-300 {
                        1.0
                    } else {
                        1e12
                    }
                } else {
                    ac_dist[i] / mean_nb
                }
            })
            .collect();
        self.ac_dist = ac_dist;
        self.index = Some(index);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self.index.as_ref().ok_or(Error::NotFitted("CofDetector"))?;
        check_dims(index.train_data().ncols(), x)?;
        // Batched neighbour lookup hits the tiled brute-force fast path
        // on blocked/gemm indexes; results equal per-row queries exactly.
        let k = self.k.min(index.len());
        let batch = index.query_batch(x, k)?;
        Ok(batch
            .iter()
            .enumerate()
            .map(|(i, nn)| self.score_query(index, x.row(i), nn))
            .collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.index.is_none() {
            return Err(Error::NotFitted("CofDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "cof"
    }

    fn is_fitted(&self) -> bool {
        self.index.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        crate::write_opt_index(self.index.as_deref(), w);
        w.write_f64s(&self.ac_dist);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl CofDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        Ok(Self {
            k: r.read_usize()?,
            index: crate::read_opt_index(r, n_threads)?,
            ac_dist: r.read_f64s()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along a line with one pattern-breaking point above it —
    /// the scenario COF was designed for (density alone barely separates
    /// it).
    fn line_with_deviant() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.4, 0.0]).collect();
        rows.push(vec![6.0, 2.5]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn flags_pattern_deviation() {
        let mut cof = CofDetector::new(5).unwrap();
        cof.fit(&line_with_deviant()).unwrap();
        let s = cof.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 30);
        assert!(s[30] > 1.2, "deviant COF {}", s[30]);
    }

    #[test]
    fn line_points_score_near_one() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.4, 0.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut cof = CofDetector::new(5).unwrap();
        cof.fit(&x).unwrap();
        let s = cof.training_scores().unwrap();
        // Interior points chain exactly like their neighbours.
        assert!((s[15] - 1.0).abs() < 0.2, "interior COF {}", s[15]);
    }

    #[test]
    fn chaining_distance_manual_case() {
        // point at 0; neighbors at 1 and 2 on a line. SBN path: attach 1
        // (edge 1), then 2 (edge 1 from point 1). k=2:
        // ac = 2(2)/(2*3)*1 + 2(1)/(2*3)*1 = 2/3 + 1/3 = 1.
        let neighbors = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let ac =
            CofDetector::average_chaining_distance(DistanceMetric::Euclidean, &[0.0], &neighbors);
        assert!((ac - 1.0).abs() < 1e-12, "{ac}");
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut cof = CofDetector::new(5).unwrap();
        cof.fit(&line_with_deviant()).unwrap();
        let q = Matrix::from_rows(&[vec![5.0, 0.0], vec![5.0, 4.0]]).unwrap();
        let s = cof.decision_function(&q).unwrap();
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn duplicates_handled() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0]; 8]).unwrap();
        let mut cof = CofDetector::new(3).unwrap();
        cof.fit(&x).unwrap();
        assert!(cof.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn validates_inputs() {
        assert!(CofDetector::new(1).is_err());
        let mut cof = CofDetector::new(3).unwrap();
        assert!(cof.fit(&Matrix::zeros(2, 2)).is_err());
        assert!(cof.decision_function(&Matrix::zeros(1, 2)).is_err());
        cof.fit(&line_with_deviant()).unwrap();
        assert!(cof.decision_function(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn deterministic() {
        let x = line_with_deviant();
        let mut a = CofDetector::new(4).unwrap();
        let mut b = CofDetector::new(4).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
    }
}
