//! Criterion micro-benchmarks: the composed SUOD pipeline.
//!
//! Fit and predict of a small heterogeneous pool with modules off vs on —
//! the end-to-end cost picture the full-system evaluation (Table 4)
//! expands on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suod::prelude::*;
use suod_datasets::synthetic::{generate, SyntheticConfig};

fn dataset() -> Matrix {
    generate(&SyntheticConfig {
        n_samples: 400,
        n_features: 30,
        contamination: 0.1,
        seed: 13,
        ..Default::default()
    })
    .expect("valid config")
    .x
}

fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 10,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 30,
            max_features: 0.8,
        },
    ]
}

fn build(full: bool) -> Suod {
    Suod::builder()
        .base_estimators(pool())
        .with_projection(full)
        .with_approximation(full)
        .with_bps(full)
        .seed(1)
        .build()
        .expect("valid config")
}

fn bench_pipeline(c: &mut Criterion) {
    let x = dataset();
    let mut group = c.benchmark_group("suod_pipeline_400x30_m4");
    group.sample_size(10);

    group.bench_function("fit_baseline", |b| {
        b.iter(|| {
            let mut clf = build(false);
            clf.fit(black_box(&x)).expect("fit");
        })
    });
    group.bench_function("fit_all_modules", |b| {
        b.iter(|| {
            let mut clf = build(true);
            clf.fit(black_box(&x)).expect("fit");
        })
    });

    let mut baseline = build(false);
    baseline.fit(&x).expect("fit");
    let mut full = build(true);
    full.fit(&x).expect("fit");
    group.bench_function("predict_baseline", |b| {
        b.iter(|| baseline.decision_function(black_box(&x)).expect("score"))
    });
    group.bench_function("predict_all_modules", |b| {
        b.iter(|| full.decision_function(black_box(&x)).expect("score"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
