//! Model specifications: algorithm + hyperparameters.
//!
//! A [`ModelSpec`] is the unit of heterogeneity in SUOD — the paper refers
//! to "the combination of an algorithm and its corresponding
//! hyperparameters as a model". Specs are cheap, copyable descriptions;
//! [`ModelSpec::build`] instantiates the actual detector. The spec also
//! carries the SUOD policy knowledge about its family:
//!
//! * [`ModelSpec::is_costly`] — membership in the costly pool `M_c`
//!   (§3.4): proximity/kernel methods are approximated at prediction
//!   time, cheap subspace methods (HBOS, iForest) are not;
//! * [`ModelSpec::projection_friendly`] — whether random projection is
//!   sensible (§3.3 warns it can hurt subspace methods);
//! * [`ModelSpec::family`]/[`ModelSpec::knob`] — the embedding the BPS
//!   cost predictor consumes (§3.5).

use suod_detectors::{
    AbodDetector, CblofDetector, ChaosDetector, ChaosMode, CofDetector, Detector, FeatureBagging,
    HbosDetector, IsolationForest, Kernel, KnnDetector, KnnMethod, LodaDetector, LofDetector,
    LoopDetector, OcsvmDetector, PcaDetector,
};
use suod_linalg::DistanceMetric;
use suod_scheduler::{AlgorithmFamily, TaskDescriptor};

use crate::Result;

/// An algorithm family plus hyperparameters (one heterogeneous pool
/// member). Mirrors the paper's Table B.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// kNN distance detector (Ramaswamy et al. 2000).
    Knn {
        /// Neighbourhood size.
        n_neighbors: usize,
        /// Distance aggregation (`Mean` = average kNN).
        method: KnnMethod,
    },
    /// Local Outlier Factor (Breunig et al. 2000).
    Lof {
        /// Neighbourhood size.
        n_neighbors: usize,
        /// Distance metric.
        metric: DistanceMetric,
    },
    /// Fast Angle-Based Outlier Detection (Kriegel et al. 2008).
    Abod {
        /// Neighbourhood size for the angle cone.
        n_neighbors: usize,
    },
    /// Histogram-Based Outlier Score (Goldstein & Dengel 2012).
    Hbos {
        /// Bins per feature histogram.
        n_bins: usize,
        /// Out-of-range tolerance in `[0, 1]`.
        tolerance: f64,
    },
    /// Isolation Forest (Liu et al. 2008).
    IForest {
        /// Number of isolation trees.
        n_estimators: usize,
        /// Fraction of features per tree, in `(0, 1]`.
        max_features: f64,
    },
    /// Clustering-Based LOF (He et al. 2003).
    Cblof {
        /// Number of k-means clusters.
        n_clusters: usize,
    },
    /// One-Class SVM (Schölkopf et al. 2001).
    Ocsvm {
        /// Margin parameter in `(0, 1)`.
        nu: f64,
        /// Kernel function.
        kernel: Kernel,
    },
    /// Feature Bagging over LOF (Lazarevic & Kumar 2005).
    FeatureBagging {
        /// Number of bagged LOF members.
        n_estimators: usize,
    },
    /// Local Outlier Probabilities (Kriegel et al. 2009).
    Loop {
        /// Neighbourhood size.
        n_neighbors: usize,
    },
    /// PCA-based anomaly detection (Shyu et al. 2003).
    Pca {
        /// Share of variance assigned to the ignored major subspace.
        variance_retained: f64,
    },
    /// LODA: sparse random projections + 1-D histograms (Pevny 2016).
    Loda {
        /// Ensemble size (number of random projections).
        n_members: usize,
        /// Histogram bins per member.
        n_bins: usize,
    },
    /// Connectivity-based Outlier Factor (Tang et al. 2002).
    Cof {
        /// Neighbourhood size.
        n_neighbors: usize,
    },
    /// Fault-injection wrapper around a kNN detector, for chaos-testing
    /// the quarantine/retry machinery (see [`suod_detectors::chaos`]).
    Chaos {
        /// What to inject; [`ChaosMode::Passthrough`] behaves exactly
        /// like the wrapped kNN.
        mode: ChaosMode,
        /// Neighbourhood size of the wrapped kNN detector.
        n_neighbors: usize,
    },
}

impl ModelSpec {
    /// Instantiates the detector. Randomized families receive `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the detector's hyperparameter validation.
    pub fn build(&self, seed: u64) -> Result<Box<dyn Detector>> {
        Ok(match *self {
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => Box::new(KnnDetector::new(n_neighbors, method)?),
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => Box::new(LofDetector::new(n_neighbors)?.with_metric(metric)),
            ModelSpec::Abod { n_neighbors } => Box::new(AbodDetector::new(n_neighbors)?),
            ModelSpec::Hbos { n_bins, tolerance } => {
                Box::new(HbosDetector::new(n_bins, tolerance)?)
            }
            ModelSpec::IForest {
                n_estimators,
                max_features,
            } => Box::new(
                IsolationForest::new(n_estimators, seed)?
                    .with_max_features_fraction(max_features)?,
            ),
            ModelSpec::Cblof { n_clusters } => Box::new(CblofDetector::new(n_clusters, seed)?),
            ModelSpec::Ocsvm { nu, kernel } => Box::new(OcsvmDetector::new(nu, kernel)?),
            ModelSpec::FeatureBagging { n_estimators } => {
                Box::new(FeatureBagging::new(n_estimators, 10, seed)?)
            }
            ModelSpec::Loop { n_neighbors } => Box::new(LoopDetector::new(n_neighbors)?),
            ModelSpec::Pca { variance_retained } => Box::new(PcaDetector::new(variance_retained)?),
            ModelSpec::Loda { n_members, n_bins } => {
                Box::new(LodaDetector::new(n_members, n_bins, seed)?)
            }
            ModelSpec::Cof { n_neighbors } => Box::new(CofDetector::new(n_neighbors)?),
            ModelSpec::Chaos { mode, n_neighbors } => Box::new(ChaosDetector::from_mode(
                Box::new(KnnDetector::new(n_neighbors, KnnMethod::Largest)?),
                mode,
                seed,
            )),
        })
    }

    /// The scheduler family this spec belongs to.
    pub fn family(&self) -> AlgorithmFamily {
        match self {
            ModelSpec::Knn { .. } => AlgorithmFamily::Knn,
            ModelSpec::Lof { .. } => AlgorithmFamily::Lof,
            ModelSpec::Abod { .. } => AlgorithmFamily::Abod,
            ModelSpec::Hbos { .. } => AlgorithmFamily::Hbos,
            ModelSpec::IForest { .. } => AlgorithmFamily::IForest,
            ModelSpec::Cblof { .. } => AlgorithmFamily::Cblof,
            ModelSpec::Ocsvm { .. } => AlgorithmFamily::Ocsvm,
            ModelSpec::FeatureBagging { .. } => AlgorithmFamily::FeatureBagging,
            ModelSpec::Loop { .. } => AlgorithmFamily::Loop,
            ModelSpec::Pca { .. } => AlgorithmFamily::Pca,
            ModelSpec::Loda { .. } => AlgorithmFamily::Loda,
            // COF shares LOF's asymptotic cost profile (kNN queries +
            // per-neighbourhood work); the cost model treats it as Lof
            // with a chaining-overhead weight.
            ModelSpec::Cof { .. } => AlgorithmFamily::Lof,
            // The wrapped detector is a kNN; injected faults don't change
            // the forecastable cost profile.
            ModelSpec::Chaos { .. } => AlgorithmFamily::Knn,
        }
    }

    /// The family-specific complexity knob for the cost predictor.
    pub fn knob(&self) -> f64 {
        match *self {
            ModelSpec::Knn { n_neighbors, .. }
            | ModelSpec::Lof { n_neighbors, .. }
            | ModelSpec::Abod { n_neighbors }
            | ModelSpec::Loop { n_neighbors } => n_neighbors as f64,
            ModelSpec::Hbos { n_bins, .. } => n_bins as f64,
            ModelSpec::IForest { n_estimators, .. }
            | ModelSpec::FeatureBagging { n_estimators } => n_estimators as f64,
            ModelSpec::Cblof { n_clusters } => n_clusters as f64,
            // SMO warm-start dominates OCSVM and costs O(nu n^2 d).
            ModelSpec::Ocsvm { nu, .. } => 10.0 * nu,
            ModelSpec::Pca { .. } => 1.0,
            ModelSpec::Loda { n_members, .. } => n_members as f64,
            ModelSpec::Cof { n_neighbors } | ModelSpec::Chaos { n_neighbors, .. } => {
                n_neighbors as f64
            }
        }
    }

    /// The scheduler task descriptor (family + knob + intra-family cost
    /// weight). Weights are calibrated against this repository's
    /// implementations: Minkowski distances cost several Euclidean
    /// evaluations (`powf` per element), and OCSVM kernels differ in
    /// per-evaluation cost.
    pub fn task_descriptor(&self) -> TaskDescriptor {
        let weight = match self {
            ModelSpec::Lof {
                metric: DistanceMetric::Minkowski(_),
                ..
            } => 7.0,
            ModelSpec::Ocsvm { kernel, .. } => match kernel {
                suod_detectors::Kernel::Linear => 0.7,
                suod_detectors::Kernel::Rbf { .. } => 1.0,
                suod_detectors::Kernel::Poly { .. } => 1.7,
                suod_detectors::Kernel::Sigmoid { .. } => 2.5,
            },
            // The SBN chaining adds O(k^2) per-point work over LOF.
            ModelSpec::Cof { .. } => 2.0,
            _ => 1.0,
        };
        TaskDescriptor::new(self.family(), self.knob()).with_weight(weight)
    }

    /// The leave-one-out neighbourhood this spec's fit consumes, as
    /// `(metric, k)`, or `None` for non-proximity families.
    ///
    /// This is what `Suod::fit` pre-registers with the shared
    /// [`NeighborCache`](suod_linalg::NeighborCache) (pass 1 of the
    /// two-pass plan): every proximity model on the same feature space
    /// contributes its `k`, the cache builds once at the pooled maximum,
    /// and each fit then reads an exact prefix. The metric must match the
    /// one the detector's `fit_with_context` actually queries with —
    /// kNN/LOF carry a configurable metric, ABOD/LoOP/COF are
    /// Euclidean-only by construction.
    pub fn neighbor_requirement(&self) -> Option<(DistanceMetric, usize)> {
        match *self {
            // KnnDetector queries at raw `k` (the index clamps
            // internally); the cache applies the same `min(k, n - 1)`
            // clamp, so registering raw k is exact.
            ModelSpec::Knn { n_neighbors, .. } => Some((DistanceMetric::Euclidean, n_neighbors)),
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => Some((metric, n_neighbors)),
            ModelSpec::Abod { n_neighbors }
            | ModelSpec::Loop { n_neighbors }
            | ModelSpec::Cof { n_neighbors }
            | ModelSpec::Chaos { n_neighbors, .. } => {
                Some((DistanceMetric::Euclidean, n_neighbors))
            }
            _ => None,
        }
    }

    /// Whether this spec belongs to the costly pool `M_c` that PSA
    /// replaces at prediction time (§3.4): everything except the cheap
    /// subspace methods HBOS and Isolation Forest. Chaos wrappers are
    /// never approximated — a regressor distilled over injected faults
    /// would mask the very behaviour the wrapper exists to exercise.
    pub fn is_costly(&self) -> bool {
        !matches!(
            self,
            ModelSpec::Hbos { .. }
                | ModelSpec::IForest { .. }
                | ModelSpec::Pca { .. }
                | ModelSpec::Loda { .. }
                | ModelSpec::Chaos { .. }
        )
    }

    /// Whether random projection is applied to this spec when the RP
    /// module is on. §3.3: "projection may be less useful or even
    /// detrimental for subspace methods like Isolation Forest and HBOS."
    /// Chaos wrappers also stay in the original space so injected faults
    /// are observed raw.
    pub fn projection_friendly(&self) -> bool {
        !matches!(
            self,
            ModelSpec::Hbos { .. }
                | ModelSpec::IForest { .. }
                | ModelSpec::Pca { .. }
                | ModelSpec::Loda { .. }
                | ModelSpec::Chaos { .. }
        )
    }

    /// Short algorithm name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::Knn {
                method: KnnMethod::Mean,
                ..
            } => "aknn",
            ModelSpec::Knn { .. } => "knn",
            ModelSpec::Lof { .. } => "lof",
            ModelSpec::Abod { .. } => "abod",
            ModelSpec::Hbos { .. } => "hbos",
            ModelSpec::IForest { .. } => "iforest",
            ModelSpec::Cblof { .. } => "cblof",
            ModelSpec::Ocsvm { .. } => "ocsvm",
            ModelSpec::FeatureBagging { .. } => "feature_bagging",
            ModelSpec::Loop { .. } => "loop",
            ModelSpec::Pca { .. } => "pca",
            ModelSpec::Loda { .. } => "loda",
            ModelSpec::Cof { .. } => "cof",
            ModelSpec::Chaos { .. } => "chaos",
        }
    }

    /// Appends the spec to a `suod-pool/1` snapshot body as a fixed tag
    /// (enum-declaration order) followed by the variant's fields.
    pub fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) {
        match *self {
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => {
                w.write_u64(0);
                w.write_usize(n_neighbors);
                write_knn_method(method, w);
            }
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => {
                w.write_u64(1);
                w.write_usize(n_neighbors);
                w.write_metric(metric);
            }
            ModelSpec::Abod { n_neighbors } => {
                w.write_u64(2);
                w.write_usize(n_neighbors);
            }
            ModelSpec::Hbos { n_bins, tolerance } => {
                w.write_u64(3);
                w.write_usize(n_bins);
                w.write_f64(tolerance);
            }
            ModelSpec::IForest {
                n_estimators,
                max_features,
            } => {
                w.write_u64(4);
                w.write_usize(n_estimators);
                w.write_f64(max_features);
            }
            ModelSpec::Cblof { n_clusters } => {
                w.write_u64(5);
                w.write_usize(n_clusters);
            }
            ModelSpec::Ocsvm { nu, kernel } => {
                w.write_u64(6);
                w.write_f64(nu);
                write_kernel(kernel, w);
            }
            ModelSpec::FeatureBagging { n_estimators } => {
                w.write_u64(7);
                w.write_usize(n_estimators);
            }
            ModelSpec::Loop { n_neighbors } => {
                w.write_u64(8);
                w.write_usize(n_neighbors);
            }
            ModelSpec::Pca { variance_retained } => {
                w.write_u64(9);
                w.write_f64(variance_retained);
            }
            ModelSpec::Loda { n_members, n_bins } => {
                w.write_u64(10);
                w.write_usize(n_members);
                w.write_usize(n_bins);
            }
            ModelSpec::Cof { n_neighbors } => {
                w.write_u64(11);
                w.write_usize(n_neighbors);
            }
            ModelSpec::Chaos { mode, n_neighbors } => {
                w.write_u64(12);
                write_chaos_mode(mode, w);
                w.write_usize(n_neighbors);
            }
        }
    }

    /// Reads a spec written by [`ModelSpec::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`](crate::Error::Linalg) on truncated input
    /// or an unknown variant tag.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        Ok(match r.read_u64()? {
            0 => ModelSpec::Knn {
                n_neighbors: r.read_usize()?,
                method: read_knn_method(r)?,
            },
            1 => ModelSpec::Lof {
                n_neighbors: r.read_usize()?,
                metric: r.read_metric()?,
            },
            2 => ModelSpec::Abod {
                n_neighbors: r.read_usize()?,
            },
            3 => ModelSpec::Hbos {
                n_bins: r.read_usize()?,
                tolerance: r.read_f64()?,
            },
            4 => ModelSpec::IForest {
                n_estimators: r.read_usize()?,
                max_features: r.read_f64()?,
            },
            5 => ModelSpec::Cblof {
                n_clusters: r.read_usize()?,
            },
            6 => ModelSpec::Ocsvm {
                nu: r.read_f64()?,
                kernel: read_kernel(r)?,
            },
            7 => ModelSpec::FeatureBagging {
                n_estimators: r.read_usize()?,
            },
            8 => ModelSpec::Loop {
                n_neighbors: r.read_usize()?,
            },
            9 => ModelSpec::Pca {
                variance_retained: r.read_f64()?,
            },
            10 => ModelSpec::Loda {
                n_members: r.read_usize()?,
                n_bins: r.read_usize()?,
            },
            11 => ModelSpec::Cof {
                n_neighbors: r.read_usize()?,
            },
            12 => ModelSpec::Chaos {
                mode: read_chaos_mode(r)?,
                n_neighbors: r.read_usize()?,
            },
            other => return Err(spec_corrupt(format!("unknown ModelSpec tag {other}"))),
        })
    }
}

fn spec_corrupt(what: String) -> crate::Error {
    crate::Error::Linalg(suod_linalg::Error::InvalidParameter(format!(
        "snapshot: {what}"
    )))
}

fn write_knn_method(m: KnnMethod, w: &mut suod_linalg::SnapshotWriter) {
    w.write_u64(match m {
        KnnMethod::Largest => 0,
        KnnMethod::Mean => 1,
        KnnMethod::Median => 2,
    });
}

fn read_knn_method(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<KnnMethod> {
    Ok(match r.read_u64()? {
        0 => KnnMethod::Largest,
        1 => KnnMethod::Mean,
        2 => KnnMethod::Median,
        other => return Err(spec_corrupt(format!("unknown KnnMethod tag {other}"))),
    })
}

fn write_kernel(k: Kernel, w: &mut suod_linalg::SnapshotWriter) {
    match k {
        Kernel::Linear => w.write_u64(0),
        Kernel::Poly {
            gamma,
            coef0,
            degree,
        } => {
            w.write_u64(1);
            w.write_f64(gamma);
            w.write_f64(coef0);
            w.write_u64(u64::from(degree));
        }
        Kernel::Rbf { gamma } => {
            w.write_u64(2);
            w.write_f64(gamma);
        }
        Kernel::Sigmoid { gamma, coef0 } => {
            w.write_u64(3);
            w.write_f64(gamma);
            w.write_f64(coef0);
        }
    }
}

fn read_kernel(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Kernel> {
    Ok(match r.read_u64()? {
        0 => Kernel::Linear,
        1 => Kernel::Poly {
            gamma: r.read_f64()?,
            coef0: r.read_f64()?,
            degree: u32::try_from(r.read_u64()?)
                .map_err(|_| spec_corrupt("Poly degree exceeds u32".into()))?,
        },
        2 => Kernel::Rbf {
            gamma: r.read_f64()?,
        },
        3 => Kernel::Sigmoid {
            gamma: r.read_f64()?,
            coef0: r.read_f64()?,
        },
        other => return Err(spec_corrupt(format!("unknown Kernel tag {other}"))),
    })
}

fn write_chaos_mode(m: ChaosMode, w: &mut suod_linalg::SnapshotWriter) {
    match m {
        ChaosMode::Passthrough => w.write_u64(0),
        ChaosMode::PanicOnFit => w.write_u64(1),
        ChaosMode::FlakyPanic => w.write_u64(2),
        ChaosMode::NanScores => w.write_u64(3),
        ChaosMode::SlowFit(ms) => {
            w.write_u64(4);
            w.write_u64(ms);
        }
        ChaosMode::PanicOnPredict => w.write_u64(5),
        ChaosMode::SlowPredict(ms) => {
            w.write_u64(6);
            w.write_u64(ms);
        }
        ChaosMode::NanOnPredict => w.write_u64(7),
        // ChaosMode is #[non_exhaustive]; new variants must get a tag
        // here before they can appear in snapshots.
        other => unreachable!("ChaosMode variant {other:?} has no snapshot tag"),
    }
}

fn read_chaos_mode(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<ChaosMode> {
    Ok(match r.read_u64()? {
        0 => ChaosMode::Passthrough,
        1 => ChaosMode::PanicOnFit,
        2 => ChaosMode::FlakyPanic,
        3 => ChaosMode::NanScores,
        4 => ChaosMode::SlowFit(r.read_u64()?),
        5 => ChaosMode::PanicOnPredict,
        6 => ChaosMode::SlowPredict(r.read_u64()?),
        7 => ChaosMode::NanOnPredict,
        other => return Err(spec_corrupt(format!("unknown ChaosMode tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_linalg::Matrix;

    fn sample_specs() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Knn {
                n_neighbors: 3,
                method: KnnMethod::Largest,
            },
            ModelSpec::Knn {
                n_neighbors: 3,
                method: KnnMethod::Mean,
            },
            ModelSpec::Lof {
                n_neighbors: 4,
                metric: DistanceMetric::Euclidean,
            },
            ModelSpec::Abod { n_neighbors: 4 },
            ModelSpec::Hbos {
                n_bins: 5,
                tolerance: 0.2,
            },
            ModelSpec::IForest {
                n_estimators: 10,
                max_features: 0.8,
            },
            ModelSpec::Cblof { n_clusters: 2 },
            ModelSpec::Ocsvm {
                nu: 0.3,
                kernel: Kernel::Rbf { gamma: 0.0 },
            },
            ModelSpec::FeatureBagging { n_estimators: 3 },
            ModelSpec::Loop { n_neighbors: 4 },
            ModelSpec::Pca {
                variance_retained: 0.8,
            },
            ModelSpec::Loda {
                n_members: 20,
                n_bins: 8,
            },
            ModelSpec::Cof { n_neighbors: 4 },
        ]
    }

    #[test]
    fn every_spec_builds_and_fits() {
        let mut rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64 * 0.3, (i / 6) as f64 * 0.3])
            .collect();
        rows.push(vec![9.0, 9.0]);
        let x = Matrix::from_rows(&rows).unwrap();
        for spec in sample_specs() {
            let mut det = spec.build(1).unwrap();
            det.fit(&x).unwrap();
            assert!(det.is_fitted(), "{}", spec.name());
            let s = det.training_scores().unwrap();
            assert_eq!(s.len(), 31, "{}", spec.name());
        }
    }

    #[test]
    fn costly_pool_matches_paper() {
        for spec in sample_specs() {
            let expected = !matches!(
                spec,
                ModelSpec::Hbos { .. }
                    | ModelSpec::IForest { .. }
                    | ModelSpec::Pca { .. }
                    | ModelSpec::Loda { .. }
            );
            assert_eq!(spec.is_costly(), expected, "{}", spec.name());
            assert_eq!(spec.projection_friendly(), expected, "{}", spec.name());
        }
    }

    #[test]
    fn family_and_knob_mapping() {
        let spec = ModelSpec::Abod { n_neighbors: 25 };
        assert_eq!(spec.family(), AlgorithmFamily::Abod);
        assert_eq!(spec.knob(), 25.0);
        let td = spec.task_descriptor();
        assert_eq!(td.family, AlgorithmFamily::Abod);
        assert_eq!(td.knob, 25.0);
        // OCSVM knob grows with nu (the SMO warm start is O(nu n^2 d)).
        let low_nu = ModelSpec::Ocsvm {
            nu: 0.1,
            kernel: Kernel::Linear,
        };
        let high_nu = ModelSpec::Ocsvm {
            nu: 0.9,
            kernel: Kernel::Linear,
        };
        assert!(high_nu.knob() > low_nu.knob());
        // Minkowski LOF carries a metric cost weight.
        let mink = ModelSpec::Lof {
            n_neighbors: 10,
            metric: DistanceMetric::Minkowski(3.0),
        };
        assert!(mink.task_descriptor().weight > 1.0);
        let sig = ModelSpec::Ocsvm {
            nu: 0.5,
            kernel: Kernel::Sigmoid {
                gamma: 0.0,
                coef0: 0.0,
            },
        };
        assert!(sig.task_descriptor().weight > 1.0);
    }

    #[test]
    fn invalid_hyperparameters_propagate() {
        assert!(ModelSpec::Knn {
            n_neighbors: 0,
            method: KnnMethod::Largest
        }
        .build(0)
        .is_err());
        assert!(ModelSpec::IForest {
            n_estimators: 10,
            max_features: 2.0
        }
        .build(0)
        .is_err());
        assert!(ModelSpec::Ocsvm {
            nu: 0.0,
            kernel: Kernel::Linear
        }
        .build(0)
        .is_err());
    }

    #[test]
    fn aknn_named_distinctly() {
        assert_eq!(
            ModelSpec::Knn {
                n_neighbors: 5,
                method: KnnMethod::Mean
            }
            .name(),
            "aknn"
        );
    }
}
