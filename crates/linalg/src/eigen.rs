//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by the PCA projection baseline (§2.2 / Table 1 of the paper), which
//! needs the leading eigenvectors of a `d x d` covariance matrix. The
//! datasets in the paper have `d <= 400`, well within Jacobi's comfort zone,
//! and Jacobi is simple, numerically robust, and produces orthonormal
//! eigenvectors without external dependencies.

use crate::{Error, Matrix, Result};

/// Result of [`symmetric_eigen`]: eigenvalues sorted descending with the
/// matching eigenvectors as matrix columns.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// The input is not checked for exact symmetry; the routine reads only one
/// triangle's worth of information per sweep, so mild asymmetry from
/// floating-point accumulation is tolerated.
///
/// # Errors
///
/// * [`Error::ShapeMismatch`] when `a` is not square.
/// * [`Error::Empty`] when `a` has zero size.
/// * [`Error::NoConvergence`] if the off-diagonal mass fails to vanish in
///   100 sweeps (does not occur for well-scaled covariance matrices).
///
/// # Example
///
/// ```
/// use suod_linalg::{symmetric_eigen, Matrix};
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0])?;
/// let eig = symmetric_eigen(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<EigenDecomposition> {
    let n = a.nrows();
    if n == 0 {
        return Err(Error::Empty("symmetric_eigen"));
    }
    if a.ncols() != n {
        return Err(Error::ShapeMismatch {
            op: "symmetric_eigen",
            lhs: a.shape(),
            rhs: (n, n),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off < 1e-12 {
            return Ok(sorted_decomposition(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                rotate(&mut m, &mut v, p, q);
            }
        }
    }
    if off_diagonal_norm(&m) < 1e-8 {
        return Ok(sorted_decomposition(m, v));
    }
    Err(Error::NoConvergence("Jacobi eigensolver"))
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for p in 0..n {
        for q in (p + 1)..n {
            s += m.get(p, q) * m.get(p, q);
        }
    }
    s.sqrt()
}

/// One Jacobi rotation zeroing the (p, q) element.
fn rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m.get(p, q);
    if apq.abs() < 1e-300 {
        return;
    }
    let app = m.get(p, p);
    let aqq = m.get(q, q);
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent computation (Golub & Van Loan, Algorithm 8.4.1).
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.nrows();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

fn sorted_decomposition(m: Matrix, v: Matrix) -> EigenDecomposition {
    let n = m.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_vec(3, 3, vec![3., 0., 0., 0., 1., 0., 0., 0., 2.]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 2.0, 1e-12);
        assert_close(e.values[2], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_vec(2, 2, vec![2., 1., 1., 2.]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10);
        assert_close(v0[0], v0[1], 1e-10);
    }

    #[test]
    fn reconstruction() {
        // A = V diag(w) V^T must reproduce the input.
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d.set(i, i, e.values[i]);
        }
        let rec = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(rec.get(i, j), a.get(i, j), 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv.get(i, j), expect, 1e-9);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            symmetric_eigen(&Matrix::zeros(0, 0)).unwrap_err(),
            Error::Empty(_)
        ));
    }
}
