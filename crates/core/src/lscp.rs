//! LSCP: Locally Selective Combination in Parallel outlier ensembles
//! (Zhao et al., SDM 2019) — the unsupervised downstream combiner the
//! paper names as future work for the end-to-end SUOD pipeline (§5).
//!
//! Instead of averaging every base model everywhere, LSCP evaluates each
//! model's **local competence** around a test point: the local region is
//! the test point's k nearest training samples, the local pseudo ground
//! truth is the average of the base models' training scores on that
//! region, and a model's competence is its Pearson correlation with the
//! pseudo truth across the region. The test point is then scored by the
//! most competent model (`LscpVariant::A`) or by the average of the top
//! `s` most competent models (`LscpVariant::Moa`).

use crate::{Error, Result};
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// Which LSCP selection rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LscpVariant {
    /// Use the single most locally competent detector.
    A,
    /// Average the top-`s` most competent detectors.
    Moa {
        /// Number of detectors averaged.
        s: usize,
    },
}

/// Configuration for [`lscp_scores`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LscpConfig {
    /// Local region size (nearest training neighbours per test point).
    pub region_size: usize,
    /// Selection rule.
    pub variant: LscpVariant,
}

impl Default for LscpConfig {
    fn default() -> Self {
        Self {
            region_size: 30,
            variant: LscpVariant::Moa { s: 3 },
        }
    }
}

/// Locally selective combination of base-model scores.
///
/// * `x_train` — training features (defines local regions);
/// * `train_scores` — `n_train x m` per-model training scores (z-score
///   standardized internally);
/// * `x_test` — test features;
/// * `test_scores` — `n_test x m` per-model test scores.
///
/// Returns one combined score per test row.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on shape mismatches, an empty model
/// set, or `region_size == 0`.
///
/// # Example
///
/// ```
/// use suod::lscp::{lscp_scores, LscpConfig};
/// use suod_linalg::Matrix;
///
/// let x_train = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
/// // Model 0 scores the region correctly, model 1 is anti-correlated.
/// let train_scores = Matrix::from_rows(&[
///     vec![0.1, 0.9], vec![0.2, 0.7], vec![0.3, 0.5], vec![0.4, 0.3],
/// ]).unwrap();
/// let x_test = Matrix::from_rows(&[vec![1.5]]).unwrap();
/// let test_scores = Matrix::from_rows(&[vec![0.25, 0.6]]).unwrap();
/// let combined = lscp_scores(
///     &x_train, &train_scores, &x_test, &test_scores,
///     &LscpConfig { region_size: 4, variant: suod::lscp::LscpVariant::A },
/// ).unwrap();
/// assert_eq!(combined.len(), 1);
/// ```
pub fn lscp_scores(
    x_train: &Matrix,
    train_scores: &Matrix,
    x_test: &Matrix,
    test_scores: &Matrix,
    config: &LscpConfig,
) -> Result<Vec<f64>> {
    let n_train = x_train.nrows();
    let m = train_scores.ncols();
    if m == 0 {
        return Err(Error::InvalidConfig("LSCP needs at least one model".into()));
    }
    if train_scores.nrows() != n_train {
        return Err(Error::InvalidConfig(format!(
            "train_scores has {} rows for {} training samples",
            train_scores.nrows(),
            n_train
        )));
    }
    if test_scores.nrows() != x_test.nrows() || test_scores.ncols() != m {
        return Err(Error::InvalidConfig(format!(
            "test_scores is {}x{}, expected {}x{m}",
            test_scores.nrows(),
            test_scores.ncols(),
            x_test.nrows()
        )));
    }
    if config.region_size == 0 {
        return Err(Error::InvalidConfig("region_size must be >= 1".into()));
    }
    if let LscpVariant::Moa { s } = config.variant {
        if s == 0 {
            return Err(Error::InvalidConfig("Moa requires s >= 1".into()));
        }
    }

    // Standardize each model's scores using the TRAINING distribution
    // (LSCP's Z-normalization); test batches must not be normalized
    // against themselves or constant test columns would collapse to 0.
    let mut z_train = train_scores.clone();
    let mut z_test = test_scores.clone();
    for c in 0..m {
        let col = train_scores.col(c);
        let mean = suod_linalg::stats::mean(&col);
        let std = suod_linalg::stats::std_dev(&col).max(1e-12);
        for r in 0..n_train {
            z_train.set(r, c, (train_scores.get(r, c) - mean) / std);
        }
        for r in 0..test_scores.nrows() {
            z_test.set(r, c, (test_scores.get(r, c) - mean) / std);
        }
    }

    let index = KnnIndex::build(x_train, DistanceMetric::Euclidean)
        .map_err(|e| Error::InvalidConfig(e.to_string()))?;
    let k = config.region_size.min(n_train);

    let mut out = Vec::with_capacity(x_test.nrows());
    for t in 0..x_test.nrows() {
        let region: Vec<usize> = index
            .query(x_test.row(t), k)
            .into_iter()
            .map(|n| n.index)
            .collect();

        // Local pseudo ground truth: per-region-sample mean across models.
        let pseudo: Vec<f64> = region
            .iter()
            .map(|&i| (0..m).map(|c| z_train.get(i, c)).sum::<f64>() / m as f64)
            .collect();

        // Competence per model: Pearson correlation to the pseudo truth.
        let mut competences: Vec<(usize, f64)> = (0..m)
            .map(|c| {
                let local: Vec<f64> = region.iter().map(|&i| z_train.get(i, c)).collect();
                let r = pearson_or_zero(&local, &pseudo);
                (c, r)
            })
            .collect();
        competences.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite competence"));

        let score = match config.variant {
            LscpVariant::A => z_test.get(t, competences[0].0),
            LscpVariant::Moa { s } => {
                let s = s.min(m);
                competences[..s]
                    .iter()
                    .map(|&(c, _)| z_test.get(t, c))
                    .sum::<f64>()
                    / s as f64
            }
        };
        out.push(score);
    }
    Ok(out)
}

/// Pearson correlation, or 0 when undefined (constant inputs).
fn pearson_or_zero(a: &[f64], b: &[f64]) -> f64 {
    suod_metrics::pearson(a, b).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two spatial regions; model 0 is competent on the left, model 1 on
    /// the right. The incompetent model is locally *uninformative*
    /// (wiggles uncorrelated with the consensus) rather than
    /// anti-correlated — two mirror-image models would cancel the
    /// consensus out entirely.
    fn competence_scenario() -> (Matrix, Matrix) {
        let mut rows = Vec::new();
        let mut scores = Vec::new();
        for i in 0..20 {
            let left = i < 10;
            let base = (i % 10) as f64 * 0.1;
            rows.push(vec![if left { base } else { 10.0 + base }]);
            let signal = base;
            // Noise uncorrelated with `base` over 0..10.
            let wiggle = 0.3 * ((i * 7 % 10) as f64 * 0.1 - 0.45);
            if left {
                scores.push(vec![signal, wiggle]);
            } else {
                scores.push(vec![wiggle, signal]);
            }
        }
        (
            Matrix::from_rows(&rows).unwrap(),
            Matrix::from_rows(&scores).unwrap(),
        )
    }

    #[test]
    fn selects_locally_competent_model() {
        let (x_train, train_scores) = competence_scenario();
        let x_test = Matrix::from_rows(&[vec![0.5], vec![10.5]]).unwrap();
        // Model 0 says "outlier" on both; model 1 says "inlier" on both.
        let test_scores = Matrix::from_rows(&[vec![3.0, -3.0], vec![3.0, -3.0]]).unwrap();
        let combined = lscp_scores(
            &x_train,
            &train_scores,
            &x_test,
            &test_scores,
            &LscpConfig {
                region_size: 8,
                variant: LscpVariant::A,
            },
        )
        .unwrap();
        // Left query trusts model 0 (high score); right trusts model 1
        // (low score).
        assert!(combined[0] > combined[1], "{combined:?}");
    }

    #[test]
    fn moa_averages_top_models() {
        let (x_train, train_scores) = competence_scenario();
        let x_test = Matrix::from_rows(&[vec![0.5]]).unwrap();
        let test_scores = Matrix::from_rows(&[vec![2.0, -2.0]]).unwrap();
        let top1 = lscp_scores(
            &x_train,
            &train_scores,
            &x_test,
            &test_scores,
            &LscpConfig {
                region_size: 8,
                variant: LscpVariant::A,
            },
        )
        .unwrap();
        let both = lscp_scores(
            &x_train,
            &train_scores,
            &x_test,
            &test_scores,
            &LscpConfig {
                region_size: 8,
                variant: LscpVariant::Moa { s: 2 },
            },
        )
        .unwrap();
        // Averaging in the incompetent model pulls the score toward zero.
        assert!(both[0].abs() < top1[0].abs());
    }

    #[test]
    fn single_model_passthrough_ranking() {
        let x_train = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let train_scores = Matrix::from_rows(&[vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let x_test = Matrix::from_rows(&[vec![0.5], vec![1.5]]).unwrap();
        let test_scores = Matrix::from_rows(&[vec![0.9], vec![0.1]]).unwrap();
        let combined = lscp_scores(
            &x_train,
            &train_scores,
            &x_test,
            &test_scores,
            &LscpConfig::default(),
        )
        .unwrap();
        assert!(combined[0] > combined[1]);
    }

    #[test]
    fn validates_shapes() {
        let x = Matrix::zeros(4, 1);
        let s4x2 = Matrix::zeros(4, 2);
        let bad_rows = Matrix::zeros(3, 2);
        let cfg = LscpConfig::default();
        assert!(lscp_scores(&x, &bad_rows, &x, &s4x2, &cfg).is_err());
        assert!(lscp_scores(&x, &s4x2, &x, &bad_rows, &cfg).is_err());
        assert!(lscp_scores(&x, &Matrix::zeros(4, 0), &x, &Matrix::zeros(4, 0), &cfg).is_err());
        assert!(lscp_scores(
            &x,
            &s4x2,
            &x,
            &s4x2,
            &LscpConfig {
                region_size: 0,
                variant: LscpVariant::A
            }
        )
        .is_err());
        assert!(lscp_scores(
            &x,
            &s4x2,
            &x,
            &s4x2,
            &LscpConfig {
                region_size: 2,
                variant: LscpVariant::Moa { s: 0 }
            }
        )
        .is_err());
    }

    #[test]
    fn region_size_clamped_to_train() {
        let x_train = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let train_scores = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let x_test = Matrix::from_rows(&[vec![0.5]]).unwrap();
        let test_scores = Matrix::from_rows(&[vec![0.7]]).unwrap();
        let combined = lscp_scores(
            &x_train,
            &train_scores,
            &x_test,
            &test_scores,
            &LscpConfig {
                region_size: 100,
                variant: LscpVariant::A,
            },
        )
        .unwrap();
        assert_eq!(combined.len(), 1);
    }
}
