//! Per-model health reporting for fault-tolerant ensemble fits.
//!
//! SUOD's premise is running hundreds of numerically fragile detectors
//! over real data; in production some of them *will* fail — an ABOD on
//! degenerate variance, an OCSVM that diverges, a model that outright
//! panics. Rather than failing the whole fit closed, `Suod::fit` retries
//! each failed model a bounded number of times and then **quarantines**
//! it: the model is excluded from the fitted ensemble (score
//! combination, pseudo-supervision, and prediction scheduling operate
//! over the survivors only) and its failure is recorded here.
//!
//! A [`ModelHealth`] is produced by every fit attempt — including fits
//! that ultimately fail because too few models survived — and is
//! retrievable via `Suod::model_health`.

use suod_detectors::Error as DetectorError;

/// Outcome of one pool member's fit after retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStatus {
    /// The model fitted successfully and participates in the ensemble.
    Healthy,
    /// The model failed every attempt and is excluded from the ensemble.
    Quarantined,
}

impl std::fmt::Display for ModelStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelStatus::Healthy => f.write_str("healthy"),
            ModelStatus::Quarantined => f.write_str("quarantined"),
        }
    }
}

/// Health record for one pool member.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Index of the model in the configured pool (stable across
    /// quarantines — survivors keep their original indices).
    pub index: usize,
    /// Short algorithm name (e.g. `"lof"`).
    pub name: &'static str,
    /// Whether the model survived.
    pub status: ModelStatus,
    /// The failure that caused quarantine. `None` for healthy models;
    /// for a model that failed and then recovered on retry, the *final*
    /// state is healthy and the cause is `None` (attempts > 1 records
    /// that it struggled).
    pub cause: Option<DetectorError>,
    /// Total fit attempts consumed (1 = succeeded first try).
    pub attempts: usize,
    /// Whether the model's measured fit time exceeded the soft deadline
    /// derived from the BPS cost forecast. Stragglers are *not*
    /// quarantined — slow is not wrong — but flagging them feeds the
    /// cost-model validation loop. Wall-clock-dependent: this flag is
    /// deliberately excluded from determinism guarantees.
    pub straggler: bool,
}

/// Health of an entire pool after one `Suod::fit`.
#[derive(Debug, Clone, Default)]
pub struct ModelHealth {
    reports: Vec<ModelReport>,
}

impl ModelHealth {
    /// Wraps per-model reports (indexed like the configured pool).
    pub fn new(reports: Vec<ModelReport>) -> Self {
        ModelHealth { reports }
    }

    /// Per-model records, indexed like the configured pool.
    pub fn reports(&self) -> &[ModelReport] {
        &self.reports
    }

    /// Number of pool members.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Number of healthy (surviving) models.
    pub fn healthy(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.status == ModelStatus::Healthy)
            .count()
    }

    /// Number of quarantined models.
    pub fn quarantined(&self) -> usize {
        self.len() - self.healthy()
    }

    /// `true` when at least one model was quarantined.
    pub fn is_degraded(&self) -> bool {
        self.quarantined() > 0
    }

    /// Original pool indices of the surviving models, ascending.
    pub fn healthy_indices(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| r.status == ModelStatus::Healthy)
            .map(|r| r.index)
            .collect()
    }

    /// Original pool indices of the quarantined models, ascending.
    pub fn quarantined_indices(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| r.status == ModelStatus::Quarantined)
            .map(|r| r.index)
            .collect()
    }

    /// Original pool indices flagged as stragglers, ascending.
    pub fn straggler_indices(&self) -> Vec<usize> {
        self.reports
            .iter()
            .filter(|r| r.straggler)
            .map(|r| r.index)
            .collect()
    }

    /// The record for pool index `i`, if it exists.
    pub fn report(&self, i: usize) -> Option<&ModelReport> {
        self.reports.get(i)
    }
}

impl std::fmt::Display for ModelHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "pool health: {}/{} healthy, {} quarantined",
            self.healthy(),
            self.len(),
            self.quarantined()
        )?;
        for r in &self.reports {
            write!(
                f,
                "  [{}] {} {} (attempts {})",
                r.index, r.name, r.status, r.attempts
            )?;
            if let Some(cause) = &r.cause {
                write!(f, ": {cause}")?;
            }
            if r.straggler {
                write!(f, " [straggler]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelHealth {
        ModelHealth::new(vec![
            ModelReport {
                index: 0,
                name: "knn",
                status: ModelStatus::Healthy,
                cause: None,
                attempts: 1,
                straggler: false,
            },
            ModelReport {
                index: 1,
                name: "chaos",
                status: ModelStatus::Quarantined,
                cause: Some(DetectorError::Panicked("boom".into())),
                attempts: 2,
                straggler: false,
            },
            ModelReport {
                index: 2,
                name: "lof",
                status: ModelStatus::Healthy,
                cause: None,
                attempts: 2,
                straggler: true,
            },
        ])
    }

    #[test]
    fn counts_and_indices() {
        let h = sample();
        assert_eq!(h.len(), 3);
        assert_eq!(h.healthy(), 2);
        assert_eq!(h.quarantined(), 1);
        assert!(h.is_degraded());
        assert_eq!(h.healthy_indices(), vec![0, 2]);
        assert_eq!(h.quarantined_indices(), vec![1]);
        assert_eq!(h.straggler_indices(), vec![2]);
        assert_eq!(h.report(1).unwrap().attempts, 2);
        assert!(h.report(3).is_none());
    }

    #[test]
    fn display_mentions_quarantine_cause() {
        let text = sample().to_string();
        assert!(text.contains("2/3 healthy"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("boom"));
        assert!(text.contains("[straggler]"));
    }

    #[test]
    fn empty_pool_not_degraded() {
        let h = ModelHealth::default();
        assert!(h.is_empty());
        assert!(!h.is_degraded());
    }
}
