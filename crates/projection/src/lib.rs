#![allow(clippy::needless_range_loop)] // indexed loops mirror the papers' pseudocode in numeric kernels
#![warn(missing_docs)]
//! Data-level projection module for the SUOD reproduction (paper §3.3).
//!
//! SUOD's first acceleration lever is dimensionality reduction: each base
//! detector trains in its own random low-dimensional subspace produced by
//! a Johnson–Lindenstrauss transform, which approximately preserves the
//! pairwise Euclidean distances proximity-based detectors depend on while
//! injecting per-model diversity. Table 1 of the paper compares the four
//! JL constructions against PCA and random feature selection; all seven
//! settings live here behind the [`Projector`] trait.
//!
//! # Example
//!
//! ```
//! use suod_linalg::Matrix;
//! use suod_projection::{JlProjector, JlVariant, Projector};
//!
//! # fn main() -> Result<(), suod_projection::Error> {
//! let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
//! let mut proj = JlProjector::new(JlVariant::Basic, 2, 42)?;
//! proj.fit(&x)?;
//! let z = proj.transform(&x)?;
//! assert_eq!(z.shape(), (2, 2));
//! # Ok(())
//! # }
//! ```

pub mod jl;
pub mod pca;
pub mod random_select;

pub use jl::{JlProjector, JlVariant};
pub use pca::PcaProjector;
pub use random_select::RandomSelectProjector;

use std::fmt;
use suod_linalg::{Matrix, SnapshotReader, SnapshotWriter};

/// Errors produced by projector fitting and application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
    /// `transform` called before `fit`.
    NotFitted(&'static str),
    /// Input width differs from the fitted dimensionality.
    DimensionMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Actual number of columns.
        actual: usize,
    },
    /// Propagated linear-algebra failure.
    Linalg(suod_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NotFitted(what) => write!(f, "{what} must be fitted before transform"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} columns, got {actual}")
            }
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A fitted dimensionality-reduction transform.
///
/// The projector is fitted on training data and **retained** so the same
/// transform applies to test data at prediction time (Algorithm 1 of the
/// paper keeps `W` per model).
pub trait Projector: Send + Sync {
    /// Learns the transform from training data (a no-op for data-independent
    /// JL projections beyond recording the input width).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the target dimension
    /// exceeds the input dimension, plus method-specific failures.
    fn fit(&mut self, x: &Matrix) -> Result<()>;

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::DimensionMismatch`] on width mismatch.
    fn transform(&self, x: &Matrix) -> Result<Matrix>;

    /// Output dimensionality after `fit`.
    fn output_dim(&self) -> usize;

    /// Short method name (e.g. `"circulant"`).
    fn name(&self) -> &'static str;

    /// Appends the projector's full state (parameters + fitted transform)
    /// to a `suod-pool/1` snapshot body.
    ///
    /// Implementations write every field in a fixed order so that
    /// save → load → save is byte-identical; the matching reader is the
    /// type's `snapshot_read` associated function, dispatched by
    /// [`read_projector`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the projector does not
    /// support snapshots.
    fn snapshot_write(&self, w: &mut SnapshotWriter) -> Result<()> {
        let _ = w;
        Err(Error::InvalidParameter(format!(
            "{} does not support snapshots",
            self.name()
        )))
    }
}

/// Writes `proj` as a dispatchable snapshot record: name string followed
/// by a length-prefixed state body (mirror of the detectors-crate record).
///
/// # Errors
///
/// Propagates the projector's [`Projector::snapshot_write`] failure.
pub fn write_projector(proj: &dyn Projector, w: &mut SnapshotWriter) -> Result<()> {
    w.write_str(proj.name());
    let mut body = SnapshotWriter::new();
    proj.snapshot_write(&mut body)?;
    w.write_bytes(body.as_bytes());
    Ok(())
}

/// Reads a projector record written by [`write_projector`], dispatching
/// on the stored name (JL projectors are named by their variant).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for unknown names, truncated
/// state, or trailing bytes left by a mismatched reader.
pub fn read_projector(r: &mut SnapshotReader<'_>) -> Result<Box<dyn Projector>> {
    let name = r.read_str()?;
    let body = r.read_bytes()?;
    let mut br = SnapshotReader::new(body);
    let proj: Box<dyn Projector> = match name.as_str() {
        "original" => Box::new(IdentityProjector::snapshot_read(&mut br)?),
        "basic" | "discrete" | "circulant" | "toeplitz" => {
            Box::new(JlProjector::snapshot_read(&mut br)?)
        }
        "pca" => Box::new(PcaProjector::snapshot_read(&mut br)?),
        "rs" => Box::new(RandomSelectProjector::snapshot_read(&mut br)?),
        other => {
            return Err(Error::InvalidParameter(format!(
                "snapshot: unknown projector name {other:?}"
            )))
        }
    };
    if !br.is_exhausted() {
        return Err(Error::InvalidParameter(format!(
            "snapshot: projector {name:?} left {} trailing bytes",
            br.remaining()
        )));
    }
    Ok(proj)
}

/// Identity projector: the paper's `original` baseline (no projection).
#[derive(Debug, Clone, Default)]
pub struct IdentityProjector {
    dim: usize,
    fitted: bool,
}

impl IdentityProjector {
    /// Creates an identity projector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Projector for IdentityProjector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.dim = x.ncols();
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(Error::NotFitted("IdentityProjector"));
        }
        if x.ncols() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: x.ncols(),
            });
        }
        Ok(x.clone())
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "original"
    }

    fn snapshot_write(&self, w: &mut SnapshotWriter) -> Result<()> {
        w.write_usize(self.dim);
        w.write_bool(self.fitted);
        Ok(())
    }
}

impl IdentityProjector {
    /// Reads a projector written by [`Projector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self> {
        Ok(Self {
            dim: r.read_usize()?,
            fitted: r.read_bool()?,
        })
    }
}

pub(crate) fn check_target_dim(k: usize, d: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::InvalidParameter(
            "target dimension must be >= 1".into(),
        ));
    }
    if k > d {
        return Err(Error::InvalidParameter(format!(
            "target dimension {k} exceeds input dimension {d}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut p = IdentityProjector::new();
        p.fit(&x).unwrap();
        assert_eq!(p.transform(&x).unwrap(), x);
        assert_eq!(p.output_dim(), 2);
        assert_eq!(p.name(), "original");
    }

    #[test]
    fn identity_checks_state_and_dims() {
        let p = IdentityProjector::new();
        assert!(p.transform(&Matrix::zeros(1, 2)).is_err());
        let mut p = IdentityProjector::new();
        p.fit(&Matrix::zeros(2, 3)).unwrap();
        assert!(p.transform(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn target_dim_validation() {
        assert!(check_target_dim(0, 5).is_err());
        assert!(check_target_dim(6, 5).is_err());
        assert!(check_target_dim(5, 5).is_ok());
    }
}
