//! Parallel-kernel and end-to-end timing report.
//!
//! Times the data-parallel kernels (`pairwise_distances`,
//! `matmul_blocked`, `KnnIndex::query_batch_parallel`), the
//! static-vs-stealing executor straggler workload, and the full SUOD
//! fit/predict pipeline at 1/2/4/8 threads, and writes the results to
//! `BENCH_parallel.json` in the working directory so the perf trajectory
//! is tracked across PRs.
//!
//! Every timing is the minimum of [`REPS`] runs (minimum, not mean — the
//! quantity of interest is achievable speed, not scheduler noise).
//! Speedups are only meaningful on hosts with enough physical cores; the
//! report records `host_cores` so downstream comparisons can condition on
//! it (see DESIGN.md §4 on the single-core CI host).
//!
//! Flags: `--quick` shrinks problem sizes for smoke runs.

use std::fmt::Write as _;
use std::time::Instant;
use suod::prelude::*;
use suod_bench::Scale;
use suod_linalg::{pairwise_distances_parallel, DistanceMetric, KnnIndex, Matrix};
use suod_scheduler::{bps_schedule, ThreadPoolExecutor, WorkStealingExecutor};

const THREADS: &[usize] = &[1, 2, 4, 8];
const REPS: usize = 3;

fn min_time(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.random_range(-2.0..2.0))
            .collect(),
    )
    .expect("shape consistent")
}

/// `{"1": 0.123, "2": 0.456, ...}` over the thread sweep.
fn times_json(times: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (t, secs)) in times.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{t}\": {secs:.6}");
    }
    s.push('}');
    s
}

fn sweep(label: &str, mut run: impl FnMut(usize)) -> String {
    let times: Vec<(usize, f64)> = THREADS.iter().map(|&t| (t, min_time(|| run(t)))).collect();
    let base = times[0].1;
    print!("{label:<28}");
    for (t, secs) in &times {
        print!("  {t}T {secs:>9.4}s ({:>4.2}x)", base / secs);
    }
    println!();
    times_json(&times)
}

fn spin(units: u64) -> u64 {
    let mut acc = 0x9E3779B97F4A7C15u64;
    for i in 0..units * 20_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn straggler_tasks() -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
    (0..16u64)
        .map(|i| {
            let units = if i == 0 { 50 } else { 1 };
            Box::new(move || spin(units)) as _
        })
        .collect()
}

fn pool(m_each: usize) -> Vec<ModelSpec> {
    let mut specs = Vec::new();
    for i in 0..m_each {
        specs.push(ModelSpec::Knn {
            n_neighbors: 5 + 5 * (i % 3),
            method: KnnMethod::Largest,
        });
        specs.push(ModelSpec::Lof {
            n_neighbors: 5 + 5 * (i % 3),
            metric: Metric::Euclidean,
        });
        specs.push(ModelSpec::Hbos {
            n_bins: 10 + 10 * (i % 3),
            tolerance: 0.3,
        });
        specs.push(ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        });
    }
    specs
}

/// A proximity-only pool sharing one (unprojected) input: the workload
/// the shared neighbour-graph cache exists for. 24 detectors = 8 k-values
/// x {kNN, LOF, LoOP}; uncached, each pays its own KD-tree build + sweep.
fn proximity_pool() -> Vec<ModelSpec> {
    let mut specs = Vec::new();
    for i in 0..8 {
        let k = 5 + 2 * i;
        specs.push(ModelSpec::Knn {
            n_neighbors: k,
            method: KnnMethod::Largest,
        });
        specs.push(ModelSpec::Lof {
            n_neighbors: k,
            metric: Metric::Euclidean,
        });
        specs.push(ModelSpec::Loop { n_neighbors: k });
    }
    specs
}

fn main() {
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("Parallel kernel + end-to-end report (host cores: {host_cores})");

    // --- Kernels. ----------------------------------------------------------
    let (pw_n, pw_d) = scale.pick((400, 16), (2000, 16), (2000, 16));
    let a = random_matrix(pw_n, pw_d, 1);
    let pairwise = sweep(&format!("pairwise {pw_n}x{pw_d}"), |t| {
        let _ = pairwise_distances_parallel(&a, &a, DistanceMetric::Euclidean, t).expect("shapes");
    });

    let mm = scale.pick(128, 384, 384);
    let ma = random_matrix(mm, mm, 2);
    let mb = random_matrix(mm, mm, 3);
    let matmul = sweep(&format!("matmul_blocked {mm}^3"), |t| {
        let _ = ma.matmul_blocked(&mb, t).expect("shapes");
    });

    let (knn_n, knn_q) = scale.pick((500, 100), (2000, 500), (2000, 500));
    let train = random_matrix(knn_n, 16, 4);
    let queries = random_matrix(knn_q, 16, 5);
    let index = KnnIndex::build(&train, DistanceMetric::Euclidean).expect("non-empty");
    let knn = sweep(&format!("knn_batch {knn_n}tr/{knn_q}q"), |t| {
        let _ = index.query_batch_parallel(&queries, 10, t).expect("shapes");
    });

    // --- Executor straggler workload (t = 4). ------------------------------
    let mut wrong_costs = vec![1.0; 16];
    wrong_costs[0] = 2.0;
    let assignment = bps_schedule(&wrong_costs, 4, 1.0).expect("valid");
    let static_s = min_time(|| {
        ThreadPoolExecutor::new()
            .run(straggler_tasks(), &assignment)
            .expect("runs");
    });
    let steal_pool = WorkStealingExecutor::new(4).expect("valid");
    let mut steals = 0usize;
    let stealing_s = min_time(|| {
        let (_, report) = steal_pool
            .run_with_report(straggler_tasks(), &assignment)
            .expect("runs");
        steals = report.steals;
    });
    println!(
        "straggler m16/t4             static {static_s:.4}s  stealing {stealing_s:.4}s \
         ({:.2}x, {steals} steals)",
        static_s / stealing_s
    );

    // --- End-to-end fit/predict. -------------------------------------------
    let (n, m_each) = scale.pick((150, 1), (600, 2), (1200, 3));
    let x = random_matrix(n, 12, 6);
    let mut fit_times: Vec<(usize, f64)> = Vec::new();
    let mut predict_times: Vec<(usize, f64)> = Vec::new();
    for &t in THREADS {
        let mut fitted = None;
        let fit_s = min_time(|| {
            let mut model = Suod::builder()
                .base_estimators(pool(m_each))
                .n_workers(t)
                .seed(7)
                .build()
                .expect("valid config");
            model.fit(&x).expect("fit succeeds");
            fitted = Some(model);
        });
        let model = fitted.expect("fitted above");
        let predict_s = min_time(|| {
            let _ = model.decision_function(&x).expect("predict succeeds");
        });
        fit_times.push((t, fit_s));
        predict_times.push((t, predict_s));
    }
    print!("end-to-end fit n={n}          ");
    for (t, s) in &fit_times {
        print!("  {t}T {s:>9.4}s");
    }
    println!();
    print!("end-to-end predict n={n}      ");
    for (t, s) in &predict_times {
        print!("  {t}T {s:>9.4}s");
    }
    println!();

    // --- Neighbor-cache pool fit: cached vs uncached. ----------------------
    // >= 20 proximity detectors sharing one unprojected input. Uncached,
    // every model pays its own KD-tree build + leave-one-out sweep; cached,
    // the Euclidean group builds once at the pooled k_max and everyone else
    // gets a prefix view.
    let cache_n = scale.pick(400, 1200, 2400);
    let cache_x = random_matrix(cache_n, 12, 8);
    let cache_pool_size = proximity_pool().len();
    let cache_fit = |cache_on: bool, t: usize| -> (f64, u64, u64) {
        let mut counters = (0u64, 0u64);
        let secs = min_time(|| {
            let mut model = Suod::builder()
                .base_estimators(proximity_pool())
                .with_projection(false)
                .with_approximation(false)
                .with_neighbor_cache(cache_on)
                .n_workers(t)
                .seed(9)
                .build()
                .expect("valid config");
            model.fit(&cache_x).expect("fit succeeds");
            let report = model
                .diagnostics()
                .expect("fit emits telemetry")
                .execution();
            counters = (report.cache_hits, report.cache_misses);
        });
        (secs, counters.0, counters.1)
    };
    let mut cached_times: Vec<(usize, f64)> = Vec::new();
    let mut uncached_times: Vec<(usize, f64)> = Vec::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for &t in THREADS {
        let (off_s, _, _) = cache_fit(false, t);
        let (on_s, hits, misses) = cache_fit(true, t);
        uncached_times.push((t, off_s));
        cached_times.push((t, on_s));
        cache_hits = hits;
        cache_misses = misses;
        println!(
            "cache pool fit n={cache_n} m={cache_pool_size} {t}T   \
             uncached {off_s:>9.4}s  cached {on_s:>9.4}s  ({:.2}x, \
             {hits} hits/{misses} misses)",
            off_s / on_s
        );
    }

    // --- Report. -----------------------------------------------------------
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"scale\": \"{scale:?}\",\n  \"kernels\": {{\n    \
         \"pairwise_{pw_n}x{pw_d}\": {pairwise},\n    \"matmul_blocked_{mm}\": {matmul},\n    \
         \"knn_batch_{knn_n}x{knn_q}\": {knn}\n  }},\n  \"executor_straggler_m16_t4\": {{\n    \
         \"static_s\": {static_s:.6},\n    \"stealing_s\": {stealing_s:.6},\n    \
         \"steals\": {steals}\n  }},\n  \"end_to_end_n{n}\": {{\n    \"fit\": {},\n    \
         \"predict\": {}\n  }},\n  \"neighbor_cache_pool_fit_n{cache_n}\": {{\n    \
         \"pool\": {{\"total\": {cache_pool_size}, \"knn\": 8, \"lof\": 8, \"loop\": 8}},\n    \
         \"uncached_fit\": {},\n    \"cached_fit\": {},\n    \
         \"speedup_t1\": {:.4},\n    \"cache_hits\": {cache_hits},\n    \
         \"cache_misses\": {cache_misses}\n  }}\n}}\n",
        times_json(&fit_times),
        times_json(&predict_times),
        times_json(&uncached_times),
        times_json(&cached_times),
        uncached_times[0].1 / cached_times[0].1,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
