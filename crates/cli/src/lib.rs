#![warn(missing_docs)]

//! Command-line interface for the SUOD reproduction.
//!
//! The binary (`suod-cli`) wraps the `suod` library for the two things a
//! practitioner does first: score a dataset with a heterogeneous ensemble
//! and inspect the available benchmark analogs. Argument parsing is
//! hand-rolled (no CLI dependency) and lives here in the library so it is
//! unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! suod-cli detect --dataset cardio [--scale 0.25] [--models 20]
//!                 [--no-rp] [--no-psa] [--no-bps] [--workers 2]
//!                 [--contamination 0.1] [--seed 42] [--output scores.csv]
//! suod-cli detect --csv data.csv [--label-column 3] ...
//! suod-cli trace --dataset cardio [--format json|chrome] [--output trace.json] ...
//! suod-cli list-datasets
//! suod-cli help
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use suod::prelude::*;
use suod_datasets::csv::{load_csv, CsvOptions};
use suod_datasets::{registry, Dataset};
use suod_metrics::{precision_at_n, roc_auc};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Fit an ensemble and emit per-sample scores.
    Detect(DetectArgs),
    /// Run an instrumented fit + predict and export the trace.
    Trace(TraceArgs),
    /// Print the registry's dataset table.
    ListDatasets,
    /// Print usage.
    Help,
}

/// Export format for [`Command::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The stable `suod-trace/1` JSON schema.
    Json,
    /// Chrome `trace_event` format (load in `chrome://tracing` / Perfetto).
    Chrome,
}

/// Arguments for [`Command::Trace`]: the same pipeline configuration as
/// `detect`, plus an export format. `--output` names the trace file
/// instead of a score CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Pipeline configuration (same flags as `detect`).
    pub detect: DetectArgs,
    /// Trace export format.
    pub format: TraceFormat,
}

/// Arguments for [`Command::Detect`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectArgs {
    /// Registry dataset name (mutually exclusive with `csv`).
    pub dataset: Option<String>,
    /// CSV path (mutually exclusive with `dataset`).
    pub csv: Option<String>,
    /// Label column within the CSV.
    pub label_column: Option<usize>,
    /// Registry subsampling factor.
    pub scale: f64,
    /// Number of random Table B.1 models in the pool.
    pub models: usize,
    /// Module flags.
    pub rp: bool,
    /// Pseudo-supervised approximation flag.
    pub psa: bool,
    /// Balanced scheduling flag.
    pub bps: bool,
    /// Worker count.
    pub workers: usize,
    /// Contamination for the label threshold.
    pub contamination: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional output CSV path for scores.
    pub output: Option<String>,
    /// Brute-force distance backend (naive | blocked | gemm).
    pub backend: DistanceBackend,
    /// Kernel numeric precision (f64 | mixed).
    pub precision: Precision,
    /// Neighbour index backend (exact | hnsw).
    pub neighbor: NeighborBackend,
    /// HNSW search beam width (recall knob); `None` keeps the default.
    pub ef_search: Option<usize>,
}

impl Default for DetectArgs {
    fn default() -> Self {
        Self {
            dataset: None,
            csv: None,
            label_column: None,
            scale: 0.25,
            models: 12,
            rp: true,
            psa: true,
            bps: true,
            workers: 1,
            contamination: 0.1,
            seed: 42,
            output: None,
            backend: KernelConfig::default().backend,
            precision: Precision::default(),
            neighbor: NeighborBackend::default(),
            ef_search: None,
        }
    }
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// unparsable numbers, or conflicting inputs.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-datasets" => Ok(Command::ListDatasets),
        "detect" => {
            let (d, _) = parse_pipeline_flags(&mut it, "detect", false)?;
            Ok(Command::Detect(d))
        }
        "trace" => {
            let (detect, format) = parse_pipeline_flags(&mut it, "trace", true)?;
            Ok(Command::Trace(TraceArgs {
                detect,
                format: format.unwrap_or(TraceFormat::Json),
            }))
        }
        other => Err(format!("unknown command `{other}` (see `suod-cli help`)")),
    }
}

/// Parses the shared `detect`/`trace` flag set. `--format` is only
/// accepted when `allow_format` is set (the `trace` subcommand).
fn parse_pipeline_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    sub: &str,
    allow_format: bool,
) -> Result<(DetectArgs, Option<TraceFormat>), String> {
    let mut d = DetectArgs::default();
    let mut format = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => d.dataset = Some(value("--dataset")?),
            "--csv" => d.csv = Some(value("--csv")?),
            "--label-column" => d.label_column = Some(parse_num(&value("--label-column")?, flag)?),
            "--scale" => d.scale = parse_num(&value("--scale")?, flag)?,
            "--models" => d.models = parse_num(&value("--models")?, flag)?,
            "--workers" => d.workers = parse_num(&value("--workers")?, flag)?,
            "--contamination" => d.contamination = parse_num(&value("--contamination")?, flag)?,
            "--seed" => d.seed = parse_num(&value("--seed")?, flag)?,
            "--output" => d.output = Some(value("--output")?),
            "--backend" => {
                d.backend =
                    DistanceBackend::parse(&value("--backend")?).map_err(|e| e.to_string())?
            }
            "--precision" => {
                d.precision = Precision::parse(&value("--precision")?).map_err(|e| e.to_string())?
            }
            "--neighbor-backend" => {
                d.neighbor = NeighborBackend::parse(&value("--neighbor-backend")?)
                    .map_err(|e| e.to_string())?
            }
            "--ef-search" => d.ef_search = Some(parse_num(&value("--ef-search")?, flag)?),
            "--no-rp" => d.rp = false,
            "--no-psa" => d.psa = false,
            "--no-bps" => d.bps = false,
            "--format" if allow_format => {
                format = Some(match value("--format")?.as_str() {
                    "json" => TraceFormat::Json,
                    "chrome" => TraceFormat::Chrome,
                    other => return Err(format!("unknown trace format `{other}` (json|chrome)")),
                })
            }
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&d.dataset, &d.csv) {
        (None, None) => Err(format!("{sub} needs --dataset <name> or --csv <path>")),
        (Some(_), Some(_)) => Err("--dataset and --csv are mutually exclusive".into()),
        _ => Ok((d, format)),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("cannot parse `{raw}` for {flag}"))
}

/// Usage text.
pub fn usage() -> &'static str {
    "suod-cli — scalable unsupervised heterogeneous outlier detection

USAGE:
  suod-cli detect --dataset <name> [options]   score a registry analog
  suod-cli detect --csv <path> [options]       score a local CSV file
  suod-cli trace --dataset <name> [options]    export an instrumented run's trace
  suod-cli list-datasets                       show the benchmark registry
  suod-cli help                                this text

DETECT / TRACE OPTIONS:
  --label-column <i>    CSV column holding 0/1 labels (enables ROC/P@N)
  --scale <f>           registry subsample factor in (0, 1]   [0.25]
  --models <m>          random Table B.1 pool size            [12]
  --workers <t>         worker threads                        [1]
  --contamination <c>   expected outlier fraction             [0.1]
  --seed <s>            RNG seed                              [42]
  --output <path>       detect: score CSV; trace: trace file
  --backend <b>         distance backend: naive|blocked|gemm  [blocked]
  --precision <p>       distance kernels: f64|mixed           [f64]
                        mixed = f32 packed storage with f64
                        accumulation (documented error bound)
  --neighbor-backend <b>  kNN index: exact|hnsw               [exact]
                        hnsw = seeded approximate graph (recall
                        >= 0.95 at defaults; small n and
                        non-Euclidean metrics fall back to exact)
  --ef-search <ef>      HNSW search beam width (recall knob)  [64]
  --no-rp | --no-psa | --no-bps   disable a SUOD module

TRACE OPTIONS:
  --format <json|chrome>  export format                       [json]
                          json   = stable suod-trace/1 schema
                          chrome = chrome://tracing / Perfetto
"
}

/// Runs a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable message on any pipeline failure.
pub fn run(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(usage().to_string()),
        Command::ListDatasets => {
            let mut out = String::new();
            writeln!(
                out,
                "{:<12} {:>8} {:>5} {:>9} {:>10}",
                "name", "n", "d", "outliers", "% outlier"
            )
            .expect("string write");
            for info in registry::TABLE_A1 {
                writeln!(
                    out,
                    "{:<12} {:>8} {:>5} {:>9} {:>10.2}",
                    info.name,
                    info.n_samples,
                    info.n_features,
                    info.n_outliers,
                    100.0 * info.contamination()
                )
                .expect("string write");
            }
            Ok(out)
        }
        Command::Detect(args) => detect(&args),
        Command::Trace(args) => trace(&args),
    }
}

fn load_dataset(args: &DetectArgs) -> Result<(Dataset, bool), String> {
    if let Some(name) = &args.dataset {
        let ds = registry::load_scaled(name, args.seed, args.scale)
            .map_err(|e| format!("cannot load dataset `{name}`: {e}"))?;
        Ok((ds, true))
    } else {
        let path = args.csv.as_ref().expect("validated in parse_args");
        let ds = load_csv(
            path,
            CsvOptions {
                has_header: None,
                label_column: args.label_column,
            },
        )
        .map_err(|e| format!("cannot load CSV: {e}"))?;
        let labeled = args.label_column.is_some();
        Ok((ds, labeled))
    }
}

fn clamp_pool(pool: Vec<ModelSpec>, n: usize) -> Vec<ModelSpec> {
    let cap = (n / 3).max(2);
    pool.into_iter()
        .map(|spec| match spec {
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.clamp(2, cap),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(cap),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.clamp(2, cap),
                metric,
            },
            ModelSpec::Cblof { n_clusters } => ModelSpec::Cblof {
                n_clusters: n_clusters.min(n / 4).max(1),
            },
            other => other,
        })
        .collect()
}

fn detect(args: &DetectArgs) -> Result<String, String> {
    let (ds, labeled) = load_dataset(args)?;
    let pool = clamp_pool(suod::random_pool(args.models, args.seed), ds.n_samples());

    let mut builder = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.rp)
        .with_approximation(args.psa)
        .with_bps(args.bps)
        .n_workers(args.workers.max(1))
        .contamination(args.contamination)
        .seed(args.seed)
        .distance_backend(args.backend)
        .precision(args.precision)
        .neighbor_backend(args.neighbor);
    if let Some(ef) = args.ef_search {
        builder = builder.ef_search(ef);
    }
    let mut clf = builder
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))?;

    let fit_start = std::time::Instant::now();
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    let fit_secs = fit_start.elapsed().as_secs_f64();

    let scores = clf
        .combined_scores(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;
    let labels = clf
        .predict(&ds.x)
        .map_err(|e| format!("predict failed: {e}"))?;

    let mut out = String::new();
    writeln!(
        out,
        "dataset: {} ({} samples x {} features)",
        ds.name,
        ds.n_samples(),
        ds.n_features()
    )
    .expect("string write");
    writeln!(
        out,
        "pool: {} models | rp={} psa={} bps={} workers={}",
        args.models, args.rp, args.psa, args.bps, args.workers
    )
    .expect("string write");
    writeln!(
        out,
        "kernels: backend={} {}",
        args.backend.name(),
        clf.diagnostics()
            .map(|d| d.cpu_features().to_string())
            .unwrap_or_else(|| "unavailable".into()),
    )
    .expect("string write");
    writeln!(out, "fit time: {fit_secs:.3}s").expect("string write");
    writeln!(
        out,
        "flagged: {}/{} samples",
        labels.iter().sum::<i32>(),
        labels.len()
    )
    .expect("string write");
    if labeled && ds.n_outliers() > 0 && ds.n_outliers() < ds.n_samples() {
        let auc = roc_auc(&ds.y, &scores).map_err(|e| e.to_string())?;
        let pan = precision_at_n(&ds.y, &scores, None).map_err(|e| e.to_string())?;
        writeln!(out, "ROC-AUC: {auc:.4}").expect("string write");
        writeln!(out, "P@N:     {pan:.4}").expect("string write");
    }

    if let Some(path) = &args.output {
        let mut csv = String::from("index,score,label\n");
        for (i, (s, l)) in scores.iter().zip(&labels).enumerate() {
            writeln!(csv, "{i},{s:.6},{l}").expect("string write");
        }
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "scores written to {path}").expect("string write");
    }
    Ok(out)
}

fn trace(args: &TraceArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(&args.detect)?;
    let pool = clamp_pool(
        suod::random_pool(args.detect.models, args.detect.seed),
        ds.n_samples(),
    );
    let recorder = Arc::new(RecordingObserver::new());

    let mut builder = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.detect.rp)
        .with_approximation(args.detect.psa)
        .with_bps(args.detect.bps)
        .n_workers(args.detect.workers.max(1))
        .contamination(args.detect.contamination)
        .seed(args.detect.seed)
        .distance_backend(args.detect.backend)
        .precision(args.detect.precision)
        .neighbor_backend(args.detect.neighbor)
        .observer(recorder.clone());
    if let Some(ef) = args.detect.ef_search {
        builder = builder.ef_search(ef);
    }
    let mut clf = builder
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    clf.decision_function(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;

    let trace = recorder.trace();
    let body = match args.format {
        TraceFormat::Json => {
            let json = suod::observe::export::to_json(&trace);
            // Validate the export against the schema before it leaves the
            // process: a trace we cannot re-parse is a bug, not output.
            suod::observe::export::from_json(&json)
                .map_err(|e| format!("exported trace failed schema validation: {e}"))?;
            json
        }
        TraceFormat::Chrome => suod::observe::export::to_chrome_trace(&trace),
    };

    let mut out = String::new();
    writeln!(
        out,
        "trace: {} spans, {} stages with latency histograms, {:.3}s wall",
        trace.spans().len(),
        trace.histograms().len(),
        trace.wall_us() as f64 / 1e6
    )
    .expect("string write");
    for (counter, value) in trace.counters() {
        if value > 0 {
            writeln!(out, "  {} = {value}", counter.name()).expect("string write");
        }
    }
    match &args.detect.output {
        Some(path) => {
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "trace written to {path}").expect("string write");
        }
        None => out.push_str(&body),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&argv("list-datasets")).unwrap(),
            Command::ListDatasets
        );
    }

    #[test]
    fn parses_detect_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --scale 0.1 --models 8 --no-rp --workers 3 --seed 7",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.dataset.as_deref(), Some("cardio"));
        assert_eq!(d.scale, 0.1);
        assert_eq!(d.models, 8);
        assert!(!d.rp);
        assert!(d.psa && d.bps);
        assert_eq!(d.workers, 3);
        assert_eq!(d.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("detect")).is_err()); // no source
        assert!(parse_args(&argv("detect --dataset a --csv b.csv")).is_err());
        assert!(parse_args(&argv("detect --dataset a --bogus")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models x")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models")).is_err());
        assert!(parse_args(&argv("detect --dataset a --backend simd")).is_err());
        assert!(parse_args(&argv("detect --dataset a --precision f16")).is_err());
        assert!(parse_args(&argv("detect --dataset a --neighbor-backend kdtree")).is_err());
        assert!(parse_args(&argv("detect --dataset a --ef-search fast")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_kernel_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --backend gemm --precision mixed",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Gemm);
        assert_eq!(d.precision, Precision::Mixed);

        // Defaults: the exact blocked/f64 pipeline.
        let Command::Detect(d) = parse_args(&argv("detect --dataset cardio")).unwrap() else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Blocked);
        assert_eq!(d.precision, Precision::F64);
        assert_eq!(d.neighbor, NeighborBackend::Exact);
        assert_eq!(d.ef_search, None);
    }

    #[test]
    fn parses_neighbor_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --neighbor-backend hnsw --ef-search 128",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert!(d.neighbor.is_approximate());
        assert_eq!(d.ef_search, Some(128));
    }

    #[test]
    fn detect_reports_cpu_features() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 --backend gemm \
             --precision mixed",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("kernels: backend=gemm lane="), "{out}");
        assert!(out.contains("precision=mixed"), "{out}");
        assert!(out.contains("neighbors=exact"), "{out}");
    }

    #[test]
    fn detect_reports_hnsw_backend() {
        // Registry analogs are far below DEFAULT_HNSW_MIN_ROWS at this
        // scale, so the run exercises the exactness fallback while the
        // kernels line still reports the configured hnsw backend.
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 \
             --neighbor-backend hnsw --ef-search 32",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("neighbors=hnsw(ef_search=32)"), "{out}");
    }

    #[test]
    fn list_datasets_prints_registry() {
        let out = run(Command::ListDatasets).unwrap();
        assert!(out.contains("cardio"));
        assert!(out.contains("shuttle"));
        assert_eq!(out.lines().count(), 1 + registry::TABLE_A1.len());
    }

    #[test]
    fn detect_on_registry_analog() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 5 --workers 1 --seed 3",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("ROC-AUC"), "{out}");
        assert!(out.contains("flagged"));
    }

    #[test]
    fn detect_on_csv_roundtrip() {
        let dir = std::env::temp_dir().join("suod_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let mut body = String::from("a,b,label\n");
        for i in 0..40 {
            body.push_str(&format!("{}.0,{}.5,0\n", i % 7, (i * 3) % 5));
        }
        body.push_str("50.0,50.0,1\n");
        std::fs::write(&input, body).unwrap();
        let output = dir.join("out.csv");

        let cmd = parse_args(&argv(&format!(
            "detect --csv {} --label-column 2 --models 4 --seed 1 --output {}",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("ROC-AUC"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score,label\n"));
        assert_eq!(written.lines().count(), 1 + 41);
    }

    #[test]
    fn detect_errors_are_messages_not_panics() {
        let cmd = parse_args(&argv("detect --dataset not-a-dataset")).unwrap();
        assert!(run(cmd).is_err());
        let cmd = parse_args(&argv("detect --csv /nonexistent/nope.csv")).unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 4 --format chrome --workers 2",
        ))
        .unwrap();
        let Command::Trace(t) = cmd else {
            panic!("expected trace")
        };
        assert_eq!(t.detect.dataset.as_deref(), Some("pima"));
        assert_eq!(t.detect.models, 4);
        assert_eq!(t.format, TraceFormat::Chrome);

        // Default format is the stable JSON schema.
        let Command::Trace(t) = parse_args(&argv("trace --dataset pima")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(t.format, TraceFormat::Json);

        assert!(parse_args(&argv("trace")).is_err()); // no source
        assert!(parse_args(&argv("trace --dataset pima --format xml")).is_err());
        // --format belongs to trace only.
        assert!(parse_args(&argv("detect --dataset pima --format json")).is_err());
    }

    #[test]
    fn trace_exports_schema_valid_json() {
        let dir = std::env::temp_dir().join("suod_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("trace.json");
        let cmd = parse_args(&argv(&format!(
            "trace --dataset pima --scale 0.2 --models 5 --workers 2 --seed 3 --output {}",
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("spans"), "{report}");
        assert!(report.contains("trace written to"), "{report}");

        let written = std::fs::read_to_string(&output).unwrap();
        let trace = suod::observe::export::from_json(&written).expect("schema-valid trace");
        assert!(trace.spans_of(suod::observe::Stage::Fit).count() >= 1);
        assert!(trace.spans_of(suod::observe::Stage::ModelFit).count() >= 5);
        assert!(trace.spans_of(suod::observe::Stage::Predict).count() >= 1);
    }

    #[test]
    fn trace_chrome_format_streams_to_stdout() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 3 --workers 1 --seed 5 --format chrome",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("\"traceEvents\""), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
    }
}
