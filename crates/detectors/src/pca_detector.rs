//! PCA-based anomaly detection (Shyu et al. 2003).
//!
//! Outliers violate the correlation structure of the data: projecting a
//! sample onto the covariance eigenvectors and normalizing each
//! coordinate by its eigenvalue yields large values exactly when the
//! sample deviates along directions where the data barely varies. The
//! score is the eigenvalue-weighted squared distance over the **minor**
//! components (those after the first `variance_retained` share of
//! variance), the "principal component classifier" the paper cites in its
//! related work (§2.2) and PyOD ships as `PCA`.

use crate::{check_dims, Detector, Error, Result};
use suod_linalg::{symmetric_eigen, Matrix};

/// PCA anomaly detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, PcaDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// // Data lies on the line y = x; the outlier breaks the correlation.
/// let mut rows: Vec<Vec<f64>> = (0..30).map(|i| {
///     let t = i as f64 * 0.1;
///     vec![t, t + 0.01 * ((i % 3) as f64 - 1.0)]
/// }).collect();
/// rows.push(vec![1.5, -1.5]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = PcaDetector::new(0.7)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PcaDetector {
    variance_retained: f64,
    means: Vec<f64>,
    /// Minor-component eigenvectors as matrix columns (`d x m`).
    minor_components: Option<Matrix>,
    /// Matching eigenvalues (floored away from zero).
    minor_values: Vec<f64>,
    train_scores: Vec<f64>,
}

impl PcaDetector {
    /// Creates a detector that treats the eigenvectors after the first
    /// `variance_retained` share of total variance as the minor (scoring)
    /// subspace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `variance_retained` is not
    /// in `(0, 1)`.
    pub fn new(variance_retained: f64) -> Result<Self> {
        if !(variance_retained > 0.0 && variance_retained < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "variance_retained must be in (0, 1), got {variance_retained}"
            )));
        }
        Ok(Self {
            variance_retained,
            means: Vec::new(),
            minor_components: None,
            minor_values: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Share of variance assigned to the major (ignored) subspace.
    pub fn variance_retained(&self) -> f64 {
        self.variance_retained
    }

    /// Number of minor components used for scoring (after `fit`).
    pub fn n_minor_components(&self) -> usize {
        self.minor_values.len()
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        let comp = self.minor_components.as_ref().expect("called after fit");
        let centered: Vec<f64> = row.iter().zip(&self.means).map(|(&v, &m)| v - m).collect();
        let mut score = 0.0;
        for (j, &lambda) in self.minor_values.iter().enumerate() {
            let mut proj = 0.0;
            for (i, &c) in centered.iter().enumerate() {
                proj += c * comp.get(i, j);
            }
            score += proj * proj / lambda;
        }
        score
    }
}

impl Detector for PcaDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let (n, d) = x.shape();
        if n < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: n,
            });
        }
        self.means = suod_linalg::stats::column_means(x);

        // Covariance.
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let row = x.row(r);
            for i in 0..d {
                let xi = row[i] - self.means[i];
                for j in i..d {
                    let xj = row[j] - self.means[j];
                    cov.set(i, j, cov.get(i, j) + xi * xj);
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov.get(i, j) / (n - 1) as f64;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        // Extreme-magnitude inputs overflow the covariance accumulation;
        // the eigensolver would then iterate on inf/NaN forever or return
        // garbage directions, so reject the singular matrix up front.
        if cov.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(Error::DegenerateData(
                "covariance matrix has non-finite entries (input overflow?)".into(),
            ));
        }
        let eig = symmetric_eigen(&cov)?;
        if eig.values.iter().any(|v| !v.is_finite()) {
            return Err(Error::DegenerateData(
                "covariance eigendecomposition produced non-finite eigenvalues".into(),
            ));
        }

        // Split major/minor by cumulative explained variance.
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let mut cutoff = d;
        if total > 0.0 {
            let mut cum = 0.0;
            for (i, &v) in eig.values.iter().enumerate() {
                cum += v.max(0.0);
                if cum / total >= self.variance_retained {
                    cutoff = i + 1;
                    break;
                }
            }
        }
        // At least one minor component; all-but-first at most.
        let cutoff = cutoff.min(d - 1).max(1.min(d - 1));
        let minor: Vec<usize> = (cutoff..d).collect();
        self.minor_components = Some(eig.vectors.select_cols(&minor));
        // Floor eigenvalues: near-null directions would otherwise divide
        // by ~0 and let noise dominate.
        let floor = (total / d as f64) * 1e-6 + 1e-12;
        self.minor_values = minor.iter().map(|&i| eig.values[i].max(floor)).collect();
        self.train_scores = x.rows_iter().map(|row| self.score_row(row)).collect();
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.minor_components.is_none() {
            return Err(Error::NotFitted("PcaDetector"));
        }
        check_dims(self.means.len(), x)?;
        Ok(x.rows_iter().map(|row| self.score_row(row)).collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.minor_components.is_none() {
            return Err(Error::NotFitted("PcaDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "pca"
    }

    fn is_fitted(&self) -> bool {
        self.minor_components.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_f64(self.variance_retained);
        w.write_f64s(&self.means);
        match &self.minor_components {
            Some(mc) => {
                w.write_bool(true);
                w.write_matrix(mc);
            }
            None => w.write_bool(false),
        }
        w.write_f64s(&self.minor_values);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl PcaDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let variance_retained = r.read_f64()?;
        let means = r.read_f64s()?;
        let minor_components = if r.read_bool()? {
            Some(r.read_matrix()?)
        } else {
            None
        };
        Ok(Self {
            variance_retained,
            means,
            minor_components,
            minor_values: r.read_f64s()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated 2-D cloud plus one correlation-breaking outlier.
    fn correlated_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = (i as f64 - 20.0) * 0.2;
                vec![t, 2.0 * t + 0.05 * ((i % 5) as f64 - 2.0)]
            })
            .collect();
        rows.push(vec![2.0, -4.0]); // far off the y = 2x line
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn flags_correlation_breaker() {
        let mut det = PcaDetector::new(0.9).unwrap();
        det.fit(&correlated_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 40);
        assert!(det.n_minor_components() >= 1);
    }

    #[test]
    fn on_line_queries_score_low() {
        let mut det = PcaDetector::new(0.9).unwrap();
        det.fit(&correlated_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, -2.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > 10.0 * s[0], "{s:?}");
    }

    #[test]
    fn validates_inputs() {
        assert!(PcaDetector::new(0.0).is_err());
        assert!(PcaDetector::new(1.0).is_err());
        let mut det = PcaDetector::new(0.5).unwrap();
        assert!(det.fit(&Matrix::zeros(2, 3)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&correlated_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn deterministic() {
        let x = correlated_with_outlier();
        let mut a = PcaDetector::new(0.8).unwrap();
        let mut b = PcaDetector::new(0.8).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
    }

    #[test]
    fn scores_nonnegative_and_finite() {
        let mut det = PcaDetector::new(0.5).unwrap();
        det.fit(&correlated_with_outlier()).unwrap();
        assert!(det
            .training_scores()
            .unwrap()
            .iter()
            .all(|&v| v.is_finite() && v >= 0.0));
    }

    #[test]
    fn overflowing_covariance_reports_degenerate_data() {
        // Entries near f64::MAX overflow the covariance accumulation to
        // inf; fit must fail typed rather than hand inf to the
        // eigensolver.
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![1e200 * (i as f64 - 2.0), -1e200 * i as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = PcaDetector::new(0.5).unwrap();
        assert!(matches!(det.fit(&x), Err(Error::DegenerateData(_))));
        assert!(!det.is_fitted());
    }

    #[test]
    fn constant_data_handled() {
        let x = Matrix::filled(10, 3, 2.0);
        let mut det = PcaDetector::new(0.5).unwrap();
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }
}
