//! k-nearest-neighbour outlier detection (Ramaswamy et al. 2000).
//!
//! A point's outlyingness is a statistic of its distances to its `k`
//! nearest training neighbours. The paper's model grid (Table B.1) varies
//! `n_neighbors` and the aggregation `method` in
//! `{largest, mean, median}`; "average kNN" (akNN, §4.2) is exactly
//! `method = mean`.

use crate::{check_dims, Detector, Error, FitContext, Result};
use std::sync::Arc;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// How the k neighbour distances collapse into one score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnMethod {
    /// Distance to the k-th neighbour (the classic kNN score).
    #[default]
    Largest,
    /// Mean of the k distances (average kNN / akNN).
    Mean,
    /// Median of the k distances.
    Median,
}

impl KnnMethod {
    /// Parses the PyOD-style method name (`largest`/`mean`/`median`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "largest" => Ok(KnnMethod::Largest),
            "mean" => Ok(KnnMethod::Mean),
            "median" => Ok(KnnMethod::Median),
            other => Err(Error::InvalidParameter(format!(
                "unknown kNN method `{other}`"
            ))),
        }
    }

    fn aggregate(&self, sorted_distances: &[f64]) -> f64 {
        if sorted_distances.is_empty() {
            return 0.0;
        }
        match self {
            KnnMethod::Largest => *sorted_distances.last().expect("non-empty"),
            KnnMethod::Mean => sorted_distances.iter().sum::<f64>() / sorted_distances.len() as f64,
            KnnMethod::Median => {
                let m = sorted_distances.len() / 2;
                if sorted_distances.len() % 2 == 1 {
                    sorted_distances[m]
                } else {
                    0.5 * (sorted_distances[m - 1] + sorted_distances[m])
                }
            }
        }
    }
}

/// kNN outlier detector.
#[derive(Debug, Clone)]
pub struct KnnDetector {
    k: usize,
    method: KnnMethod,
    metric: DistanceMetric,
    index: Option<Arc<KnnIndex>>,
    train_scores: Vec<f64>,
}

impl KnnDetector {
    /// Creates a detector with `k` neighbours and the given aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize, method: KnnMethod) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("n_neighbors must be >= 1".into()));
        }
        Ok(Self {
            k,
            method,
            metric: DistanceMetric::Euclidean,
            index: None,
            train_scores: Vec::new(),
        })
    }

    /// Replaces the distance metric (default Euclidean).
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Aggregation method.
    pub fn method(&self) -> KnnMethod {
        self.method
    }

    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        let k = r.read_usize()?;
        let method = match r.read_u8()? {
            0 => KnnMethod::Largest,
            1 => KnnMethod::Mean,
            2 => KnnMethod::Median,
            other => {
                return Err(Error::InvalidParameter(format!(
                    "snapshot: unknown knn method tag {other}"
                )))
            }
        };
        let metric = r.read_metric()?;
        let index = crate::read_opt_index(r, n_threads)?;
        let train_scores = r.read_f64s()?;
        Ok(Self {
            k,
            method,
            metric,
            index,
            train_scores,
        })
    }
}

impl Detector for KnnDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.fit_with_context(x, &FitContext::default())
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        if x.nrows() < 2 {
            return Err(Error::InsufficientData {
                needed: "at least 2 samples".into(),
                got: x.nrows(),
            });
        }
        // Leave-one-out training scores (a point is not its own
        // neighbour); served as a prefix of the pool-shared neighbour
        // graph when `ctx` carries a cache, swept directly otherwise.
        let (index, neighbors) = ctx.self_neighbors(x, self.metric, self.k)?;
        self.train_scores = neighbors
            .iter()
            .map(|nn| {
                let d: Vec<f64> = nn.iter().map(|n| n.distance).collect();
                self.method.aggregate(&d)
            })
            .collect();
        self.index = Some(index);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self.index.as_ref().ok_or(Error::NotFitted("KnnDetector"))?;
        check_dims(index.train_data().ncols(), x)?;
        // Batched neighbour lookup hits the tiled brute-force fast path
        // on blocked/gemm indexes; results equal per-row queries exactly.
        let batch = index.query_batch(x, self.k)?;
        Ok(batch
            .iter()
            .map(|nn| {
                let d: Vec<f64> = nn.iter().map(|n| n.distance).collect();
                self.method.aggregate(&d)
            })
            .collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.index.is_none() {
            return Err(Error::NotFitted("KnnDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        match self.method {
            KnnMethod::Mean => "aknn",
            _ => "knn",
        }
    }

    fn is_fitted(&self) -> bool {
        self.index.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        w.write_u8(match self.method {
            KnnMethod::Largest => 0,
            KnnMethod::Mean => 1,
            KnnMethod::Median => 2,
        });
        w.write_metric(self.metric);
        crate::write_opt_index(self.index.as_deref(), w);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0.2, 0.0],
            vec![0.0, 0.2],
            vec![0.1, 0.0],
            vec![8.0, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        for method in [KnnMethod::Largest, KnnMethod::Mean, KnnMethod::Median] {
            let mut det = KnnDetector::new(3, method).unwrap();
            det.fit(&cluster_with_outlier()).unwrap();
            let s = det.training_scores().unwrap();
            let max_idx = suod_linalg::rank::argsort_desc(&s)[0];
            assert_eq!(max_idx, 5, "method {method:?}");
        }
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut det = KnnDetector::new(2, KnnMethod::Largest).unwrap();
        det.fit(&cluster_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.05, 0.05], vec![20.0, 20.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > 10.0 * s[0]);
    }

    #[test]
    fn aggregation_methods_differ() {
        let d = [1.0, 2.0, 10.0];
        assert_eq!(KnnMethod::Largest.aggregate(&d), 10.0);
        assert!((KnnMethod::Mean.aggregate(&d) - 13.0 / 3.0).abs() < 1e-12);
        assert_eq!(KnnMethod::Median.aggregate(&d), 2.0);
        // Even-length median.
        assert_eq!(KnnMethod::Median.aggregate(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn parse_method_names() {
        assert_eq!(KnnMethod::parse("largest").unwrap(), KnnMethod::Largest);
        assert_eq!(KnnMethod::parse("mean").unwrap(), KnnMethod::Mean);
        assert_eq!(KnnMethod::parse("median").unwrap(), KnnMethod::Median);
        assert!(KnnMethod::parse("max").is_err());
    }

    #[test]
    fn k_clamps_to_train_size() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut det = KnnDetector::new(50, KnnMethod::Mean).unwrap();
        det.fit(&x).unwrap();
        assert_eq!(det.training_scores().unwrap().len(), 3);
    }

    #[test]
    fn validates_inputs() {
        assert!(KnnDetector::new(0, KnnMethod::Largest).is_err());
        let mut det = KnnDetector::new(1, KnnMethod::Largest).unwrap();
        assert!(det.fit(&Matrix::zeros(1, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&cluster_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn metric_changes_scores() {
        let x = cluster_with_outlier();
        let mut e = KnnDetector::new(2, KnnMethod::Largest).unwrap();
        e.fit(&x).unwrap();
        let mut m = KnnDetector::new(2, KnnMethod::Largest)
            .unwrap()
            .with_metric(DistanceMetric::Manhattan);
        m.fit(&x).unwrap();
        assert_ne!(e.training_scores().unwrap(), m.training_scores().unwrap());
    }

    #[test]
    fn name_reflects_variant() {
        assert_eq!(KnnDetector::new(3, KnnMethod::Mean).unwrap().name(), "aknn");
        assert_eq!(
            KnnDetector::new(3, KnnMethod::Largest).unwrap().name(),
            "knn"
        );
    }
}
