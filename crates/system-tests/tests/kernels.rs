//! End-to-end contracts for the GEMM-backed distance kernels.
//!
//! The `DistanceBackend` selector changes *how* the proximity detectors
//! compute distances, never *what* the estimator means: `Blocked` (the
//! default) must reproduce the scalar reference bit for bit, `Gemm` must
//! stay deterministic for a fixed configuration regardless of worker
//! count, and the KD-tree crossover knob must not change any score
//! (tree and brute force are exact over the same metric).

use std::sync::Arc;
use suod::observe::Counter;
use suod::prelude::*;
use suod_datasets::registry;
use suod_linalg::Matrix;

fn proximity_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 8,
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod { n_neighbors: 6 },
        ModelSpec::Cof { n_neighbors: 7 },
        ModelSpec::Loop { n_neighbors: 9 },
    ]
}

fn fit_and_score(
    backend: DistanceBackend,
    crossover: Option<usize>,
    n_workers: usize,
    x: &Matrix,
    queries: &Matrix,
) -> (Matrix, Matrix) {
    fit_and_score_precision(backend, crossover, Precision::F64, n_workers, x, queries)
}

fn fit_and_score_precision(
    backend: DistanceBackend,
    crossover: Option<usize>,
    precision: Precision,
    n_workers: usize,
    x: &Matrix,
    queries: &Matrix,
) -> (Matrix, Matrix) {
    let mut kernel = KernelConfig::default()
        .with_backend(backend)
        .with_precision(precision);
    if let Some(dims) = crossover {
        kernel = kernel.with_kdtree_crossover_dim(dims);
    }
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .kernel(kernel)
        .n_workers(n_workers)
        .seed(7)
        .build()
        .expect("valid config");
    model.fit(x).expect("fit succeeds");
    let train = model.training_scores().expect("fitted");
    let query = model.decision_function(queries).expect("fitted");
    (train, query)
}

fn queries_for(x: &Matrix) -> Matrix {
    let mut shifted = x.clone();
    for v in shifted.as_mut_slice() {
        *v += 0.25;
    }
    shifted
}

#[test]
fn blocked_default_reproduces_naive_bitwise_end_to_end() {
    let ds = registry::load_scaled("cardio", 5, 0.2).expect("registry dataset");
    let queries = queries_for(&ds.x);
    let (train_n, query_n) = fit_and_score(DistanceBackend::Naive, None, 1, &ds.x, &queries);
    for workers in [1usize, 4] {
        let (train_b, query_b) =
            fit_and_score(DistanceBackend::Blocked, None, workers, &ds.x, &queries);
        assert_eq!(
            train_n.as_slice(),
            train_b.as_slice(),
            "blocked != naive training scores at n_workers={workers}"
        );
        assert_eq!(
            query_n.as_slice(),
            query_b.as_slice(),
            "blocked != naive query scores at n_workers={workers}"
        );
    }
}

#[test]
fn gemm_backend_is_deterministic_across_worker_counts() {
    let ds = registry::load_scaled("cardio", 5, 0.2).expect("registry dataset");
    let queries = queries_for(&ds.x);
    // Crossover 0 keeps every index on the brute-force GEMM path so the
    // batched norm-trick kernels carry the whole run.
    let (train_1, query_1) = fit_and_score(DistanceBackend::Gemm, Some(0), 1, &ds.x, &queries);
    assert!(train_1.as_slice().iter().all(|v| v.is_finite()));
    assert!(query_1.as_slice().iter().all(|v| v.is_finite()));
    for workers in [2usize, 8] {
        let (train_w, query_w) =
            fit_and_score(DistanceBackend::Gemm, Some(0), workers, &ds.x, &queries);
        assert_eq!(
            train_1.as_slice(),
            train_w.as_slice(),
            "gemm training scores differ at n_workers={workers}"
        );
        assert_eq!(
            query_1.as_slice(),
            query_w.as_slice(),
            "gemm query scores differ at n_workers={workers}"
        );
    }
}

#[test]
fn gemm_backend_preserves_outlier_ranking() {
    // Gemm scores differ from the scalar reference only in the last bits;
    // the detected-outlier ordering must agree with blocked on a dataset
    // with labelled anomalies.
    let ds = registry::load_scaled("cardio", 9, 0.2).expect("registry dataset");
    let queries = queries_for(&ds.x);
    let (train_b, _) = fit_and_score(DistanceBackend::Blocked, None, 1, &ds.x, &queries);
    let (train_g, _) = fit_and_score(DistanceBackend::Gemm, Some(0), 1, &ds.x, &queries);
    // Per-model Spearman-free check: top decile by mean score overlaps.
    let n = train_b.nrows();
    let mean = |m: &Matrix| -> Vec<f64> {
        (0..m.nrows())
            .map(|i| m.row(i).iter().sum::<f64>() / m.ncols() as f64)
            .collect()
    };
    let top = |scores: &[f64]| -> std::collections::HashSet<usize> {
        suod_linalg::rank::argsort_desc(scores)
            .into_iter()
            .take((n / 10).max(5))
            .collect()
    };
    let (tb, tg) = (top(&mean(&train_b)), top(&mean(&train_g)));
    let overlap = tb.intersection(&tg).count() as f64 / tb.len() as f64;
    assert!(
        overlap >= 0.9,
        "gemm top-decile overlap with blocked too low: {overlap}"
    );
}

#[test]
fn crossover_knob_changes_data_structure_not_scores() {
    let ds = registry::load_scaled("pima", 3, 0.4).expect("registry dataset");
    let queries = queries_for(&ds.x);
    // Tree everywhere, brute everywhere, and the tuned default must all
    // produce the same bits for a bit-identical backend: KD-tree results
    // are exact and blocked brute force matches the scalar reference.
    let (train_d, query_d) = fit_and_score(DistanceBackend::Blocked, None, 2, &ds.x, &queries);
    for crossover in [0usize, usize::MAX] {
        let (train_c, query_c) = fit_and_score(
            DistanceBackend::Blocked,
            Some(crossover),
            2,
            &ds.x,
            &queries,
        );
        assert_eq!(
            train_d.as_slice(),
            train_c.as_slice(),
            "training scores differ at crossover={crossover}"
        );
        assert_eq!(
            query_d.as_slice(),
            query_c.as_slice(),
            "query scores differ at crossover={crossover}"
        );
    }
}

#[test]
fn mixed_precision_is_deterministic_across_worker_counts() {
    let ds = registry::load_scaled("cardio", 5, 0.2).expect("registry dataset");
    let queries = queries_for(&ds.x);
    let (train_1, query_1) = fit_and_score_precision(
        DistanceBackend::Gemm,
        Some(0),
        Precision::Mixed,
        1,
        &ds.x,
        &queries,
    );
    assert!(train_1.as_slice().iter().all(|v| v.is_finite()));
    assert!(query_1.as_slice().iter().all(|v| v.is_finite()));
    for workers in [2usize, 8] {
        let (train_w, query_w) = fit_and_score_precision(
            DistanceBackend::Gemm,
            Some(0),
            Precision::Mixed,
            workers,
            &ds.x,
            &queries,
        );
        assert_eq!(
            train_1.as_slice(),
            train_w.as_slice(),
            "mixed training scores differ at n_workers={workers}"
        );
        assert_eq!(
            query_1.as_slice(),
            query_w.as_slice(),
            "mixed query scores differ at n_workers={workers}"
        );
    }
}

#[test]
fn mixed_precision_preserves_outlier_ranking() {
    // Mixed mode rounds each coordinate to f32 before the norm-trick
    // contraction; scores move within the documented error bound, so
    // the detected-outlier ordering must agree with the exact f64 path.
    let ds = registry::load_scaled("cardio", 9, 0.2).expect("registry dataset");
    let queries = queries_for(&ds.x);
    let (train_f64, _) = fit_and_score(DistanceBackend::Gemm, Some(0), 1, &ds.x, &queries);
    let (train_mixed, _) = fit_and_score_precision(
        DistanceBackend::Gemm,
        Some(0),
        Precision::Mixed,
        1,
        &ds.x,
        &queries,
    );
    let n = train_f64.nrows();
    let mean = |m: &Matrix| -> Vec<f64> {
        (0..m.nrows())
            .map(|i| m.row(i).iter().sum::<f64>() / m.ncols() as f64)
            .collect()
    };
    let top = |scores: &[f64]| -> std::collections::HashSet<usize> {
        suod_linalg::rank::argsort_desc(scores)
            .into_iter()
            .take((n / 10).max(5))
            .collect()
    };
    let (mean_f64, mean_mixed) = (mean(&train_f64), mean(&train_mixed));
    let (tf, tm) = (top(&mean_f64), top(&mean_mixed));
    let overlap = tf.intersection(&tm).count() as f64 / tf.len() as f64;
    assert!(
        overlap >= 0.9,
        "mixed top-decile overlap with f64 too low: {overlap}"
    );
    // Detection quality against the labelled anomalies must survive the
    // f32-storage rounding.
    let auc_f64 = suod_metrics::roc_auc(&ds.y, &mean_f64).expect("labelled dataset");
    let auc_mixed = suod_metrics::roc_auc(&ds.y, &mean_mixed).expect("labelled dataset");
    assert!(
        (auc_f64 - auc_mixed).abs() < 0.01,
        "mixed ROC-AUC drifted: f64 {auc_f64} vs mixed {auc_mixed}"
    );
}

#[test]
fn mixed_run_reports_precision_and_emits_lane_counters() {
    let ds = registry::load_scaled("cardio", 5, 0.15).expect("registry dataset");
    let recorder = Arc::new(RecordingObserver::new());
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .kernel(
            KernelConfig::default()
                .with_backend(DistanceBackend::Gemm)
                .with_precision(Precision::Mixed)
                .with_kdtree_crossover_dim(0),
        )
        .observer(recorder.clone())
        .seed(7)
        .build()
        .expect("valid config");
    model.fit(&ds.x).expect("fit succeeds");
    let features = model.diagnostics().expect("fitted").cpu_features();
    assert_eq!(features.precision, Precision::Mixed);
    let trace = recorder.trace();
    assert!(
        trace.counter(Counter::MixedKernel) > 0,
        "mixed run should record mixed kernel invocations"
    );
    // Which lane ran is host-dependent; that *a* lane ran is not.
    assert!(
        trace.counter(Counter::SimdKernel) + trace.counter(Counter::ScalarKernel) > 0,
        "run should record a micro-kernel lane"
    );
    assert_eq!(
        trace.counter(Counter::SimdKernel) > 0,
        features.simd_lane == SimdLane::Avx2,
        "lane counters should match the detected lane"
    );
}

#[test]
fn gemm_run_emits_kernel_counters() {
    let ds = registry::load_scaled("cardio", 5, 0.15).expect("registry dataset");
    let recorder = Arc::new(RecordingObserver::new());
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .kernel(
            KernelConfig::default()
                .with_backend(DistanceBackend::Gemm)
                .with_kdtree_crossover_dim(0),
        )
        .observer(recorder.clone())
        .seed(7)
        .build()
        .expect("valid config");
    model.fit(&ds.x).expect("fit succeeds");
    let trace = recorder.trace();
    assert!(
        trace.counter(Counter::GemmTile) > 0,
        "gemm run should record gemm tiles"
    );
    assert!(
        trace.counter(Counter::PackedPanel) > 0,
        "gemm run should record packed panels"
    );
    assert_eq!(
        trace.counter(Counter::KernelFallback),
        0,
        "Euclidean-only pool should never fall back"
    );
}
