//! Model-cost forecasting (`C_cost` in the paper).
//!
//! Two implementations of [`CostModel`]:
//!
//! * [`AnalyticCostModel`] — closed-form complexity estimates per
//!   algorithm family. Zero training required; ships as the default.
//! * [`ForestCostPredictor`] — the paper's approach: a random forest
//!   regressor trained on measured `(task, dataset) -> time` samples.
//!   §3.5 reports Spearman r_s > 0.9 between predicted and true cost
//!   ranks under 10-fold cross-validation; the
//!   `cost_predictor_cv` bench binary reproduces that validation.
//!
//! Both assign the **maximum** cost to [`AlgorithmFamily::Unknown`], as
//! the paper prescribes, "to prevent over-optimistic scheduling".

use crate::meta::DatasetMeta;
use crate::{AlgorithmFamily, Error, Result};
use suod_supervised::{RandomForestRegressor, Regressor};

/// A schedulable model: its family plus a scalar complexity knob
/// (`n_neighbors` for kNN/LOF/ABOD/LoOP, `n_estimators` for
/// iForest/Feature Bagging, `n_clusters` for CBLOF, `10 * nu` for OCSVM —
/// the SMO warm-start costs `O(nu n^2 d)`), and an implementation-specific
/// cost `weight` (e.g. a Minkowski-metric LOF pays several times the
/// per-distance cost of the Euclidean one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskDescriptor {
    /// Algorithm family.
    pub family: AlgorithmFamily,
    /// Family-specific scale knob (see type docs); use 1.0 when the family
    /// has no meaningful knob.
    pub knob: f64,
    /// Multiplicative cost factor for intra-family variants (default 1.0).
    pub weight: f64,
    /// `true` when the task's neighbour graph is served by a pool-shared
    /// [`NeighborCache`](suod_linalg::NeighborCache) instead of being
    /// rebuilt — the dominant `O(n^2 d)` index/sweep term vanishes, and a
    /// cost model that keeps forecasting it would make BPS rebalance the
    /// pool against phantom work.
    pub cached_neighbors: bool,
    /// `true` when the task's neighbour graph is answered by the
    /// approximate HNSW backend — the index/sweep term drops from
    /// `O(n^2 d)` to `O(n log n · d)`, and BPS should not treat an
    /// approximate proximity fit as the pool's heavyweight.
    pub approx_neighbors: bool,
}

impl TaskDescriptor {
    /// Creates a descriptor with unit weight and no neighbour-cache hit.
    pub fn new(family: AlgorithmFamily, knob: f64) -> Self {
        Self {
            family,
            knob: knob.max(1.0),
            weight: 1.0,
            cached_neighbors: false,
            approx_neighbors: false,
        }
    }

    /// Sets the intra-family cost weight (clamped to be positive).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight.max(1e-6);
        self
    }

    /// Marks whether this task's neighbour graph comes from a shared
    /// cache (see the field docs on `cached_neighbors`).
    pub fn with_cached_neighbors(mut self, cached: bool) -> Self {
        self.cached_neighbors = cached;
        self
    }

    /// Marks whether this task's neighbour graph is served by the
    /// approximate HNSW backend (see the field docs on
    /// `approx_neighbors`).
    pub fn with_approx_neighbors(mut self, approx: bool) -> Self {
        self.approx_neighbors = approx;
        self
    }

    /// Full feature vector for the learned predictor: dataset meta-features
    /// followed by the knob, the weight, the cached-neighbors flag, the
    /// approx-neighbors flag, and a one-hot family embedding.
    pub fn feature_vector(&self, meta: &DatasetMeta) -> Vec<f64> {
        let mut v = meta.feature_vector();
        v.push(self.knob);
        v.push(self.weight);
        v.push(f64::from(self.cached_neighbors));
        v.push(f64::from(self.approx_neighbors));
        let mut onehot = vec![0.0; 12];
        onehot[self.family.index()] = 1.0;
        v.extend(onehot);
        v
    }
}

/// Forecasts the execution cost of fitting (or predicting with) a model on
/// a dataset. Units are arbitrary: only the induced *ranking* matters for
/// BPS (ranks transfer across hardware, §3.5).
pub trait CostModel: Send + Sync {
    /// Predicted cost for one task on one dataset.
    fn predict_cost(&self, task: &TaskDescriptor, meta: &DatasetMeta) -> f64;

    /// Predicted costs for a batch of tasks on the same dataset, applying
    /// the paper's unknown-gets-max rule in one place.
    fn predict_costs(&self, tasks: &[TaskDescriptor], meta: &DatasetMeta) -> Vec<f64> {
        let raw: Vec<f64> = tasks.iter().map(|t| self.predict_cost(t, meta)).collect();
        let max = raw.iter().copied().fold(f64::MIN, f64::max);
        tasks
            .iter()
            .zip(&raw)
            .map(|(t, &c)| {
                if t.family == AlgorithmFamily::Unknown {
                    max
                } else {
                    c
                }
            })
            .collect()
    }
}

/// Closed-form per-family complexity estimates.
///
/// Constants are unitless scale factors **calibrated against measured fit
/// times of this repository's implementations** (see the probe data in
/// EXPERIMENTS.md): kNN/LOF/LoOP ~ n^2 d; ABOD ~ n^2 d + n k^2 d; OCSVM ~
/// nu n^2 d (the SMO warm-start dominates); CBLOF ~ n d k with a small
/// constant (k-means converges in few iterations); HBOS ~ n d; iForest ~
/// t(psi log psi) + n t log psi; Feature Bagging ~ t LOF runs on half the
/// features. The task's `weight` handles intra-family variants (e.g.
/// Minkowski distances cost several Euclidean distances).
#[derive(Debug, Clone, Default)]
pub struct AnalyticCostModel;

impl AnalyticCostModel {
    /// Creates the analytic model.
    pub fn new() -> Self {
        Self
    }
}

impl CostModel for AnalyticCostModel {
    fn predict_cost(&self, task: &TaskDescriptor, meta: &DatasetMeta) -> f64 {
        let n = meta.n_samples as f64;
        let d = meta.n_features as f64;
        let k = task.knob;
        // Proximity families split into the index-build/sweep term
        // (O(n^2 d) exact, O(n log n d) approximate, skipped entirely on
        // a neighbour-cache hit) and the per-model post-processing that
        // always runs. The 8.0 factor covers the HNSW graph's beam-search
        // constant (ef candidates x M edges per hop).
        let index_sweep = if task.cached_neighbors {
            0.0
        } else if task.approx_neighbors {
            n * n.ln().max(1.0) * d * 8.0
        } else {
            n * n * d
        };
        let base = match task.family {
            AlgorithmFamily::Knn => index_sweep + n * k,
            AlgorithmFamily::Lof => index_sweep + n * k,
            AlgorithmFamily::Loop => index_sweep + n * k,
            AlgorithmFamily::Abod => index_sweep + n * k * k * d,
            AlgorithmFamily::Hbos => n * d,
            AlgorithmFamily::IForest => {
                let psi = 256f64.min(n);
                k * psi * psi.ln().max(1.0) + n * k * psi.ln().max(1.0)
            }
            AlgorithmFamily::Cblof => 10.0 * n * d * k,
            // Covariance accumulation O(n d^2) + Jacobi O(d^3 sweeps).
            AlgorithmFamily::Pca => n * d * d + 30.0 * d * d * d,
            // k members x n samples x sqrt(d) sparse projection entries.
            AlgorithmFamily::Loda => k * n * d.sqrt(),
            // knob = 10 * nu; warm start costs O(nu n^2 d) plus the SMO
            // iteration budget.
            AlgorithmFamily::Ocsvm => (k / 10.0) * n * n * d + 0.3 * n * n * d,
            AlgorithmFamily::FeatureBagging => k * n * n * d * 0.9,
            // Unknown handled in predict_costs; locally return a huge value
            // so single-task queries are also pessimistic.
            AlgorithmFamily::Unknown => f64::MAX / 4.0,
        };
        base * task.weight
    }
}

/// Expands per-model prediction costs into the (model × row-chunk) task
/// cost vector the predict-phase scheduler balances, model-major: task
/// `m * chunks + c` is model `m` scoring chunk `c`, costed as the model's
/// forecast scaled by the chunk's share of the query rows.
///
/// This is the shared cost shape for both offline `decision_function`
/// scheduling and the serving layer's micro-batch forecasts, so batch
/// sizing and task placement agree on what a chunk is worth.
pub fn predict_chunk_costs(model_costs: &[f64], chunk_lens: &[usize]) -> Vec<f64> {
    let total_rows: usize = chunk_lens.iter().sum();
    let denom = total_rows.max(1) as f64;
    let mut costs = Vec::with_capacity(model_costs.len() * chunk_lens.len());
    for &mc in model_costs {
        for &len in chunk_lens {
            costs.push(mc * len as f64 / denom);
        }
    }
    costs
}

/// Forecast cost (in the cost model's unitless scale) of scoring a batch
/// of `batch_rows` query rows with models whose per-call costs were
/// derived at `reference_rows` rows: each model's prediction work is
/// row-proportional, so the batch costs the summed model costs scaled by
/// the row ratio. The serving layer uses this to cap micro-batch sizes
/// against a latency budget (calibrated to seconds by measured batches).
pub fn predict_batch_forecast(
    model_costs: &[f64],
    batch_rows: usize,
    reference_rows: usize,
) -> f64 {
    let per_ref: f64 = model_costs.iter().sum();
    per_ref * batch_rows as f64 / reference_rows.max(1) as f64
}

/// A training sample for [`ForestCostPredictor`]: a task, the dataset it
/// ran on, and the measured execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSample {
    /// The task that was measured.
    pub task: TaskDescriptor,
    /// Meta-features of the dataset it ran on.
    pub meta: DatasetMeta,
    /// Measured execution time (seconds; any consistent unit works).
    pub seconds: f64,
}

/// Random-forest cost predictor trained on measured timings — the paper's
/// `C_cost`.
///
/// Targets are log-transformed during training (costs span orders of
/// magnitude) and exponentiated back at prediction time.
#[derive(Debug, Clone)]
pub struct ForestCostPredictor {
    forest: RandomForestRegressor,
    fitted: bool,
}

impl ForestCostPredictor {
    /// Creates an untrained predictor with `n_trees` forest members.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        // The feature space is small and highly structured (sizes + knob +
        // one-hot family), so trees examine most features per split —
        // sqrt-feature subsampling would often hide the family bits that
        // carry the signal.
        let forest = RandomForestRegressor::new(n_trees.max(1), seed)
            .with_max_depth(14)
            .with_max_features_fraction(0.8)
            .expect("0.8 is a valid fraction");
        Self {
            forest,
            fitted: false,
        }
    }

    /// Trains on measured timing samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty corpus or
    /// non-positive timings, and propagates regression failures.
    pub fn fit(&mut self, samples: &[CostSample]) -> Result<()> {
        if samples.is_empty() {
            return Err(Error::InvalidParameter(
                "cost predictor needs a non-empty training corpus".into(),
            ));
        }
        if samples
            .iter()
            .any(|s| s.seconds.is_nan() || s.seconds <= 0.0)
        {
            return Err(Error::InvalidParameter(
                "cost samples must have positive timings".into(),
            ));
        }
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| s.task.feature_vector(&s.meta))
            .collect();
        let x = suod_linalg::Matrix::from_rows(&rows)
            .map_err(|e| Error::InvalidParameter(e.to_string()))?;
        let y: Vec<f64> = samples.iter().map(|s| s.seconds.ln()).collect();
        self.forest.fit(&x, &y)?;
        self.fitted = true;
        Ok(())
    }

    /// `true` once trained.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

impl CostModel for ForestCostPredictor {
    fn predict_cost(&self, task: &TaskDescriptor, meta: &DatasetMeta) -> f64 {
        if !self.fitted {
            // Untrained predictor: pessimistic constant keeps BPS valid
            // (all-equal costs degrade to generic scheduling, never panic).
            return 1.0;
        }
        let row = task.feature_vector(meta);
        let x = suod_linalg::Matrix::from_rows(&[row]).expect("single fixed-size row");
        match self.forest.predict(&x) {
            Ok(p) => p[0].exp(),
            Err(_) => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: usize, d: usize) -> DatasetMeta {
        DatasetMeta::from_shape(n, d)
    }

    #[test]
    fn analytic_orders_families_sensibly() {
        let m = meta(5000, 20);
        let model = AnalyticCostModel::new();
        let knn = model.predict_cost(&TaskDescriptor::new(AlgorithmFamily::Knn, 10.0), &m);
        let hbos = model.predict_cost(&TaskDescriptor::new(AlgorithmFamily::Hbos, 10.0), &m);
        let iforest = model.predict_cost(&TaskDescriptor::new(AlgorithmFamily::IForest, 100.0), &m);
        assert!(knn > 100.0 * hbos, "kNN should dwarf HBOS");
        assert!(knn > iforest, "kNN should exceed iForest");
    }

    #[test]
    fn analytic_scales_with_data_size() {
        let model = AnalyticCostModel::new();
        let t = TaskDescriptor::new(AlgorithmFamily::Lof, 20.0);
        let small = model.predict_cost(&t, &meta(100, 10));
        let large = model.predict_cost(&t, &meta(10_000, 10));
        assert!(large > 1000.0 * small);
    }

    #[test]
    fn unknown_gets_max_cost_in_batch() {
        let m = meta(1000, 10);
        let model = AnalyticCostModel::new();
        let tasks = vec![
            TaskDescriptor::new(AlgorithmFamily::Hbos, 10.0),
            TaskDescriptor::new(AlgorithmFamily::Unknown, 1.0),
            TaskDescriptor::new(AlgorithmFamily::Knn, 10.0),
        ];
        let costs = model.predict_costs(&tasks, &m);
        let max = costs.iter().copied().fold(f64::MIN, f64::max);
        assert_eq!(costs[1], max);
    }

    #[test]
    fn knob_increases_cost() {
        let m = meta(2000, 15);
        let model = AnalyticCostModel::new();
        let lo = model.predict_cost(&TaskDescriptor::new(AlgorithmFamily::Abod, 5.0), &m);
        let hi = model.predict_cost(&TaskDescriptor::new(AlgorithmFamily::Abod, 100.0), &m);
        assert!(hi > lo);
    }

    #[test]
    fn forest_predictor_learns_scaling() {
        // Synthesize a corpus from the analytic model and check the forest
        // recovers the ordering on held-out shapes.
        let analytic = AnalyticCostModel::new();
        let mut samples = Vec::new();
        for &n in &[200usize, 500, 1000, 2000, 4000] {
            for &d in &[5usize, 10, 20, 40] {
                let m = meta(n, d);
                for family in AlgorithmFamily::known() {
                    let t = TaskDescriptor::new(family, 20.0);
                    samples.push(CostSample {
                        task: t,
                        meta: m,
                        seconds: analytic.predict_cost(&t, &m).max(1e-9) * 1e-9,
                    });
                }
            }
        }
        let mut predictor = ForestCostPredictor::new(30, 0);
        predictor.fit(&samples).unwrap();

        let held = meta(3000, 15);
        let tasks: Vec<TaskDescriptor> = AlgorithmFamily::known()
            .iter()
            .map(|&f| TaskDescriptor::new(f, 20.0))
            .collect();
        let truth: Vec<f64> = tasks
            .iter()
            .map(|t| analytic.predict_cost(t, &held))
            .collect();
        let pred = predictor.predict_costs(&tasks, &held);
        let rho = suod_metrics_spearman(&truth, &pred);
        assert!(rho > 0.7, "spearman {rho}");
    }

    /// Minimal local Spearman (avoids a dev-dependency cycle on
    /// suod-metrics).
    fn suod_metrics_spearman(a: &[f64], b: &[f64]) -> f64 {
        let ra = suod_linalg::rank::average_ranks(a);
        let rb = suod_linalg::rank::average_ranks(b);
        let ma = suod_linalg::stats::mean(&ra);
        let mb = suod_linalg::stats::mean(&rb);
        let cov: f64 = ra.iter().zip(&rb).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
        let sa: f64 = ra.iter().map(|&x| (x - ma) * (x - ma)).sum::<f64>().sqrt();
        let sb: f64 = rb.iter().map(|&y| (y - mb) * (y - mb)).sum::<f64>().sqrt();
        cov / (sa * sb).max(1e-300)
    }

    #[test]
    fn forest_predictor_validates_corpus() {
        let mut p = ForestCostPredictor::new(5, 0);
        assert!(p.fit(&[]).is_err());
        let bad = CostSample {
            task: TaskDescriptor::new(AlgorithmFamily::Knn, 5.0),
            meta: meta(10, 2),
            seconds: 0.0,
        };
        assert!(p.fit(&[bad]).is_err());
    }

    #[test]
    fn untrained_forest_is_pessimistic_but_safe() {
        let p = ForestCostPredictor::new(5, 0);
        assert!(!p.is_fitted());
        let c = p.predict_cost(
            &TaskDescriptor::new(AlgorithmFamily::Knn, 5.0),
            &meta(10, 2),
        );
        assert_eq!(c, 1.0);
    }

    #[test]
    fn knob_clamped_to_one() {
        let t = TaskDescriptor::new(AlgorithmFamily::Knn, 0.0);
        assert_eq!(t.knob, 1.0);
    }

    #[test]
    fn feature_vector_includes_onehot() {
        let t = TaskDescriptor::new(AlgorithmFamily::Abod, 7.0);
        let v = t.feature_vector(&meta(10, 3));
        assert_eq!(v.len(), DatasetMeta::FEATURE_LEN + 4 + 12);
        assert_eq!(v[DatasetMeta::FEATURE_LEN], 7.0);
        assert_eq!(v[DatasetMeta::FEATURE_LEN + 1], 1.0); // default weight
        assert_eq!(v[DatasetMeta::FEATURE_LEN + 2], 0.0); // not cached
        assert_eq!(v[DatasetMeta::FEATURE_LEN + 3], 0.0); // exact neighbors
        assert_eq!(
            v[DatasetMeta::FEATURE_LEN + 4 + AlgorithmFamily::Abod.index()],
            1.0
        );
        let cached = t.with_cached_neighbors(true);
        assert_eq!(
            cached.feature_vector(&meta(10, 3))[DatasetMeta::FEATURE_LEN + 2],
            1.0
        );
        let approx = t.with_approx_neighbors(true);
        assert_eq!(
            approx.feature_vector(&meta(10, 3))[DatasetMeta::FEATURE_LEN + 3],
            1.0
        );
    }

    #[test]
    fn cached_neighbors_discounts_index_cost() {
        let m = meta(5000, 20);
        let model = AnalyticCostModel::new();
        for family in [
            AlgorithmFamily::Knn,
            AlgorithmFamily::Lof,
            AlgorithmFamily::Loop,
            AlgorithmFamily::Abod,
        ] {
            let t = TaskDescriptor::new(family, 10.0);
            let cold = model.predict_cost(&t, &m);
            let warm = model.predict_cost(&t.with_cached_neighbors(true), &m);
            assert!(
                warm < cold / 50.0,
                "{family:?}: warm {warm} should be a tiny fraction of cold {cold}"
            );
            assert!(
                warm > 0.0,
                "{family:?}: post-processing still costs something"
            );
        }
        // Non-proximity families are unaffected by the flag.
        let t = TaskDescriptor::new(AlgorithmFamily::Hbos, 10.0);
        assert_eq!(
            model.predict_cost(&t, &m),
            model.predict_cost(&t.with_cached_neighbors(true), &m)
        );
    }

    #[test]
    fn approx_neighbors_discounts_index_cost() {
        let m = meta(100_000, 20);
        let model = AnalyticCostModel::new();
        for family in [
            AlgorithmFamily::Knn,
            AlgorithmFamily::Lof,
            AlgorithmFamily::Loop,
            AlgorithmFamily::Abod,
        ] {
            let t = TaskDescriptor::new(family, 10.0);
            let exact = model.predict_cost(&t, &m);
            let approx = model.predict_cost(&t.with_approx_neighbors(true), &m);
            assert!(
                approx < exact / 100.0,
                "{family:?}: approx {approx} should be far below exact {exact} at n=100k"
            );
            // A cache hit still beats an approximate rebuild.
            let cached = model.predict_cost(&t.with_cached_neighbors(true), &m);
            assert!(cached < approx);
        }
        // Non-proximity families are unaffected by the flag.
        let t = TaskDescriptor::new(AlgorithmFamily::Hbos, 10.0);
        assert_eq!(
            model.predict_cost(&t, &m),
            model.predict_cost(&t.with_approx_neighbors(true), &m)
        );
    }

    #[test]
    fn predict_chunk_costs_are_model_major_row_shares() {
        let costs = predict_chunk_costs(&[4.0, 1.0], &[256, 256, 128]);
        assert_eq!(costs.len(), 6);
        // Model 0 over three chunks, then model 1.
        assert!((costs[0] - 4.0 * 256.0 / 640.0).abs() < 1e-12);
        assert!((costs[2] - 4.0 * 128.0 / 640.0).abs() < 1e-12);
        assert!((costs[3] - 1.0 * 256.0 / 640.0).abs() < 1e-12);
        // Each model's chunk shares sum back to its full cost.
        let m0: f64 = costs[..3].iter().sum();
        let m1: f64 = costs[3..].iter().sum();
        assert!((m0 - 4.0).abs() < 1e-12 && (m1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_batch_forecast_scales_with_rows() {
        let unit = predict_batch_forecast(&[2.0, 3.0], 100, 100);
        assert!((unit - 5.0).abs() < 1e-12);
        assert!((predict_batch_forecast(&[2.0, 3.0], 50, 100) - 2.5).abs() < 1e-12);
        // Degenerate reference row counts never divide by zero.
        assert!(predict_batch_forecast(&[1.0], 10, 0).is_finite());
    }
}
