//! XGBOD-style semi-supervised detection (Zhao & Hryniewicki, IJCNN
//! 2018) — the supervised downstream framework the paper names as future
//! work for the end-to-end SUOD pipeline (§5).
//!
//! XGBOD augments the raw feature space with **unsupervised outlier
//! scores** from a heterogeneous detector pool (here: a fitted
//! [`Suod`] ensemble, so all three acceleration modules apply to the
//! representation-learning stage) and trains a supervised model on the
//! augmented features using whatever labels exist. The original paper
//! uses XGBoost; this reproduction uses the workspace's random-forest
//! regressor on 0/1 labels, which preserves the framework's structure.

use crate::suod::{Suod, SuodBuilder};
use crate::{Error, Result};
use suod_linalg::Matrix;
use suod_supervised::{RandomForestRegressor, Regressor};

/// Semi-supervised detector: SUOD score augmentation + supervised model.
///
/// # Example
///
/// ```
/// use suod::prelude::*;
/// use suod::xgbod::Xgbod;
///
/// # fn main() -> Result<(), suod::Error> {
/// let ds = suod_datasets::registry::load_scaled("pima", 3, 0.3).unwrap();
/// let builder = Suod::builder().base_estimators(vec![
///     ModelSpec::Knn { n_neighbors: 5, method: KnnMethod::Largest },
///     ModelSpec::Hbos { n_bins: 10, tolerance: 0.3 },
/// ]);
/// let mut clf = Xgbod::new(builder, 30)?;
/// clf.fit(&ds.x, &ds.y)?;
/// let scores = clf.decision_function(&ds.x)?;
/// assert_eq!(scores.len(), ds.n_samples());
/// # Ok(())
/// # }
/// ```
pub struct Xgbod {
    suod: Suod,
    regressor: RandomForestRegressor,
    fitted: bool,
}

impl std::fmt::Debug for Xgbod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Xgbod")
            .field("n_models", &self.suod.n_models())
            .field("n_trees", &self.regressor.n_estimators())
            .field("fitted", &self.fitted)
            .finish()
    }
}

impl Xgbod {
    /// Creates an XGBOD pipeline from a SUOD builder (the unsupervised
    /// representation stage) and a supervised forest size.
    ///
    /// # Errors
    ///
    /// Propagates SUOD configuration validation.
    pub fn new(builder: SuodBuilder, n_trees: usize) -> Result<Self> {
        let suod = builder.build()?;
        Ok(Self {
            suod,
            regressor: RandomForestRegressor::new(n_trees.max(1), 77).with_max_depth(10),
            fitted: false,
        })
    }

    /// Fits the unsupervised pool, augments features with its training
    /// scores, and trains the supervised stage on the labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when labels and rows mismatch,
    /// plus propagated SUOD/regressor failures.
    pub fn fit(&mut self, x: &Matrix, y: &[i32]) -> Result<&mut Self> {
        if y.len() != x.nrows() {
            return Err(Error::InvalidConfig(format!(
                "{} labels for {} rows",
                y.len(),
                x.nrows()
            )));
        }
        self.suod.fit(x)?;
        let augmented = x.hstack(&self.suod.training_scores()?)?;
        let targets: Vec<f64> = y.iter().map(|&l| f64::from(l != 0)).collect();
        self.regressor.fit(&augmented, &targets)?;
        self.fitted = true;
        Ok(self)
    }

    /// Outlyingness scores in `[0, 1]`-ish range (supervised fraud
    /// probability estimates over the augmented features).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::NotFitted);
        }
        let augmented = x.hstack(&self.suod.decision_function(x)?)?;
        Ok(self.regressor.predict(&augmented)?)
    }

    /// The underlying fitted SUOD ensemble.
    pub fn suod(&self) -> &Suod {
        &self.suod
    }

    /// `true` once `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use suod_detectors::KnnMethod;

    fn builder() -> SuodBuilder {
        Suod::builder()
            .base_estimators(vec![
                ModelSpec::Knn {
                    n_neighbors: 5,
                    method: KnnMethod::Largest,
                },
                ModelSpec::Hbos {
                    n_bins: 10,
                    tolerance: 0.3,
                },
                ModelSpec::IForest {
                    n_estimators: 20,
                    max_features: 0.8,
                },
            ])
            .seed(5)
    }

    fn labeled_data() -> (Matrix, Vec<i32>) {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 * 0.2, (i / 10) as f64 * 0.2])
            .collect();
        let mut y = vec![0; 60];
        for i in 0..6 {
            rows.push(vec![8.0 + i as f64 * 0.1, 8.0]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn outperforms_on_labeled_outliers() {
        let (x, y) = labeled_data();
        let mut clf = Xgbod::new(builder(), 30).unwrap();
        clf.fit(&x, &y).unwrap();
        let scores = clf.decision_function(&x).unwrap();
        let auc = suod_metrics::roc_auc(&y, &scores).unwrap();
        assert!(auc > 0.95, "XGBOD train AUC {auc}");
        assert!(clf.is_fitted());
        assert!(clf.suod().is_fitted());
    }

    #[test]
    fn label_length_checked() {
        let (x, _) = labeled_data();
        let mut clf = Xgbod::new(builder(), 10).unwrap();
        assert!(matches!(
            clf.fit(&x, &[0, 1]).unwrap_err(),
            Error::InvalidConfig(_)
        ));
    }

    #[test]
    fn not_fitted_error() {
        let clf = Xgbod::new(builder(), 10).unwrap();
        assert!(matches!(
            clf.decision_function(&Matrix::zeros(1, 2)).unwrap_err(),
            Error::NotFitted
        ));
    }

    #[test]
    fn generalizes_to_new_points() {
        let (x, y) = labeled_data();
        let mut clf = Xgbod::new(builder(), 30).unwrap();
        clf.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5], vec![8.2, 8.1]]).unwrap();
        let s = clf.decision_function(&q).unwrap();
        assert!(s[1] > s[0], "{s:?}");
    }
}
