//! Ensemble score combination (Aggarwal & Sathe 2017).
//!
//! The full-system evaluation (Table 4) reports two combined scores over
//! the heterogeneous model pool: the **average** of standardized base
//! scores (`Avg_`) and the **maximum of average** two-phase scheme
//! (`MOA_`). `maximization` and `aom` (average of maximum) complete the
//! standard family.
//!
//! All combiners operate on a score matrix of shape `n_samples x n_models`
//! and z-score standardize each model's column first (the PyOD convention),
//! so models with different score scales combine meaningfully.

use crate::{Error, Result};
use suod_linalg::stats::zscore_in_place;
use suod_linalg::Matrix;

/// Which combination rule to apply; see the free functions for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combiner {
    /// Mean of standardized scores.
    #[default]
    Average,
    /// Max of standardized scores.
    Maximization,
    /// Average-of-maximum over buckets.
    Aom,
    /// Maximum-of-average over buckets (the paper's `MOA_`).
    Moa,
}

impl Combiner {
    /// Applies this rule. For [`Combiner::Aom`] / [`Combiner::Moa`] the
    /// model columns are split into `n_buckets` contiguous buckets.
    ///
    /// # Errors
    ///
    /// See [`average`] / [`aom`] for conditions.
    pub fn combine(&self, scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
        match self {
            Combiner::Average => average(scores),
            Combiner::Maximization => maximization(scores),
            Combiner::Aom => aom(scores, n_buckets),
            Combiner::Moa => moa(scores, n_buckets),
        }
    }
}

fn standardized_columns(scores: &Matrix) -> Result<Matrix> {
    if scores.nrows() == 0 || scores.ncols() == 0 {
        return Err(Error::Empty("score combination"));
    }
    let mut out = scores.clone();
    for c in 0..scores.ncols() {
        let mut col = scores.col(c);
        zscore_in_place(&mut col);
        for (r, v) in col.into_iter().enumerate() {
            out.set(r, c, v);
        }
    }
    Ok(out)
}

/// Mean of standardized base-model scores per sample.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty score matrix.
pub fn average(scores: &Matrix) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    Ok(z.rows_iter()
        .map(|row| row.iter().sum::<f64>() / row.len() as f64)
        .collect())
}

/// Maximum of standardized base-model scores per sample.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty score matrix.
pub fn maximization(scores: &Matrix) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    Ok(z.rows_iter()
        .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect())
}

fn bucket_ranges(n_models: usize, n_buckets: usize) -> Result<Vec<(usize, usize)>> {
    if n_buckets == 0 {
        return Err(Error::Undefined("bucket combination with 0 buckets"));
    }
    let n_buckets = n_buckets.min(n_models);
    let base = n_models / n_buckets;
    let extra = n_models % n_buckets;
    let mut ranges = Vec::with_capacity(n_buckets);
    let mut start = 0;
    for b in 0..n_buckets {
        let len = base + usize::from(b < extra);
        ranges.push((start, start + len));
        start += len;
    }
    Ok(ranges)
}

/// Average-of-maximum: models are split into contiguous buckets, the max is
/// taken within each bucket, and the bucket maxima are averaged.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty score matrix and
/// [`Error::Undefined`] when `n_buckets == 0`.
pub fn aom(scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    let ranges = bucket_ranges(z.ncols(), n_buckets)?;
    Ok(z.rows_iter()
        .map(|row| {
            ranges
                .iter()
                .map(|&(s, e)| row[s..e].iter().copied().fold(f64::NEG_INFINITY, f64::max))
                .sum::<f64>()
                / ranges.len() as f64
        })
        .collect())
}

/// Maximum-of-average: models are split into contiguous buckets, the mean is
/// taken within each bucket, and the maximum bucket mean is reported. This
/// is the `MOA_` combiner of Table 4.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty score matrix and
/// [`Error::Undefined`] when `n_buckets == 0`.
pub fn moa(scores: &Matrix, n_buckets: usize) -> Result<Vec<f64>> {
    let z = standardized_columns(scores)?;
    let ranges = bucket_ranges(z.ncols(), n_buckets)?;
    Ok(z.rows_iter()
        .map(|row| {
            ranges
                .iter()
                .map(|&(s, e)| row[s..e].iter().sum::<f64>() / (e - s) as f64)
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 samples x 2 models with identical standardized columns.
    fn symmetric_scores() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 10.0], vec![2.0, 20.0]]).unwrap()
    }

    #[test]
    fn average_of_identical_rankings() {
        let avg = average(&symmetric_scores()).unwrap();
        // Both columns standardize to the same z-scores, so the average
        // equals the per-column z-score.
        assert!(avg[0] < avg[1] && avg[1] < avg[2]);
        assert!((avg[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn maximization_upper_bounds_average() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0], vec![2.0, 1.0]]).unwrap();
        let avg = average(&s).unwrap();
        let mx = maximization(&s).unwrap();
        for (a, m) in avg.iter().zip(&mx) {
            assert!(m >= a);
        }
    }

    #[test]
    fn single_bucket_moa_equals_average() {
        let s = symmetric_scores();
        let m = moa(&s, 1).unwrap();
        let a = average(&s).unwrap();
        for (x, y) in m.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn per_model_buckets_moa_equals_maximization() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0], vec![2.0, 1.0]]).unwrap();
        let m = moa(&s, 2).unwrap();
        let mx = maximization(&s).unwrap();
        for (x, y) in m.iter().zip(&mx) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn single_bucket_aom_equals_maximization() {
        let s = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 3.0]]).unwrap();
        let a = aom(&s, 1).unwrap();
        let mx = maximization(&s).unwrap();
        for (x, y) in a.iter().zip(&mx) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bucket_ranges_cover_all_models() {
        let ranges = bucket_ranges(10, 3).unwrap();
        assert_eq!(ranges, vec![(0, 4), (4, 7), (7, 10)]);
        let ranges = bucket_ranges(2, 5).unwrap(); // clamped
        assert_eq!(ranges.len(), 2);
    }

    #[test]
    fn zero_buckets_undefined() {
        assert!(aom(&symmetric_scores(), 0).is_err());
        assert!(moa(&symmetric_scores(), 0).is_err());
    }

    #[test]
    fn empty_scores_error() {
        assert!(average(&Matrix::zeros(0, 3)).is_err());
        assert!(maximization(&Matrix::zeros(3, 0)).is_err());
    }

    #[test]
    fn combiner_enum_dispatch() {
        let s = symmetric_scores();
        assert_eq!(
            Combiner::Average.combine(&s, 2).unwrap(),
            average(&s).unwrap()
        );
        assert_eq!(Combiner::Moa.combine(&s, 2).unwrap(), moa(&s, 2).unwrap());
        assert_eq!(Combiner::Aom.combine(&s, 2).unwrap(), aom(&s, 2).unwrap());
        assert_eq!(
            Combiner::Maximization.combine(&s, 2).unwrap(),
            maximization(&s).unwrap()
        );
    }
}
