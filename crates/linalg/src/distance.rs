//! Distance metrics and brute-force k-nearest-neighbour search.
//!
//! Every proximity-based detector in the zoo (kNN, average-kNN, LOF, LoOP,
//! ABOD's fast variant) needs "distances from query points to training
//! points" plus "the k smallest of them". [`KnnIndex`] centralizes that so
//! the detectors share one carefully tested implementation. The paper's LOF
//! grid varies the metric (`manhattan`, `euclidean`, `minkowski`), which
//! [`DistanceMetric`] models.

use crate::{Error, Matrix, Result};

/// Distance metric between feature vectors.
///
/// Matches the LOF hyperparameter grid in the paper's Table B.1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DistanceMetric {
    /// L2 distance.
    #[default]
    Euclidean,
    /// L1 distance.
    Manhattan,
    /// Lp distance with the given exponent `p >= 1`.
    Minkowski(f64),
}

impl DistanceMetric {
    /// Distance between two equally long vectors.
    ///
    /// # Panics
    ///
    /// Debug-asserts equal lengths.
    #[inline]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match *self {
            DistanceMetric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            DistanceMetric::Manhattan => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum(),
            DistanceMetric::Minkowski(p) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y).abs().powf(p))
                .sum::<f64>()
                .powf(1.0 / p),
        }
    }

    /// Parses the PyOD-style metric name used in the paper's model grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "euclidean" => Ok(DistanceMetric::Euclidean),
            "manhattan" => Ok(DistanceMetric::Manhattan),
            "minkowski" => Ok(DistanceMetric::Minkowski(3.0)),
            other => Err(Error::InvalidParameter(format!(
                "unknown distance metric `{other}`"
            ))),
        }
    }
}

/// Full pairwise distance matrix between the rows of `a` and the rows of `b`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances(a: &Matrix, b: &Matrix, metric: DistanceMetric) -> Result<Matrix> {
    pairwise_distances_parallel(a, b, metric, 1)
}

/// [`pairwise_distances`] chunked over row blocks of `a` across
/// `n_threads` scoped threads.
///
/// Each output row is computed by the same code path regardless of
/// chunking, so the result is **bit-identical** to the single-threaded
/// call for every `n_threads`.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when column counts differ.
pub fn pairwise_distances_parallel(
    a: &Matrix,
    b: &Matrix,
    metric: DistanceMetric,
    n_threads: usize,
) -> Result<Matrix> {
    if a.ncols() != b.ncols() {
        return Err(Error::ShapeMismatch {
            op: "pairwise_distances",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.nrows(), b.nrows());
    let cols = b.nrows();
    crate::parallel::par_row_blocks(out.as_mut_slice(), cols, n_threads, |rows, block| {
        for (offset, out_row) in block.chunks_mut(cols).enumerate() {
            let ra = a.row(rows.start + offset);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = metric.distance(ra, b.row(j));
            }
        }
    });
    Ok(out)
}

/// Self-distance matrix of `a`: equal to `pairwise_distances(a, a, m)`
/// but computes only the upper triangle and mirrors it, halving the
/// metric evaluations.
///
/// The mirror is exact: every supported metric is built from terms
/// symmetric in its arguments (`(x - y)^2`, `|x - y|`), so
/// `distance(u, v)` is bitwise equal to `distance(v, u)` and the result
/// matches the naive full computation bit-for-bit.
pub fn pairwise_distances_symmetric(a: &Matrix, metric: DistanceMetric) -> Matrix {
    pairwise_distances_symmetric_parallel(a, metric, 1)
}

/// [`pairwise_distances_symmetric`] with the upper-triangle rows chunked
/// across `n_threads` scoped threads (bit-identical for every
/// `n_threads`).
pub fn pairwise_distances_symmetric_parallel(
    a: &Matrix,
    metric: DistanceMetric,
    n_threads: usize,
) -> Matrix {
    let n = a.nrows();
    let mut out = Matrix::zeros(n, n);
    crate::parallel::par_row_blocks(out.as_mut_slice(), n.max(1), n_threads, |rows, block| {
        for (offset, out_row) in block.chunks_mut(n).enumerate() {
            let i = rows.start + offset;
            let ra = a.row(i);
            for (j, o) in out_row.iter_mut().enumerate().skip(i) {
                *o = metric.distance(ra, a.row(j));
            }
        }
    });
    // Mirror the strict upper triangle; cheap copies, no metric calls.
    for i in 1..n {
        for j in 0..i {
            let d = out.get(j, i);
            out.set(i, j, d);
        }
    }
    out
}

/// A neighbour returned by [`KnnIndex`] queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the training matrix.
    pub index: usize,
    /// Distance from the query to that training row.
    pub distance: f64,
}

/// k-nearest-neighbour index over a training matrix.
///
/// Two exact backends: brute force (`O(n d)` per query, the complexity
/// the paper quotes for proximity-based models) and a
/// [`KdTree`](crate::kdtree::KdTree) used automatically for
/// low-dimensional data, where branch-and-bound wins decisively. Both
/// return identical results.
///
/// # Example
///
/// ```
/// use suod_linalg::{DistanceMetric, KnnIndex, Matrix};
///
/// # fn main() -> Result<(), suod_linalg::Error> {
/// let train = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]])?;
/// let index = KnnIndex::build(&train, DistanceMetric::Euclidean)?;
/// let nn = index.query(&[0.2], 2);
/// assert_eq!(nn[0].index, 0);
/// assert_eq!(nn[1].index, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnnIndex {
    train: Matrix,
    metric: DistanceMetric,
    tree: Option<crate::kdtree::KdTree>,
}

/// KD-trees degrade toward brute force as dimensionality grows; beyond
/// this width (or for tiny datasets) the flat scan is faster.
const KDTREE_MAX_DIM: usize = 15;
const KDTREE_MIN_ROWS: usize = 128;

impl KnnIndex {
    /// Builds an index over the rows of `train`, choosing the KD-tree
    /// backend automatically for low-dimensional data.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build(train: &Matrix, metric: DistanceMetric) -> Result<Self> {
        if train.nrows() == 0 {
            return Err(Error::Empty("KnnIndex::build"));
        }
        let tree = if train.ncols() <= KDTREE_MAX_DIM && train.nrows() >= KDTREE_MIN_ROWS {
            Some(crate::kdtree::KdTree::build(train, metric)?)
        } else {
            None
        };
        Ok(Self {
            train: train.clone(),
            metric,
            tree,
        })
    }

    /// Builds an index that always scans linearly (used by tests to check
    /// backend equivalence, and available when the access pattern defeats
    /// tree pruning).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] when `train` has no rows.
    pub fn build_brute_force(train: &Matrix, metric: DistanceMetric) -> Result<Self> {
        if train.nrows() == 0 {
            return Err(Error::Empty("KnnIndex::build_brute_force"));
        }
        Ok(Self {
            train: train.clone(),
            metric,
            tree: None,
        })
    }

    /// `true` when queries go through the KD-tree backend.
    pub fn uses_kdtree(&self) -> bool {
        self.tree.is_some()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.train.nrows()
    }

    /// `true` when the index holds no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.train.nrows() == 0
    }

    /// The indexed training matrix.
    pub fn train_data(&self) -> &Matrix {
        &self.train
    }

    /// The metric this index was built with.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending distance.
    ///
    /// `k` is clamped to the index size. Ties are broken by training index.
    ///
    /// # Panics
    ///
    /// Panics when `query.len()` differs from the training dimensionality.
    pub fn query(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.train.ncols(),
            "query dimensionality must match the index"
        );
        if let Some(tree) = &self.tree {
            return tree.query(query, k);
        }
        let all: Vec<Neighbor> = (0..self.train.nrows())
            .map(|i| Neighbor {
                index: i,
                distance: self.metric.distance(query, self.train.row(i)),
            })
            .collect();
        select_smallest(all, k)
    }

    /// Like [`query`](Self::query) but excludes the training row
    /// `exclude` — used for leave-one-out queries on the training set
    /// itself (LOF, LoOP, kNN training scores).
    pub fn query_excluding(&self, query: &[f64], k: usize, exclude: usize) -> Vec<Neighbor> {
        let mut nn = self.query(query, (k + 1).min(self.train.nrows()));
        nn.retain(|n| n.index != exclude);
        nn.truncate(k);
        nn
    }

    /// k-nearest neighbours for every row of `queries`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when dimensionality differs.
    pub fn query_batch(&self, queries: &Matrix, k: usize) -> Result<Vec<Vec<Neighbor>>> {
        self.query_batch_parallel(queries, k, 1)
    }

    /// [`query_batch`](Self::query_batch) with the queries chunked
    /// across `n_threads` scoped threads (both backends). Results are
    /// bit-identical to the sequential batch for every `n_threads`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when dimensionality differs.
    pub fn query_batch_parallel(
        &self,
        queries: &Matrix,
        k: usize,
        n_threads: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        if queries.ncols() != self.train.ncols() {
            return Err(Error::ShapeMismatch {
                op: "KnnIndex::query_batch",
                lhs: queries.shape(),
                rhs: self.train.shape(),
            });
        }
        Ok(crate::parallel::par_chunk_map(
            queries.nrows(),
            n_threads,
            |range| range.map(|i| self.query(queries.row(i), k)).collect(),
        ))
    }

    /// Leave-one-out k-nearest neighbours for every training row —
    /// `self_query_batch(k, t)[i]` equals `query_excluding(row(i), k, i)`
    /// bit-for-bit. This is the hot loop of every proximity detector's
    /// `fit` (LOF, kNN, LoOP, COF, ABOD).
    ///
    /// On the brute-force backend (up to a memory cap) the distances come
    /// from [`pairwise_distances_symmetric_parallel`], which evaluates
    /// the metric only for the upper triangle and mirrors — half the
    /// metric calls of row-at-a-time queries. The KD-tree backend (and
    /// oversized brute inputs) fall back to per-row queries, chunked
    /// across `n_threads` either way.
    pub fn self_query_batch(&self, k: usize, n_threads: usize) -> Vec<Vec<Neighbor>> {
        let n = self.train.nrows();
        if self.tree.is_none() && n <= SELF_BATCH_MATRIX_MAX_ROWS {
            let d = pairwise_distances_symmetric_parallel(&self.train, self.metric, n_threads);
            return crate::parallel::par_chunk_map(n, n_threads, |range| {
                range
                    .map(|i| {
                        let all: Vec<Neighbor> = d
                            .row(i)
                            .iter()
                            .enumerate()
                            .map(|(j, &distance)| Neighbor { index: j, distance })
                            .collect();
                        // Same k+1 / drop-self / truncate protocol as
                        // `query_excluding`, fed bitwise-equal distances.
                        let mut nn = select_smallest(all, (k + 1).min(n));
                        nn.retain(|nb| nb.index != i);
                        nn.truncate(k);
                        nn
                    })
                    .collect()
            });
        }
        crate::parallel::par_chunk_map(n, n_threads, |range| {
            range
                .map(|i| self.query_excluding(self.train.row(i), k, i))
                .collect()
        })
    }
}

/// Memory cap for the symmetric-matrix fast path of
/// [`KnnIndex::self_query_batch`]: a 4096-row set costs a 128 MiB
/// distance matrix; beyond that, fall back to row-at-a-time queries.
const SELF_BATCH_MATRIX_MAX_ROWS: usize = 4096;

/// Keeps the `k` smallest neighbours sorted ascending (distance, then
/// index): partial selection then sort of the head, `O(n + k log k)`.
fn select_smallest(mut all: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    let k = k.min(all.len());
    if all.is_empty() {
        return all;
    }
    let pivot = k.saturating_sub(1);
    all.select_nth_unstable_by(pivot, cmp_neighbor);
    all.truncate(k);
    all.sort_by(cmp_neighbor);
    all
}

fn cmp_neighbor(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .expect("distances are finite")
        .then(a.index.cmp(&b.index))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Matrix {
        Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap()
    }

    #[test]
    fn metric_values() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(DistanceMetric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(DistanceMetric::Manhattan.distance(&a, &b), 7.0);
        let mink = DistanceMetric::Minkowski(2.0).distance(&a, &b);
        assert!((mink - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_p1_equals_manhattan() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 4.0, 2.5];
        let m1 = DistanceMetric::Minkowski(1.0).distance(&a, &b);
        let man = DistanceMetric::Manhattan.distance(&a, &b);
        assert!((m1 - man).abs() < 1e-12);
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            DistanceMetric::parse("euclidean").unwrap(),
            DistanceMetric::Euclidean
        );
        assert_eq!(
            DistanceMetric::parse("manhattan").unwrap(),
            DistanceMetric::Manhattan
        );
        assert!(matches!(
            DistanceMetric::parse("minkowski").unwrap(),
            DistanceMetric::Minkowski(_)
        ));
        assert!(DistanceMetric::parse("cosine").is_err());
    }

    #[test]
    fn pairwise_shapes_and_values() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let d = pairwise_distances(&a, &b, DistanceMetric::Euclidean).unwrap();
        assert_eq!(d.shape(), (2, 1));
        assert!((d.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((d.get(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn knn_query_sorted() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let nn = idx.query(&[1.4], 3);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        assert!(nn[0].distance <= nn[1].distance && nn[1].distance <= nn[2].distance);
    }

    #[test]
    fn knn_k_clamped() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        assert_eq!(idx.query(&[0.0], 99).len(), 4);
    }

    #[test]
    fn knn_excluding_self() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let nn = idx.query_excluding(&[1.0], 2, 1);
        assert!(nn.iter().all(|n| n.index != 1));
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].index, 0); // tie with 2, broken by index
    }

    #[test]
    fn knn_build_empty_errors() {
        let empty = Matrix::zeros(0, 3);
        assert!(KnnIndex::build(&empty, DistanceMetric::Euclidean).is_err());
    }

    #[test]
    fn batch_matches_single() {
        let idx = KnnIndex::build(&line_points(), DistanceMetric::Euclidean).unwrap();
        let q = Matrix::from_rows(&[vec![0.1], vec![9.0]]).unwrap();
        let batch = idx.query_batch(&q, 2).unwrap();
        assert_eq!(batch[0], idx.query(&[0.1], 2));
        assert_eq!(batch[1], idx.query(&[9.0], 2));
    }

    /// Deterministic pseudo-random matrix for bit-identity tests.
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    #[test]
    fn pairwise_parallel_bit_identical() {
        let a = random_matrix(37, 5, 7);
        let b = random_matrix(23, 5, 11);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Minkowski(3.0),
        ] {
            let base = pairwise_distances(&a, &b, metric).unwrap();
            for threads in [2usize, 4, 8] {
                let par = pairwise_distances_parallel(&a, &b, metric, threads).unwrap();
                assert_eq!(par.as_slice(), base.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn symmetric_bit_identical_to_full() {
        let a = random_matrix(31, 4, 3);
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Minkowski(3.0),
        ] {
            let full = pairwise_distances(&a, &a, metric).unwrap();
            let sym = pairwise_distances_symmetric(&a, metric);
            assert_eq!(sym.as_slice(), full.as_slice(), "{metric:?}");
            for threads in [2usize, 4] {
                let par = pairwise_distances_symmetric_parallel(&a, metric, threads);
                assert_eq!(
                    par.as_slice(),
                    full.as_slice(),
                    "{metric:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn query_batch_parallel_bit_identical() {
        let train = random_matrix(60, 6, 1);
        let queries = random_matrix(33, 6, 2);
        for idx in [
            KnnIndex::build(&train, DistanceMetric::Euclidean).unwrap(),
            KnnIndex::build_brute_force(&train, DistanceMetric::Euclidean).unwrap(),
        ] {
            let base = idx.query_batch(&queries, 5).unwrap();
            for threads in [2usize, 4, 8] {
                let par = idx.query_batch_parallel(&queries, 5, threads).unwrap();
                assert_eq!(par, base, "threads={threads}");
            }
        }
    }

    #[test]
    fn self_query_batch_matches_query_excluding() {
        // Brute backend (symmetric fast path) and KD-tree backend.
        let wide = random_matrix(50, 20, 9); // > KDTREE_MAX_DIM -> brute
        let narrow = random_matrix(150, 3, 10); // KD-tree eligible
        for train in [&wide, &narrow] {
            let idx = KnnIndex::build(train, DistanceMetric::Euclidean).unwrap();
            let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
                .map(|i| idx.query_excluding(train.row(i), 4, i))
                .collect();
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    idx.self_query_batch(4, threads),
                    expected,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn self_query_batch_respects_metric() {
        let train = random_matrix(40, 18, 5);
        let idx = KnnIndex::build_brute_force(&train, DistanceMetric::Manhattan).unwrap();
        let expected: Vec<Vec<Neighbor>> = (0..train.nrows())
            .map(|i| idx.query_excluding(train.row(i), 3, i))
            .collect();
        assert_eq!(idx.self_query_batch(3, 2), expected);
    }
}
