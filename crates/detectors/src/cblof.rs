//! Clustering-Based Local Outlier Factor (He et al. 2003).
//!
//! The training data is clustered (k-means here, as in PyOD); clusters are
//! split into *large* and *small* by the `alpha`/`beta` rule: walking
//! clusters in decreasing size order, the boundary falls where the
//! cumulative share reaches `alpha` of all points or the size ratio
//! between consecutive clusters exceeds `beta`. A sample in a large
//! cluster scores its distance to that cluster's center; a sample in a
//! small cluster scores its distance to the **nearest large** cluster's
//! center — small clusters are treated as candidate outlier groups.

use crate::kmeans::KMeans;
use crate::{check_dims, Detector, Error, Result};
use suod_linalg::Matrix;

/// CBLOF detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{CblofDetector, Detector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 6) as f64 * 0.1, 0.0]).collect();
/// rows.push(vec![50.0, 50.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = CblofDetector::new(3, 7)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CblofDetector {
    n_clusters: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
    kmeans: Option<KMeans>,
    large_clusters: Vec<usize>,
    train_scores: Vec<f64>,
}

impl CblofDetector {
    /// Creates a CBLOF detector with `n_clusters` k-means clusters and the
    /// canonical `alpha = 0.9`, `beta = 5`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n_clusters == 0`.
    pub fn new(n_clusters: usize, seed: u64) -> Result<Self> {
        if n_clusters == 0 {
            return Err(Error::InvalidParameter("n_clusters must be >= 1".into()));
        }
        Ok(Self {
            n_clusters,
            alpha: 0.9,
            beta: 5.0,
            seed,
            kmeans: None,
            large_clusters: Vec::new(),
            train_scores: Vec::new(),
        })
    }

    /// Overrides the large-cluster share threshold `alpha` (default 0.9).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when outside `(0, 1)`.
    pub fn with_alpha(mut self, alpha: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "alpha must be in (0, 1), got {alpha}"
            )));
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// Overrides the size-ratio threshold `beta` (default 5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `beta <= 1`.
    pub fn with_beta(mut self, beta: f64) -> Result<Self> {
        if beta <= 1.0 {
            return Err(Error::InvalidParameter(format!(
                "beta must be > 1, got {beta}"
            )));
        }
        self.beta = beta;
        Ok(self)
    }

    /// Number of clusters requested.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Indices of the clusters classified as large (after `fit`).
    pub fn large_clusters(&self) -> &[usize] {
        &self.large_clusters
    }

    /// Partitions cluster indices into large clusters per the alpha/beta
    /// rule; guarantees at least the biggest cluster is large.
    fn find_large_clusters(sizes: &[usize], n: usize, alpha: f64, beta: f64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));
        let mut large = Vec::new();
        let mut covered = 0usize;
        for (pos, &c) in order.iter().enumerate() {
            if pos > 0 {
                let prev = sizes[order[pos - 1]] as f64;
                let curr = sizes[c] as f64;
                let ratio_break = curr > 0.0 && prev / curr.max(1e-12) >= beta;
                let share_break = covered as f64 >= alpha * n as f64;
                if ratio_break || share_break {
                    break;
                }
            }
            large.push(c);
            covered += sizes[c];
        }
        if large.is_empty() {
            large.push(order[0]);
        }
        large
    }

    fn score_row(&self, row: &[f64], cluster: usize) -> f64 {
        let km = self.kmeans.as_ref().expect("called after fit");
        if self.large_clusters.contains(&cluster) {
            km.distance_to_center(row, cluster)
        } else {
            self.large_clusters
                .iter()
                .map(|&c| km.distance_to_center(row, c))
                .fold(f64::INFINITY, f64::min)
        }
    }
}

impl Detector for CblofDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        if x.nrows() < self.n_clusters.max(2) {
            return Err(Error::InsufficientData {
                needed: format!("at least {} samples", self.n_clusters.max(2)),
                got: x.nrows(),
            });
        }
        let km = KMeans::fit(x, self.n_clusters, self.seed, 100)?;
        self.large_clusters =
            Self::find_large_clusters(km.sizes(), x.nrows(), self.alpha, self.beta);
        self.kmeans = Some(km);
        let km = self.kmeans.as_ref().expect("just set");
        self.train_scores = (0..x.nrows())
            .map(|i| self.score_row(x.row(i), km.assignments()[i]))
            .collect();
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let km = self
            .kmeans
            .as_ref()
            .ok_or(Error::NotFitted("CblofDetector"))?;
        check_dims(km.centers().ncols(), x)?;
        Ok(x.rows_iter()
            .map(|row| self.score_row(row, km.assign(row)))
            .collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.kmeans.is_none() {
            return Err(Error::NotFitted("CblofDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "cblof"
    }

    fn is_fitted(&self) -> bool {
        self.kmeans.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_clusters);
        w.write_f64(self.alpha);
        w.write_f64(self.beta);
        w.write_u64(self.seed);
        match &self.kmeans {
            Some(km) => {
                w.write_bool(true);
                km.snapshot_write(w);
            }
            None => w.write_bool(false),
        }
        w.write_usizes(&self.large_clusters);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl CblofDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let n_clusters = r.read_usize()?;
        let alpha = r.read_f64()?;
        let beta = r.read_f64()?;
        let seed = r.read_u64()?;
        let kmeans = if r.read_bool()? {
            Some(KMeans::snapshot_read(r)?)
        } else {
            None
        };
        Ok(Self {
            n_clusters,
            alpha,
            beta,
            seed,
            kmeans,
            large_clusters: r.read_usizes()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_outlier_group() -> Matrix {
        let mut rows = Vec::new();
        // One big cluster of 40.
        for i in 0..40 {
            rows.push(vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
        }
        // A tiny far-away group of 3 (candidate outliers).
        for i in 0..3 {
            rows.push(vec![20.0 + i as f64 * 0.1, 20.0]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn small_cluster_members_score_high() {
        let mut det = CblofDetector::new(2, 0).unwrap();
        det.fit(&blob_with_outlier_group()).unwrap();
        let s = det.training_scores().unwrap();
        let top3: Vec<usize> = suod_linalg::rank::argsort_desc(&s)[..3].to_vec();
        for i in 40..43 {
            assert!(top3.contains(&i), "index {i} missing from top3 {top3:?}");
        }
    }

    #[test]
    fn large_cluster_classification() {
        // Sizes 40 and 3 with beta=5: ratio 40/3 > 5 -> only the big one
        // is large.
        let large = CblofDetector::find_large_clusters(&[40, 3], 43, 0.9, 5.0);
        assert_eq!(large, vec![0]);
        // Balanced clusters: both large (ratio 1 < 5, share below alpha).
        let large = CblofDetector::find_large_clusters(&[20, 20], 40, 0.9, 5.0);
        assert_eq!(large.len(), 2);
    }

    #[test]
    fn alpha_share_rule() {
        // First cluster alone covers 95% >= alpha=0.9 -> stop after it.
        let large = CblofDetector::find_large_clusters(&[95, 3, 2], 100, 0.9, 100.0);
        assert_eq!(large, vec![0]);
    }

    #[test]
    fn at_least_one_large_cluster() {
        let large = CblofDetector::find_large_clusters(&[1, 1], 2, 0.001, 1.001);
        assert!(!large.is_empty());
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut det = CblofDetector::new(2, 0).unwrap();
        det.fit(&blob_with_outlier_group()).unwrap();
        let q = Matrix::from_rows(&[vec![0.3, 0.2], vec![100.0, 100.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > 10.0 * s[0].max(0.1));
    }

    #[test]
    fn validates_inputs() {
        assert!(CblofDetector::new(0, 0).is_err());
        assert!(CblofDetector::new(3, 0).unwrap().with_alpha(1.5).is_err());
        assert!(CblofDetector::new(3, 0).unwrap().with_beta(0.5).is_err());
        let mut det = CblofDetector::new(5, 0).unwrap();
        assert!(det.fit(&Matrix::zeros(3, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&blob_with_outlier_group()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = blob_with_outlier_group();
        let mut a = CblofDetector::new(3, 5).unwrap();
        let mut b = CblofDetector::new(3, 5).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
    }
}
