//! Design-choice ablation: the BPS rank-discount strength `alpha`.
//!
//! The paper introduces the discounted rank `1 + alpha * f / m` to stop
//! high ranks from dominating the sum ("rank f-th model will be counted f
//! times more heavily than rank 1 ... even their actual running time
//! difference will not be as big"), defaulting alpha to 1. This sweep
//! measures the realized makespan across alpha values on measured
//! per-model costs, for grouped (adversarial) model orderings.
//!
//! Flags: `--quick`, `--paper-scale`.

use std::time::Instant;
use suod::prelude::*;
use suod_bench::{CsvSink, Scale};
use suod_datasets::registry;
use suod_scheduler::{bps_schedule, generic_schedule, simulate_makespan};

const ALPHAS: &[f64] = &[0.0, 0.5, 1.0, 2.0, 4.0];

fn grouped_pool(m: usize) -> Vec<ModelSpec> {
    let mut pool = Vec::new();
    let quarter = m / 4;
    for i in 0..quarter {
        pool.push(ModelSpec::Knn {
            n_neighbors: 5 + 5 * (i % 6),
            method: KnnMethod::Largest,
        });
    }
    for i in 0..quarter {
        pool.push(ModelSpec::Lof {
            n_neighbors: 5 + 5 * (i % 6),
            metric: Metric::Euclidean,
        });
    }
    for i in 0..quarter {
        pool.push(ModelSpec::Hbos {
            n_bins: 10 + 10 * (i % 5),
            tolerance: 0.3,
        });
    }
    while pool.len() < m {
        pool.push(ModelSpec::IForest {
            n_estimators: 25 + 25 * (pool.len() % 4),
            max_features: 0.8,
        });
    }
    pool
}

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.05, 0.3, 1.0);
    let m = scale.pick(16usize, 60, 200);
    let t = 4usize;
    let mut csv = CsvSink::create("bps_alpha_sweep", "dataset,alpha,makespan_s,reduction_pct");

    println!("BPS alpha sweep (m = {m}, t = {t}, measured costs, schedule on true costs)");
    for ds_name in ["cardio", "pendigits"] {
        let ds = registry::load_scaled(ds_name, 7, data_scale).expect("registry dataset");
        let pool = grouped_pool(m);
        let mut costs = Vec::with_capacity(pool.len());
        for (i, spec) in pool.iter().enumerate() {
            let mut det = spec.build(i as u64).expect("valid spec");
            let start = Instant::now();
            det.fit(&ds.x).expect("detector fit");
            costs.push(start.elapsed().as_secs_f64().max(1e-9));
        }
        let generic = simulate_makespan(&costs, &generic_schedule(pool.len(), t).expect("valid"))
            .expect("lengths match");
        println!(
            "\n== {ds_name} (generic makespan {:.3}s) ==",
            generic.makespan
        );
        println!("{:<7} {:>12} {:>10}", "alpha", "makespan(s)", "Redu(%)");
        for &alpha in ALPHAS {
            let a = bps_schedule(&costs, t, alpha).expect("finite costs");
            let r = simulate_makespan(&costs, &a).expect("lengths match");
            let redu = 100.0 * (generic.makespan - r.makespan) / generic.makespan.max(1e-12);
            println!("{alpha:<7} {:>12.3} {redu:>10.2}", r.makespan);
            csv.row(&format!("{ds_name},{alpha},{:.6},{redu:.2}", r.makespan));
        }
    }
    println!("\nwrote {}", csv.path().display());
    println!("(alpha > 0 should beat pure count-balancing (alpha = 0); very large");
    println!(" alpha approaches raw-rank weighting with diminishing returns.)");
}
