#![allow(clippy::needless_range_loop)] // indexed loops mirror the papers' pseudocode in numeric kernels
#![warn(missing_docs)]
//! Data-level projection module for the SUOD reproduction (paper §3.3).
//!
//! SUOD's first acceleration lever is dimensionality reduction: each base
//! detector trains in its own random low-dimensional subspace produced by
//! a Johnson–Lindenstrauss transform, which approximately preserves the
//! pairwise Euclidean distances proximity-based detectors depend on while
//! injecting per-model diversity. Table 1 of the paper compares the four
//! JL constructions against PCA and random feature selection; all seven
//! settings live here behind the [`Projector`] trait.
//!
//! # Example
//!
//! ```
//! use suod_linalg::Matrix;
//! use suod_projection::{JlProjector, JlVariant, Projector};
//!
//! # fn main() -> Result<(), suod_projection::Error> {
//! let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
//! let mut proj = JlProjector::new(JlVariant::Basic, 2, 42)?;
//! proj.fit(&x)?;
//! let z = proj.transform(&x)?;
//! assert_eq!(z.shape(), (2, 2));
//! # Ok(())
//! # }
//! ```

pub mod jl;
pub mod pca;
pub mod random_select;

pub use jl::{JlProjector, JlVariant};
pub use pca::PcaProjector;
pub use random_select::RandomSelectProjector;

use std::fmt;
use suod_linalg::Matrix;

/// Errors produced by projector fitting and application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
    /// `transform` called before `fit`.
    NotFitted(&'static str),
    /// Input width differs from the fitted dimensionality.
    DimensionMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Actual number of columns.
        actual: usize,
    },
    /// Propagated linear-algebra failure.
    Linalg(suod_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NotFitted(what) => write!(f, "{what} must be fitted before transform"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} columns, got {actual}")
            }
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<suod_linalg::Error> for Error {
    fn from(e: suod_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A fitted dimensionality-reduction transform.
///
/// The projector is fitted on training data and **retained** so the same
/// transform applies to test data at prediction time (Algorithm 1 of the
/// paper keeps `W` per model).
pub trait Projector: Send + Sync {
    /// Learns the transform from training data (a no-op for data-independent
    /// JL projections beyond recording the input width).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the target dimension
    /// exceeds the input dimension, plus method-specific failures.
    fn fit(&mut self, x: &Matrix) -> Result<()>;

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit` and
    /// [`Error::DimensionMismatch`] on width mismatch.
    fn transform(&self, x: &Matrix) -> Result<Matrix>;

    /// Output dimensionality after `fit`.
    fn output_dim(&self) -> usize;

    /// Short method name (e.g. `"circulant"`).
    fn name(&self) -> &'static str;
}

/// Identity projector: the paper's `original` baseline (no projection).
#[derive(Debug, Clone, Default)]
pub struct IdentityProjector {
    dim: usize,
    fitted: bool,
}

impl IdentityProjector {
    /// Creates an identity projector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Projector for IdentityProjector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.dim = x.ncols();
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(Error::NotFitted("IdentityProjector"));
        }
        if x.ncols() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: x.ncols(),
            });
        }
        Ok(x.clone())
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "original"
    }
}

pub(crate) fn check_target_dim(k: usize, d: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::InvalidParameter(
            "target dimension must be >= 1".into(),
        ));
    }
    if k > d {
        return Err(Error::InvalidParameter(format!(
            "target dimension {k} exceeds input dimension {d}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut p = IdentityProjector::new();
        p.fit(&x).unwrap();
        assert_eq!(p.transform(&x).unwrap(), x);
        assert_eq!(p.output_dim(), 2);
        assert_eq!(p.name(), "original");
    }

    #[test]
    fn identity_checks_state_and_dims() {
        let p = IdentityProjector::new();
        assert!(p.transform(&Matrix::zeros(1, 2)).is_err());
        let mut p = IdentityProjector::new();
        p.fit(&Matrix::zeros(2, 3)).unwrap();
        assert!(p.transform(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn target_dim_validation() {
        assert!(check_target_dim(0, 5).is_err());
        assert!(check_target_dim(6, 5).is_err());
        assert!(check_target_dim(5, 5).is_ok());
    }
}
