//! Local Outlier Probabilities — LoOP (Kriegel et al. 2009).
//!
//! LoOP turns LOF-style density ratios into calibrated probabilities in
//! `[0, 1)`: the probabilistic set distance of a point is compared against
//! its neighbours' and passed through a Gaussian-error normalization. The
//! paper cites LoOP as a representative costly proximity-based model
//! (§1), so it joins the zoo and the costly-algorithm pool `M_c`.

use crate::{check_dims, Detector, Error, FitContext, Result};
use std::sync::Arc;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

/// Significance multiplier for the probabilistic set distance
/// (the paper's `lambda`; 3 is the conventional choice).
const LAMBDA: f64 = 3.0;

/// LoOP detector; scores are outlier probabilities in `[0, 1)`.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, LoopDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..25)
///     .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
///     .collect();
/// rows.push(vec![7.0, 7.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = LoopDetector::new(5)?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert!(s[25] > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LoopDetector {
    k: usize,
    index: Option<Arc<KnnIndex>>,
    /// Probabilistic set distance per training point.
    pdist: Vec<f64>,
    /// Normalization constant `nPLOF`.
    nplof: f64,
    train_scores: Vec<f64>,
}

impl LoopDetector {
    /// Creates a LoOP detector with `k` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter("n_neighbors must be >= 1".into()));
        }
        Ok(Self {
            k,
            index: None,
            pdist: Vec::new(),
            nplof: 0.0,
            train_scores: Vec::new(),
        })
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    fn pdist_of(neighbors: &[suod_linalg::distance::Neighbor]) -> f64 {
        if neighbors.is_empty() {
            return 0.0;
        }
        let mean_sq: f64 = neighbors
            .iter()
            .map(|n| n.distance * n.distance)
            .sum::<f64>()
            / neighbors.len() as f64;
        LAMBDA * mean_sq.sqrt()
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26), max absolute
/// error 1.5e-7 — sufficient for probability calibration.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

impl Detector for LoopDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        self.fit_with_context(x, &FitContext::default())
    }

    fn fit_with_context(&mut self, x: &Matrix, ctx: &FitContext) -> Result<()> {
        let n = x.nrows();
        if n < 3 {
            return Err(Error::InsufficientData {
                needed: "at least 3 samples".into(),
                got: n,
            });
        }
        let k = self.k.min(n - 1);

        // Leave-one-out neighbour lists: pool-shared prefix views when
        // `ctx` carries a cache, direct sweep otherwise.
        let (index, neighbors) = ctx.self_neighbors(x, DistanceMetric::Euclidean, k)?;
        let pdist: Vec<f64> = neighbors.iter().map(Self::pdist_of).collect();

        // PLOF: own pdist over the mean of neighbours' pdists, minus 1.
        let plof: Vec<f64> = (0..n)
            .map(|i| {
                let nn = neighbors.get(i);
                let mean_nb: f64 =
                    nn.iter().map(|nb| pdist[nb.index]).sum::<f64>() / nn.len().max(1) as f64;
                if mean_nb <= 1e-300 {
                    0.0
                } else {
                    pdist[i] / mean_nb - 1.0
                }
            })
            .collect();

        // nPLOF = lambda * sqrt(E[PLOF^2]).
        let mean_sq: f64 = plof.iter().map(|p| p * p).sum::<f64>() / n as f64;
        let nplof = (LAMBDA * mean_sq.sqrt()).max(1e-12);

        self.train_scores = plof
            .iter()
            .map(|&p| erf(p / (nplof * std::f64::consts::SQRT_2)).max(0.0))
            .collect();
        self.pdist = pdist;
        self.nplof = nplof;
        self.index = Some(index);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let index = self
            .index
            .as_ref()
            .ok_or(Error::NotFitted("LoopDetector"))?;
        check_dims(index.train_data().ncols(), x)?;
        let k = self.k.min(index.len());
        // Batched neighbour lookup hits the tiled brute-force fast path
        // on blocked/gemm indexes; results equal per-row queries exactly.
        let batch = index.query_batch(x, k)?;
        let mut scores = Vec::with_capacity(x.nrows());
        for nn in &batch {
            let pd_q = Self::pdist_of(nn);
            let mean_nb: f64 =
                nn.iter().map(|nb| self.pdist[nb.index]).sum::<f64>() / nn.len().max(1) as f64;
            let plof = if mean_nb <= 1e-300 {
                0.0
            } else {
                pd_q / mean_nb - 1.0
            };
            scores.push(erf(plof / (self.nplof * std::f64::consts::SQRT_2)).max(0.0));
        }
        Ok(scores)
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.index.is_none() {
            return Err(Error::NotFitted("LoopDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "loop"
    }

    fn is_fitted(&self) -> bool {
        self.index.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.k);
        crate::write_opt_index(self.index.as_deref(), w);
        w.write_f64s(&self.pdist);
        w.write_f64(self.nplof);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl LoopDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        n_threads: usize,
    ) -> Result<Self> {
        Ok(Self {
            k: r.read_usize()?,
            index: crate::read_opt_index(r, n_threads)?,
            pdist: r.read_f64s()?,
            nplof: r.read_f64()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        rows.push(vec![7.0, 7.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn scores_are_probabilities() {
        let mut det = LoopDetector::new(5).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn outlier_probability_near_one() {
        let mut det = LoopDetector::new(5).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert!(s[25] > 0.9, "outlier LoOP {}", s[25]);
        // Grid points should be far less suspicious.
        assert!(s[..25].iter().all(|&v| v < s[25]));
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn new_point_scoring() {
        let mut det = LoopDetector::new(5).unwrap();
        det.fit(&grid_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.2, 0.2], vec![30.0, 30.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        // nPLOF is calibrated on the training set (which contains its own
        // big outlier), so the far query's probability is dampened; the
        // ordering and a clear margin are the meaningful invariants.
        assert!(s[1] > 0.3, "far query LoOP {}", s[1]);
        assert!(s[1] > 2.0 * s[0].max(0.05), "{s:?}");
        assert!(s[0] < 0.5);
    }

    #[test]
    fn uniform_data_low_probabilities() {
        let rows: Vec<Vec<f64>> = (0..36)
            .map(|i| vec![(i % 6) as f64, (i / 6) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = LoopDetector::new(4).unwrap();
        det.fit(&x).unwrap();
        let s = det.training_scores().unwrap();
        let mean = suod_linalg::stats::mean(&s);
        assert!(mean < 0.35, "mean LoOP on uniform grid {mean}");
    }

    #[test]
    fn validates_inputs() {
        assert!(LoopDetector::new(0).is_err());
        let mut det = LoopDetector::new(3).unwrap();
        assert!(det.fit(&Matrix::zeros(2, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&grid_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn duplicates_handled() {
        let rows = vec![vec![0.0, 0.0]; 8];
        let x = Matrix::from_rows(&rows).unwrap();
        let mut det = LoopDetector::new(3).unwrap();
        det.fit(&x).unwrap();
        assert!(det.training_scores().unwrap().iter().all(|v| v.is_finite()));
    }
}
