//! Versioned fitted-pool snapshots — the `suod-pool/1` format.
//!
//! A snapshot captures everything a fitted [`Suod`] needs to score new
//! samples bitwise-identically on another process: the builder
//! configuration, every surviving model's detector state, retained JL
//! projector, and PSA approximator, the standardization reference and
//! contamination threshold, and the per-model health report. Like the
//! `suod-trace/1` exporter it is a hand-rolled, dependency-free byte
//! format (see [`suod_linalg::SnapshotWriter`]).
//!
//! # Layout
//!
//! ```text
//! 8 bytes   magic b"SUODPOOL"
//! u64       format version (1)
//! str       integrity signature ("fnv1a64:<16 hex>" over the payload)
//! bytes     payload (length-prefixed)
//! ```
//!
//! The payload is `config section · fitted flag · state section · health
//! section`, every field in a fixed order so that save → load → save is
//! byte-identical. The signature is recomputed at load and compared to
//! the stored value: any truncation or bit flip surfaces as a typed
//! [`Error::SnapshotCorrupt`], never a panic.
//!
//! # What is not persisted
//!
//! * the **cost model** and **observer** (trait objects with no state
//!   contract) — a loaded estimator gets the defaults back; reattach via
//!   a fresh builder if needed;
//! * the **neighbour cache** (proximity graphs rebuild on the first
//!   [`Suod::warm_refit`] after a load);
//! * execution telemetry (`FitDiagnostics::execution`) — health and
//!   module decisions are reconstructed, wall-clock telemetry is not.
//!
//! # Example
//!
//! ```
//! use suod::prelude::*;
//!
//! # fn main() -> Result<(), suod::Error> {
//! let x = suod_linalg::Matrix::from_rows(
//!     &(0..40).map(|i| vec![(i % 7) as f64, (i % 5) as f64]).collect::<Vec<_>>(),
//! ).unwrap();
//! let mut clf = Suod::builder()
//!     .base_estimators(vec![ModelSpec::Hbos { n_bins: 8, tolerance: 0.3 }])
//!     .build()?;
//! clf.fit(&x)?;
//! let bytes = clf.save_to_bytes()?;
//! let restored = Suod::load_from_bytes(&bytes)?;
//! assert_eq!(
//!     clf.decision_function(&x)?,
//!     restored.decision_function(&x)?,
//! );
//! # Ok(())
//! # }
//! ```

use crate::diagnostics::{CpuFeatures, FitDiagnostics, ModelDiagnostics};
use crate::health::{ModelHealth, ModelReport, ModelStatus};
use crate::pseudo::ApproxSpec;
use crate::spec::ModelSpec;
use crate::suod::{FittedModel, FittedState, Suod, SuodBuilder, WarmContext};
use crate::{Error, Result};
use std::sync::Arc;
use std::time::Duration;
use suod_detectors::{read_detector, write_detector};
use suod_linalg::{DataFingerprint, SnapshotReader, SnapshotWriter};
use suod_observe::{payload_signature, Counter, SpanAttrs, Stage};
use suod_projection::{JlProjector, JlVariant, Projector};
use suod_scheduler::{ExecutionReport, WorkStealingExecutor};
use suod_supervised::{read_regressor, write_regressor};

/// Leading magic bytes of every `suod-pool` snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SUODPOOL";

/// Format version this build writes and the newest it can read.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Human-readable format name (magic + version), printed by the CLI.
pub const SNAPSHOT_FORMAT: &str = "suod-pool/1";

fn corrupt(what: &str) -> Error {
    Error::Linalg(suod_linalg::Error::InvalidParameter(format!(
        "snapshot: {what}"
    )))
}

fn write_jl_variant(v: JlVariant, w: &mut SnapshotWriter) {
    w.write_u8(match v {
        JlVariant::Basic => 0,
        JlVariant::Discrete => 1,
        JlVariant::Circulant => 2,
        JlVariant::Toeplitz => 3,
    });
}

fn read_jl_variant(r: &mut SnapshotReader<'_>) -> Result<JlVariant> {
    Ok(match r.read_u8()? {
        0 => JlVariant::Basic,
        1 => JlVariant::Discrete,
        2 => JlVariant::Circulant,
        3 => JlVariant::Toeplitz,
        other => return Err(corrupt(&format!("unknown JlVariant tag {other}"))),
    })
}

fn write_config(config: &SuodBuilder, w: &mut SnapshotWriter) {
    w.write_usize(config.base_estimators.len());
    for spec in &config.base_estimators {
        spec.snapshot_write(w);
    }
    w.write_bool(config.rp_enabled);
    write_jl_variant(config.rp_variant, w);
    w.write_f64(config.rp_target_fraction);
    w.write_usize(config.rp_min_dim);
    w.write_bool(config.approx_enabled);
    config.approx_spec.snapshot_write(w);
    w.write_bool(config.bps_enabled);
    w.write_usize(config.n_workers);
    w.write_f64(config.bps_alpha);
    w.write_f64(config.contamination);
    w.write_u64(config.seed);
    w.write_bool(config.neighbor_cache_enabled);
    w.write_kernel_config(&config.kernel);
    w.write_opt_u64(config.ef_search.map(|v| v as u64));
    w.write_f64(config.min_healthy_fraction);
    w.write_usize(config.max_model_retries);
    w.write_f64(config.straggler_factor);
}

// Reading into the default builder keeps the field list in one place;
// the reassignments mirror `write_config` line for line.
#[allow(clippy::field_reassign_with_default)]
fn read_config(r: &mut SnapshotReader<'_>) -> Result<SuodBuilder> {
    let n_specs = r.read_usize()?;
    let mut base_estimators = Vec::with_capacity(n_specs.min(1 << 20));
    for _ in 0..n_specs {
        base_estimators.push(ModelSpec::snapshot_read(r)?);
    }
    // Cost model and observer are not serializable; the loaded estimator
    // gets the defaults back (documented in the module docs).
    let mut config = SuodBuilder::default();
    config.base_estimators = base_estimators;
    config.rp_enabled = r.read_bool()?;
    config.rp_variant = read_jl_variant(r)?;
    config.rp_target_fraction = r.read_f64()?;
    config.rp_min_dim = r.read_usize()?;
    config.approx_enabled = r.read_bool()?;
    config.approx_spec = ApproxSpec::snapshot_read(r)?;
    config.bps_enabled = r.read_bool()?;
    config.n_workers = r.read_usize()?;
    config.bps_alpha = r.read_f64()?;
    config.contamination = r.read_f64()?;
    config.seed = r.read_u64()?;
    config.neighbor_cache_enabled = r.read_bool()?;
    config.kernel = r.read_kernel_config()?;
    config.ef_search = r.read_opt_u64()?.map(|v| v as usize);
    config.min_healthy_fraction = r.read_f64()?;
    config.max_model_retries = r.read_usize()?;
    config.straggler_factor = r.read_f64()?;
    Ok(config)
}

fn write_model(model: &FittedModel, w: &mut SnapshotWriter) -> Result<()> {
    w.write_usize(model.pool_index);
    model.spec.snapshot_write(w);
    write_detector(model.detector.as_ref(), w)?;
    match &model.projector {
        Some(proj) => {
            w.write_bool(true);
            proj.snapshot_write(w)?;
        }
        None => w.write_bool(false),
    }
    match &model.approximator {
        Some(approx) => {
            w.write_bool(true);
            write_regressor(approx.as_ref(), w)?;
        }
        None => w.write_bool(false),
    }
    w.write_f64s(&model.train_scores);
    w.write_u64(u64::try_from(model.fit_time.as_nanos()).unwrap_or(u64::MAX));
    Ok(())
}

fn read_model(r: &mut SnapshotReader<'_>, n_threads: usize) -> Result<FittedModel> {
    let pool_index = r.read_usize()?;
    let spec = ModelSpec::snapshot_read(r)?;
    let detector = read_detector(r, n_threads)?;
    let projector = if r.read_bool()? {
        Some(JlProjector::snapshot_read(r)?)
    } else {
        None
    };
    let approximator = if r.read_bool()? {
        Some(read_regressor(r)?)
    } else {
        None
    };
    Ok(FittedModel {
        spec,
        pool_index,
        detector,
        projector,
        approximator,
        train_scores: r.read_f64s()?,
        fit_time: Duration::from_nanos(r.read_u64()?),
    })
}

fn write_health(health: &ModelHealth, w: &mut SnapshotWriter) {
    let reports = health.reports();
    w.write_usize(reports.len());
    for rep in reports {
        w.write_usize(rep.index);
        w.write_u8(match rep.status {
            ModelStatus::Healthy => 0,
            ModelStatus::Quarantined => 1,
        });
        match &rep.cause {
            Some(cause) => {
                w.write_bool(true);
                suod_detectors::write_error(cause, w);
            }
            None => w.write_bool(false),
        }
        w.write_usize(rep.attempts);
        w.write_bool(rep.straggler);
    }
}

/// Reads a health section; model names are rebuilt from the configured
/// pool (they are `&'static str` views of the spec names).
fn read_health(r: &mut SnapshotReader<'_>, config: &SuodBuilder) -> Result<ModelHealth> {
    let n = r.read_usize()?;
    let mut reports = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let index = r.read_usize()?;
        let name = config
            .base_estimators
            .get(index)
            .ok_or_else(|| corrupt(&format!("health report index {index} out of range")))?
            .name();
        let status = match r.read_u8()? {
            0 => ModelStatus::Healthy,
            1 => ModelStatus::Quarantined,
            other => return Err(corrupt(&format!("unknown ModelStatus tag {other}"))),
        };
        let cause = if r.read_bool()? {
            Some(suod_detectors::read_error(r)?)
        } else {
            None
        };
        reports.push(ModelReport {
            index,
            name,
            status,
            cause,
            attempts: r.read_usize()?,
            straggler: r.read_bool()?,
        });
    }
    Ok(ModelHealth::new(reports))
}

impl Suod {
    /// Serializes the estimator — configuration, fitted state, and health
    /// report — into a `suod-pool/1` snapshot.
    ///
    /// The bytes are self-verifying: the header carries a deterministic
    /// signature over the payload which [`Suod::load_from_bytes`] checks
    /// before touching any model state. `load(save(pool))` produces an
    /// estimator whose `decision_function` is **bitwise-equal** at any
    /// worker count, and `save(load(save(pool)))` is byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures from detector / projector /
    /// regressor state writers.
    pub fn save_to_bytes(&self) -> Result<Vec<u8>> {
        let obs = Arc::clone(&self.config.observer);
        let _span = suod_observe::span(obs.as_ref(), Stage::SnapshotSave, SpanAttrs::none());
        let mut payload = SnapshotWriter::new();
        write_config(&self.config, &mut payload);
        match &self.state {
            Some(state) => {
                payload.write_bool(true);
                payload.write_usize(state.n_features);
                payload.write_f64(state.threshold);
                payload.write_f64s(&state.score_means);
                payload.write_f64s(&state.score_stds);
                match &self.warm {
                    Some(warm) => {
                        payload.write_bool(true);
                        warm.train_fingerprint.snapshot_write(&mut payload);
                    }
                    None => payload.write_bool(false),
                }
                payload.write_usize(state.models.len());
                for model in &state.models {
                    write_model(model, &mut payload)?;
                }
            }
            None => payload.write_bool(false),
        }
        match self.diagnostics.as_ref().map(|d| d.health()) {
            Some(health) => {
                payload.write_bool(true);
                write_health(health, &mut payload);
            }
            None => payload.write_bool(false),
        }

        let payload = payload.into_bytes();
        let mut out = SnapshotWriter::new();
        let mut bytes = Vec::with_capacity(payload.len() + 64);
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        out.write_u64(SNAPSHOT_VERSION);
        out.write_str(&payload_signature(&payload));
        out.write_bytes(&payload);
        bytes.extend_from_slice(out.as_bytes());
        obs.counter(Counter::SnapshotSave, 1);
        Ok(bytes)
    }

    /// Writes a `suod-pool/1` snapshot to `path` **atomically**: the
    /// bytes land in a sibling temporary file first and are renamed into
    /// place, so a reader (e.g. a serving process hot-reloading the
    /// pool) never observes a half-written snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotIo`] on filesystem failures, plus
    /// everything [`Suod::save_to_bytes`] returns.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        let bytes = self.save_to_bytes()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| Error::SnapshotIo(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| Error::SnapshotIo(format!("renaming into {}: {e}", path.display())))?;
        Ok(())
    }

    /// Deserializes a snapshot produced by [`Suod::save_to_bytes`].
    ///
    /// The payload signature is verified first; corrupt or truncated
    /// input returns a typed error ([`Error::SnapshotCorrupt`] /
    /// [`Error::SnapshotFormat`]), never panics. The loaded estimator
    /// scores bitwise-identically to the saved one at any worker count.
    /// The cost model and observer come back as defaults, and the
    /// neighbour cache starts empty (see the module docs).
    ///
    /// # Errors
    ///
    /// * [`Error::SnapshotFormat`] — wrong magic, or a version newer
    ///   than [`SNAPSHOT_VERSION`];
    /// * [`Error::SnapshotCorrupt`] — stored and recomputed payload
    ///   signatures differ;
    /// * [`Error::Linalg`] — structurally malformed payload (truncated
    ///   fields, unknown tags, trailing bytes).
    pub fn load_from_bytes(bytes: &[u8]) -> Result<Suod> {
        if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(Error::SnapshotFormat(
                "missing suod-pool magic (not a snapshot file)".into(),
            ));
        }
        let mut header = SnapshotReader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
        let version = header.read_u64()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::SnapshotFormat(format!(
                "snapshot version {version} is not supported (this build reads \
                 {SNAPSHOT_FORMAT})"
            )));
        }
        let expected = header.read_str()?;
        let payload = header.read_bytes()?;
        if !header.is_exhausted() {
            return Err(corrupt(&format!(
                "{} trailing bytes after payload",
                header.remaining()
            )));
        }
        let actual = payload_signature(payload);
        if actual != expected {
            return Err(Error::SnapshotCorrupt { expected, actual });
        }

        let mut r = SnapshotReader::new(payload);
        let config = read_config(&mut r)?;
        let n_workers = config.n_workers.max(1);
        let fitted = r.read_bool()?;
        let mut fingerprint: Option<DataFingerprint> = None;
        let state = if fitted {
            let n_features = r.read_usize()?;
            let threshold = r.read_f64()?;
            let score_means = r.read_f64s()?;
            let score_stds = r.read_f64s()?;
            if r.read_bool()? {
                fingerprint = Some(DataFingerprint::snapshot_read(&mut r)?);
            }
            let n_models = r.read_usize()?;
            let mut models = Vec::with_capacity(n_models.min(1 << 20));
            for _ in 0..n_models {
                models.push(Arc::new(read_model(&mut r, n_workers)?));
            }
            Some(Arc::new(FittedState {
                models,
                threshold,
                n_features,
                score_means,
                score_stds,
            }))
        } else {
            None
        };
        let health = if r.read_bool()? {
            Some(read_health(&mut r, &config)?)
        } else {
            None
        };
        if !r.is_exhausted() {
            return Err(corrupt(&format!(
                "{} trailing bytes in payload",
                r.remaining()
            )));
        }

        // Rebuild the derived runtime pieces the snapshot does not carry:
        // the executor (prediction requires one) and the diagnostics view
        // (health + module decisions; execution telemetry is gone).
        let executor = if state.is_some() {
            Some(Arc::new(
                WorkStealingExecutor::new(n_workers).map_err(Error::Scheduler)?,
            ))
        } else {
            None
        };
        let diagnostics = health.map(|health| {
            let models_diag = health
                .reports()
                .iter()
                .map(|rep| {
                    let model = state
                        .as_ref()
                        .and_then(|s| s.models.iter().find(|m| m.pool_index == rep.index));
                    ModelDiagnostics {
                        index: rep.index,
                        name: rep.name,
                        status: rep.status,
                        attempts: rep.attempts,
                        straggler: rep.straggler,
                        fit_time: model.map(|m| m.fit_time),
                        projected: model.is_some_and(|m| m.projector.is_some()),
                        approximated: model.is_some_and(|m| m.approximator.is_some()),
                    }
                })
                .collect();
            FitDiagnostics::new(
                ExecutionReport::default(),
                health,
                models_diag,
                CpuFeatures::detect(config.kernel.precision, config.kernel.neighbor),
                0,
            )
        });
        let warm = match (&state, fingerprint) {
            // The neighbour cache is not persisted: warm refits after a
            // load rebuild proximity graphs but still reuse survivor
            // models via the stored fingerprint.
            (Some(_), Some(fp)) => Some(WarmContext {
                cache: None,
                train_fingerprint: fp,
            }),
            _ => None,
        };
        let clf = Suod {
            config,
            state,
            executor,
            diagnostics,
            warm,
        };
        clf.config.observer.counter(Counter::SnapshotLoad, 1);
        Ok(clf)
    }

    /// Reads a `suod-pool/1` snapshot from `path` (see
    /// [`Suod::load_from_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotIo`] on filesystem failures, plus
    /// everything [`Suod::load_from_bytes`] returns.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Suod> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| Error::SnapshotIo(format!("reading {}: {e}", path.display())))?;
        Self::load_from_bytes(&bytes)
    }
}
