//! Byte-level codec for the `suod-pool/1` snapshot format.
//!
//! Hand-rolled (serde-free) little-endian encoding, in the same spirit as
//! the `suod-trace/1` JSON schema in `suod-observe`: every field is
//! written explicitly, in a fixed order, with no reflection — so the byte
//! stream is a *contract*, not an implementation detail. Higher layers
//! (detectors, regressors, projectors, the `Suod` orchestrator) compose
//! [`SnapshotWriter`]/[`SnapshotReader`] into the full pool snapshot.
//!
//! # Encoding rules
//!
//! * Integers are `u64` little-endian (lengths, counts, indices).
//! * `f64` values are written as their IEEE-754 **bit pattern** in
//!   little-endian order — round-tripping is bit-exact, including NaN
//!   payloads and signed zeros. This is what makes the pool-level
//!   contract (`load(save(pool))` scores bitwise-equal) possible.
//! * Strings are length-prefixed UTF-8.
//! * `Option<T>` is a `u8` tag (0 = None, 1 = Some) followed by the value.
//! * Matrices are `(nrows, ncols, row-major f64 bits)`.
//!
//! Decoding is defensive: every read validates remaining length and
//! returns a typed [`Error::InvalidParameter`] with a `snapshot:` prefix
//! instead of panicking, so a truncated or corrupt snapshot surfaces as a
//! recoverable error at the `Suod::load` boundary.

use crate::hnsw::{HnswParams, NeighborBackend};
use crate::{DistanceBackend, DistanceMetric, Error, KernelConfig, Matrix, Precision, Result};

/// Append-only byte sink for snapshot encoding.
#[derive(Debug, Default, Clone)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` little-endian.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a bool as one byte (0/1).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Writes an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed raw byte slice.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice (bit patterns).
    pub fn write_f64s(&mut self, v: &[f64]) {
        self.write_usize(v.len());
        for &x in v {
            self.write_f64(x);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn write_usizes(&mut self, v: &[usize]) {
        self.write_usize(v.len());
        for &x in v {
            self.write_usize(x);
        }
    }

    /// Writes an optional `u64` (presence tag + value).
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
            None => self.write_u8(0),
        }
    }

    /// Writes a matrix as `(nrows, ncols, row-major bits)`.
    pub fn write_matrix(&mut self, m: &Matrix) {
        self.write_usize(m.nrows());
        self.write_usize(m.ncols());
        for &x in m.as_slice() {
            self.write_f64(x);
        }
    }

    /// Writes a distance metric (tag + Minkowski exponent bits).
    pub fn write_metric(&mut self, metric: DistanceMetric) {
        match metric {
            DistanceMetric::Euclidean => self.write_u8(0),
            DistanceMetric::Manhattan => self.write_u8(1),
            DistanceMetric::Minkowski(p) => {
                self.write_u8(2);
                self.write_f64(p);
            }
        }
    }

    /// Writes a full [`KernelConfig`] including the neighbour backend.
    pub fn write_kernel_config(&mut self, config: &KernelConfig) {
        self.write_u8(match config.backend {
            DistanceBackend::Naive => 0,
            DistanceBackend::Blocked => 1,
            DistanceBackend::Gemm => 2,
        });
        self.write_u8(match config.precision {
            Precision::F64 => 0,
            Precision::Mixed => 1,
        });
        self.write_usize(config.kdtree_crossover_dim);
        self.write_usize(config.kdtree_min_rows);
        match config.neighbor {
            NeighborBackend::Exact => self.write_u8(0),
            NeighborBackend::Hnsw(p) => {
                self.write_u8(1);
                self.write_usize(p.m);
                self.write_usize(p.ef_construction);
                self.write_usize(p.ef_search);
                self.write_u64(p.seed);
                self.write_usize(p.min_rows);
            }
        }
    }
}

fn corrupt(what: &str) -> Error {
    Error::InvalidParameter(format!("snapshot: {what}"))
}

/// Cursor over snapshot bytes; every read is bounds-checked.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(&format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn read_usize(&mut self) -> Result<usize> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| corrupt("length overflows usize"))
    }

    /// Reads a bool byte (rejecting anything but 0/1).
    pub fn read_bool(&mut self) -> Result<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(&format!("invalid bool byte {other}"))),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.read_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String> {
        let b = self.read_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn read_f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.read_usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(corrupt("truncated f64 vector"));
        }
        (0..n).map(|_| self.read_f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn read_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.read_usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(corrupt("truncated usize vector"));
        }
        (0..n).map(|_| self.read_usize()).collect()
    }

    /// Reads an optional `u64`.
    pub fn read_opt_u64(&mut self) -> Result<Option<u64>> {
        match self.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.read_u64()?)),
            other => Err(corrupt(&format!("invalid option tag {other}"))),
        }
    }

    /// Reads a matrix written by [`SnapshotWriter::write_matrix`].
    pub fn read_matrix(&mut self) -> Result<Matrix> {
        let rows = self.read_usize()?;
        let cols = self.read_usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("matrix shape overflows"))?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(corrupt("truncated matrix payload"));
        }
        let data: Vec<f64> = (0..n).map(|_| self.read_f64()).collect::<Result<_>>()?;
        Matrix::from_vec(rows, cols, data)
    }

    /// Reads a distance metric.
    pub fn read_metric(&mut self) -> Result<DistanceMetric> {
        match self.read_u8()? {
            0 => Ok(DistanceMetric::Euclidean),
            1 => Ok(DistanceMetric::Manhattan),
            2 => Ok(DistanceMetric::Minkowski(self.read_f64()?)),
            other => Err(corrupt(&format!("unknown metric tag {other}"))),
        }
    }

    /// Reads a [`KernelConfig`].
    pub fn read_kernel_config(&mut self) -> Result<KernelConfig> {
        let backend = match self.read_u8()? {
            0 => DistanceBackend::Naive,
            1 => DistanceBackend::Blocked,
            2 => DistanceBackend::Gemm,
            other => return Err(corrupt(&format!("unknown backend tag {other}"))),
        };
        let precision = match self.read_u8()? {
            0 => Precision::F64,
            1 => Precision::Mixed,
            other => return Err(corrupt(&format!("unknown precision tag {other}"))),
        };
        let kdtree_crossover_dim = self.read_usize()?;
        let kdtree_min_rows = self.read_usize()?;
        let neighbor = match self.read_u8()? {
            0 => NeighborBackend::Exact,
            1 => NeighborBackend::Hnsw(HnswParams {
                m: self.read_usize()?,
                ef_construction: self.read_usize()?,
                ef_search: self.read_usize()?,
                seed: self.read_u64()?,
                min_rows: self.read_usize()?,
            }),
            other => return Err(corrupt(&format!("unknown neighbor tag {other}"))),
        };
        Ok(KernelConfig {
            backend,
            precision,
            kdtree_crossover_dim,
            kdtree_min_rows,
            neighbor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapshotWriter::new();
        w.write_u8(7);
        w.write_u64(u64::MAX);
        w.write_usize(42);
        w.write_bool(true);
        w.write_f64(-0.0);
        w.write_f64(f64::NAN);
        w.write_str("suod-pool/1");
        w.write_f64s(&[1.5, f64::INFINITY]);
        w.write_usizes(&[3, 0, 9]);
        w.write_opt_u64(None);
        w.write_opt_u64(Some(11));
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_usize().unwrap(), 42);
        assert!(r.read_bool().unwrap());
        let z = r.read_f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(r.read_f64().unwrap().is_nan());
        assert_eq!(r.read_str().unwrap(), "suod-pool/1");
        assert_eq!(r.read_f64s().unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(r.read_usizes().unwrap(), vec![3, 0, 9]);
        assert_eq!(r.read_opt_u64().unwrap(), None);
        assert_eq!(r.read_opt_u64().unwrap(), Some(11));
        assert!(r.is_exhausted());
    }

    #[test]
    fn matrix_round_trip_is_bit_exact() {
        let m = Matrix::from_rows(&[vec![0.1, -0.0], vec![f64::MIN_POSITIVE, 3.5e300]]).unwrap();
        let mut w = SnapshotWriter::new();
        w.write_matrix(&m);
        let bytes = w.into_bytes();
        let got = SnapshotReader::new(&bytes).read_matrix().unwrap();
        assert_eq!(got.shape(), m.shape());
        for (a, b) in got.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn metric_and_kernel_config_round_trip() {
        for metric in [
            DistanceMetric::Euclidean,
            DistanceMetric::Manhattan,
            DistanceMetric::Minkowski(2.5),
        ] {
            let mut w = SnapshotWriter::new();
            w.write_metric(metric);
            let got = SnapshotReader::new(w.as_bytes()).read_metric().unwrap();
            assert_eq!(got, metric);
        }
        let configs = [
            KernelConfig::default(),
            KernelConfig {
                backend: DistanceBackend::Gemm,
                precision: Precision::Mixed,
                kdtree_crossover_dim: 7,
                kdtree_min_rows: 10,
                neighbor: NeighborBackend::Hnsw(HnswParams::default().with_ef_search(99)),
            },
        ];
        for config in configs {
            let mut w = SnapshotWriter::new();
            w.write_kernel_config(&config);
            let got = SnapshotReader::new(w.as_bytes())
                .read_kernel_config()
                .unwrap();
            assert_eq!(got, config);
        }
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapshotWriter::new();
        w.write_u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..4]);
        assert!(r.read_u64().is_err());
        // A huge claimed length must not allocate or panic.
        let mut w = SnapshotWriter::new();
        w.write_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.read_f64s().is_err());
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.read_bytes().is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        let bytes = [9u8];
        assert!(SnapshotReader::new(&bytes).read_bool().is_err());
        assert!(SnapshotReader::new(&bytes).read_metric().is_err());
        assert!(SnapshotReader::new(&bytes).read_kernel_config().is_err());
    }
}
