//! Isolation Forest (Liu et al. 2008).
//!
//! Random axis-aligned splits isolate outliers in few steps; the anomaly
//! score is `2^(-E[h(x)] / c(psi))` where `h` is the path length over the
//! ensemble and `c(psi)` the expected path length of an unsuccessful BST
//! search over the subsample size. Isolation Forest is the second "cheap"
//! family (with HBOS) that SUOD neither projects nor approximates.
//!
//! Table B.1 varies `n_estimators` and `max_features` (the fraction of
//! features each tree sees), both supported here.

use crate::{check_dims, Detector, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

#[derive(Debug, Clone)]
enum ITreeNode {
    Leaf {
        /// Number of training samples that reached this leaf.
        size: usize,
    },
    Split {
        /// Index into the tree's feature subset.
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct ITree {
    nodes: Vec<ITreeNode>,
    /// Global feature indices this tree operates on.
    features: Vec<usize>,
}

impl ITree {
    fn path_length(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        let mut depth = 0.0;
        loop {
            match &self.nodes[idx] {
                ITreeNode::Leaf { size } => {
                    return depth + average_path_length(*size);
                }
                ITreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    let v = row[self.features[*feature]];
                    idx = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Expected path length of an unsuccessful BST search over `n` points —
/// the `c(n)` normalizer from the Isolation Forest paper.
pub fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
            let nf = n as f64;
            // 2 H(n-1) - 2 (n-1)/n with H(k) ~ ln(k) + gamma.
            2.0 * ((nf - 1.0).ln() + EULER_MASCHERONI) - 2.0 * (nf - 1.0) / nf
        }
    }
}

/// Isolation Forest detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, IsolationForest};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..64).map(|i| {
///     vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]
/// }).collect();
/// rows.push(vec![10.0, 10.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut forest = IsolationForest::new(50, 7)?;
/// forest.fit(&x)?;
/// let s = forest.training_scores()?;
/// let top = suod_linalg::rank::argsort_desc(&s)[0];
/// assert_eq!(top, 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IsolationForest {
    n_estimators: usize,
    max_samples: usize,
    max_features_fraction: f64,
    seed: u64,
    trees: Vec<ITree>,
    n_features: usize,
    subsample_size: usize,
    train_scores: Vec<f64>,
}

impl IsolationForest {
    /// Creates a forest with `n_estimators` trees, the canonical subsample
    /// size of 256, and all features per tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n_estimators == 0`.
    pub fn new(n_estimators: usize, seed: u64) -> Result<Self> {
        if n_estimators == 0 {
            return Err(Error::InvalidParameter("n_estimators must be >= 1".into()));
        }
        Ok(Self {
            n_estimators,
            max_samples: 256,
            max_features_fraction: 1.0,
            seed,
            trees: Vec::new(),
            n_features: 0,
            subsample_size: 0,
            train_scores: Vec::new(),
        })
    }

    /// Sets the per-tree subsample size (default 256).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `m < 2`.
    pub fn with_max_samples(mut self, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(Error::InvalidParameter("max_samples must be >= 2".into()));
        }
        self.max_samples = m;
        Ok(self)
    }

    /// Sets the fraction of features each tree may split on (Table B.1's
    /// `max_features`, 0.1–0.9).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when outside `(0, 1]`.
    pub fn with_max_features_fraction(mut self, f: f64) -> Result<Self> {
        if !(f > 0.0 && f <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "max_features must be in (0, 1], got {f}"
            )));
        }
        self.max_features_fraction = f;
        Ok(self)
    }

    /// Number of trees.
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    fn build_tree(
        x: &Matrix,
        rows: &mut [usize],
        features: Vec<usize>,
        height_limit: usize,
        rng: &mut StdRng,
    ) -> ITree {
        let mut nodes = Vec::new();
        Self::build_node(x, rows, &features, 0, height_limit, rng, &mut nodes);
        ITree { nodes, features }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        x: &Matrix,
        rows: &mut [usize],
        features: &[usize],
        depth: usize,
        height_limit: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<ITreeNode>,
    ) -> usize {
        if depth >= height_limit || rows.len() <= 1 {
            let idx = nodes.len();
            nodes.push(ITreeNode::Leaf { size: rows.len() });
            return idx;
        }
        // Pick a feature with spread; give up after a few attempts (all
        // remaining rows identical on sampled features).
        let mut chosen: Option<(usize, f64, f64)> = None;
        for _ in 0..features.len().max(4) {
            let fi = rng.random_range(0..features.len());
            let f = features[fi];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &r in rows.iter() {
                let v = x.get(r, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                chosen = Some((fi, lo, hi));
                break;
            }
        }
        let Some((fi, lo, hi)) = chosen else {
            let idx = nodes.len();
            nodes.push(ITreeNode::Leaf { size: rows.len() });
            return idx;
        };
        let threshold = rng.random_range(lo..hi);
        let f_global = features[fi];
        // Partition rows in place.
        let mut lt = 0;
        for i in 0..rows.len() {
            if x.get(rows[i], f_global) <= threshold {
                rows.swap(lt, i);
                lt += 1;
            }
        }
        let node_idx = nodes.len();
        nodes.push(ITreeNode::Leaf { size: 0 }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(lt);
        let left = Self::build_node(x, left_rows, features, depth + 1, height_limit, rng, nodes);
        let right = Self::build_node(x, right_rows, features, depth + 1, height_limit, rng, nodes);
        nodes[node_idx] = ITreeNode::Split {
            feature: fi,
            threshold,
            left,
            right,
        };
        node_idx
    }

    fn score_rows(&self, x: &Matrix) -> Vec<f64> {
        let c = average_path_length(self.subsample_size).max(1e-12);
        x.rows_iter()
            .map(|row| {
                let mean_path: f64 = self.trees.iter().map(|t| t.path_length(row)).sum::<f64>()
                    / self.trees.len() as f64;
                2f64.powf(-mean_path / c)
            })
            .collect()
    }
}

impl Detector for IsolationForest {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let n = x.nrows();
        if n < 2 {
            return Err(Error::InsufficientData {
                needed: "at least 2 samples".into(),
                got: n,
            });
        }
        let d = x.ncols();
        self.n_features = d;
        let psi = self.max_samples.min(n);
        self.subsample_size = psi;
        let height_limit = (psi as f64).log2().ceil() as usize;
        let n_tree_features = ((d as f64 * self.max_features_fraction).ceil() as usize).clamp(1, d);

        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_estimators)
            .map(|_| {
                // Sample psi distinct rows (partial Fisher–Yates).
                let mut pool: Vec<usize> = (0..n).collect();
                for i in 0..psi {
                    let j = rng.random_range(i..n);
                    pool.swap(i, j);
                }
                pool.truncate(psi);
                // Sample the feature subset for this tree.
                let mut fpool: Vec<usize> = (0..d).collect();
                for i in 0..n_tree_features {
                    let j = rng.random_range(i..d);
                    fpool.swap(i, j);
                }
                fpool.truncate(n_tree_features);
                Self::build_tree(x, &mut pool, fpool, height_limit, &mut rng)
            })
            .collect();
        self.train_scores = self.score_rows(x);
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::NotFitted("IsolationForest"));
        }
        check_dims(self.n_features, x)?;
        Ok(self.score_rows(x))
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::NotFitted("IsolationForest"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "iforest"
    }

    fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_usize(self.n_estimators);
        w.write_usize(self.max_samples);
        w.write_f64(self.max_features_fraction);
        w.write_u64(self.seed);
        w.write_usize(self.trees.len());
        for tree in &self.trees {
            w.write_usize(tree.nodes.len());
            for node in &tree.nodes {
                match node {
                    ITreeNode::Leaf { size } => {
                        w.write_u8(0);
                        w.write_usize(*size);
                    }
                    ITreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        w.write_u8(1);
                        w.write_usize(*feature);
                        w.write_f64(*threshold);
                        w.write_usize(*left);
                        w.write_usize(*right);
                    }
                }
            }
            w.write_usizes(&tree.features);
        }
        w.write_usize(self.n_features);
        w.write_usize(self.subsample_size);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl IsolationForest {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let n_estimators = r.read_usize()?;
        let max_samples = r.read_usize()?;
        let max_features_fraction = r.read_f64()?;
        let seed = r.read_u64()?;
        let n_trees = r.read_usize()?;
        let mut trees = Vec::new();
        for _ in 0..n_trees {
            let n_nodes = r.read_usize()?;
            let mut nodes = Vec::new();
            for _ in 0..n_nodes {
                nodes.push(match r.read_u8()? {
                    0 => ITreeNode::Leaf {
                        size: r.read_usize()?,
                    },
                    1 => ITreeNode::Split {
                        feature: r.read_usize()?,
                        threshold: r.read_f64()?,
                        left: r.read_usize()?,
                        right: r.read_usize()?,
                    },
                    other => {
                        return Err(Error::InvalidParameter(format!(
                            "snapshot: unknown itree node tag {other}"
                        )))
                    }
                });
            }
            trees.push(ITree {
                nodes,
                features: r.read_usizes()?,
            });
        }
        Ok(Self {
            n_estimators,
            max_samples,
            max_features_fraction,
            seed,
            trees,
            n_features: r.read_usize()?,
            subsample_size: r.read_usize()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
            .collect();
        rows.push(vec![20.0, 20.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn outlier_isolated_fastest() {
        let mut f = IsolationForest::new(100, 3).unwrap();
        f.fit(&grid_with_outlier()).unwrap();
        let s = f.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 100);
        // Scores are anomaly scores in (0, 1).
        assert!(s.iter().all(|&v| v > 0.0 && v < 1.0));
        assert!(s[100] > 0.6, "outlier score {}", s[100]);
    }

    #[test]
    fn average_path_length_reference_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ~ 10.24 (Liu et al. report c(256) approximately 10.24).
        assert!((average_path_length(256) - 10.24).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = grid_with_outlier();
        let mut a = IsolationForest::new(20, 9).unwrap();
        let mut b = IsolationForest::new(20, 9).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.training_scores().unwrap(), b.training_scores().unwrap());
        let mut c = IsolationForest::new(20, 10).unwrap();
        c.fit(&x).unwrap();
        assert_ne!(a.training_scores().unwrap(), c.training_scores().unwrap());
    }

    #[test]
    fn decision_function_on_new_points() {
        let mut f = IsolationForest::new(100, 1).unwrap();
        f.fit(&grid_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.5, 0.5], vec![50.0, -50.0]]).unwrap();
        let s = f.decision_function(&q).unwrap();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn max_features_subset_still_detects() {
        let mut f = IsolationForest::new(100, 2)
            .unwrap()
            .with_max_features_fraction(0.5)
            .unwrap();
        f.fit(&grid_with_outlier()).unwrap();
        let s = f.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 100);
    }

    #[test]
    fn small_max_samples_works() {
        let mut f = IsolationForest::new(50, 4)
            .unwrap()
            .with_max_samples(16)
            .unwrap();
        f.fit(&grid_with_outlier()).unwrap();
        let s = f.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 100);
    }

    #[test]
    fn constant_data_gives_uniform_scores() {
        let x = Matrix::filled(20, 3, 1.0);
        let mut f = IsolationForest::new(10, 0).unwrap();
        f.fit(&x).unwrap();
        let s = f.training_scores().unwrap();
        let first = s[0];
        assert!(s.iter().all(|&v| (v - first).abs() < 1e-9));
    }

    #[test]
    fn validates_inputs() {
        assert!(IsolationForest::new(0, 0).is_err());
        assert!(IsolationForest::new(5, 0)
            .unwrap()
            .with_max_samples(1)
            .is_err());
        assert!(IsolationForest::new(5, 0)
            .unwrap()
            .with_max_features_fraction(0.0)
            .is_err());
        let mut f = IsolationForest::new(5, 0).unwrap();
        assert!(f.fit(&Matrix::zeros(1, 2)).is_err());
        assert!(f.decision_function(&Matrix::zeros(1, 2)).is_err());
        f.fit(&grid_with_outlier()).unwrap();
        assert!(f.decision_function(&Matrix::zeros(1, 9)).is_err());
    }
}
