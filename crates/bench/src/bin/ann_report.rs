//! Approximate-neighbor backend report: exact GEMM sweep vs HNSW.
//!
//! Benchmarks the [`NeighborBackend::Hnsw`] graph index against the exact
//! GEMM-backed sweep at `n in {20k, 100k, 500k}` (index build time, full
//! leave-one-out query sweep time, recall@k on a sampled query set), and
//! times one end-to-end proximity-pool `Suod::fit` pair (exact vs HNSW)
//! with per-detector ROC-AUC deltas on planted outliers. Results go to
//! `BENCH_neighbors.json` in the working directory so the recall/speed
//! tradeoff is tracked across PRs; the header records the git revision,
//! detected SIMD lane, and the HNSW parameters that produced the numbers.
//!
//! The exact sweep is `O(n^2 d)`, so on the single-core CI hosts the
//! `n = 500k` exact cell is *extrapolated* quadratically from the largest
//! measured exact cell and flagged `"exact_extrapolated": true` in the
//! JSON; HNSW is measured for real at every size. All timings are
//! single-thread: the win here is algorithmic (graph search vs exhaustive
//! scan), not parallelism.
//!
//! Recall@k counts a retrieved neighbour as correct when it is at least
//! as close as the true k-th neighbour — the fair definition under
//! distance ties (duplicate rows make index-set comparison ill-posed).
//!
//! Flags: `--quick` shrinks problem sizes for smoke runs; `--smoke`
//! times only the n = 100k index cell and exits non-zero unless HNSW
//! build + query beats the exact build + sweep while holding
//! recall@10 >= 0.95 (the CI regression gate for the approximate
//! backend).

use std::fmt::Write as _;
use std::time::Instant;
use suod::prelude::*;
use suod_linalg::{DistanceBackend, DistanceMetric, KnnIndex, SimdLane};
use suod_metrics::roc_auc;

/// Feature dimension and neighbour count for every index cell.
const DIM: usize = 16;
const K: usize = 10;
/// Query rows sampled for recall measurement (exact ground truth for a
/// sample is affordable even where the full exact sweep is not).
const RECALL_SAMPLE: usize = 2_000;

fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Inlier blob plus ~0.05% scattered planted outliers; returns labels.
/// Outliers land in a huge box, and contamination is kept very sparse on
/// purpose: in d = 16 the box's pairwise distances concentrate near
/// `spread * sqrt(2d/12) ~ 1.42 * ||x||`, so past a few hundred outliers
/// the closest few start undercutting the blob distance and become each
/// other's nearest neighbours — which degrades the *exact* LOF-family
/// scores and makes the exact-vs-HNSW AUC comparison measure the data
/// shape instead of the index. At 0.05% every outlier's k-neighbourhood
/// is pure blob for both backends.
fn planted_outliers(n: usize, d: usize, seed: u64) -> (Matrix, Vec<i32>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_out = (n / 2000).max(8);
    let mut data = Vec::with_capacity(n * d);
    let mut y = vec![0; n];
    for (i, label) in y.iter_mut().enumerate() {
        let outlier = i >= n - n_out;
        let spread = if outlier { 80.0 } else { 1.5 };
        if outlier {
            *label = 1;
        }
        for _ in 0..d {
            data.push((rng.random_range(0.0..1.0) - 0.5) * spread);
        }
    }
    (Matrix::from_vec(n, d, data).expect("shape consistent"), y)
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout — provenance for the committed report.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn exact_config() -> KernelConfig {
    KernelConfig {
        backend: DistanceBackend::Gemm,
        kdtree_crossover_dim: 0,
        ..KernelConfig::default()
    }
}

fn hnsw_config() -> KernelConfig {
    KernelConfig {
        backend: DistanceBackend::Gemm,
        neighbor: NeighborBackend::Hnsw(HnswParams::default()),
        kdtree_crossover_dim: 0,
        ..KernelConfig::default()
    }
}

/// One index cell: build + full self-sweep timings for both backends,
/// plus sampled recall@k of HNSW against exact ground truth.
struct IndexCell {
    exact_build_s: f64,
    exact_query_s: f64,
    hnsw_build_s: f64,
    hnsw_query_s: f64,
    recall: f64,
    /// True when the exact timings were extrapolated `O(n^2)` from a
    /// smaller measured cell instead of run for real.
    exact_extrapolated: bool,
}

impl IndexCell {
    /// Measures one cell. `exact_base` is `Some((n_base, build_s,
    /// query_s))` from the largest measured exact cell; when the exact
    /// sweep at this `n` is infeasible, its timings are extrapolated
    /// quadratically from that base instead of measured.
    fn measure(x: &Matrix, measure_exact: bool, exact_base: Option<(usize, f64, f64)>) -> Self {
        let n = x.nrows();
        let reps = if n <= 20_000 { 3 } else { 1 };

        let mut hnsw_build_s = f64::INFINITY;
        let mut hnsw: Option<KnnIndex> = None;
        for _ in 0..reps {
            let start = Instant::now();
            let index =
                KnnIndex::build_with_threads(x, DistanceMetric::Euclidean, hnsw_config(), 1)
                    .expect("non-empty");
            hnsw_build_s = hnsw_build_s.min(start.elapsed().as_secs_f64());
            hnsw = Some(index);
        }
        let hnsw = hnsw.expect("reps >= 1");
        assert!(hnsw.uses_hnsw(), "hnsw backend must engage at n = {n}");
        let mut found: Vec<Vec<suod_linalg::Neighbor>> = Vec::new();
        let hnsw_query_s = min_time(reps, || {
            found = hnsw.self_query_batch(K, 1);
        });

        // Exact ground truth for the sampled queries is always
        // affordable (sample x n scan), even when the full sweep is not:
        // it is what makes the 500k recall number real rather than
        // extrapolated.
        let exact =
            KnnIndex::build_with(x, DistanceMetric::Euclidean, exact_config()).expect("non-empty");
        let stride = (n / RECALL_SAMPLE).max(1);
        let sampled: Vec<usize> = (0..n).step_by(stride).take(RECALL_SAMPLE).collect();
        let mut hits = 0usize;
        let mut total = 0usize;
        for &i in &sampled {
            let truth = exact.query_excluding(x.row(i), K, i);
            let radius = truth.last().expect("k >= 1").distance;
            total += truth.len();
            hits += found[i]
                .iter()
                .filter(|f| f.distance <= radius * (1.0 + 1e-12) + 1e-12)
                .count();
        }
        let recall = hits as f64 / total as f64;

        let (exact_build_s, exact_query_s, exact_extrapolated) = if measure_exact {
            let exact_build_s = min_time(reps, || {
                let _ = KnnIndex::build_with(x, DistanceMetric::Euclidean, exact_config())
                    .expect("non-empty");
            });
            let exact_query_s = min_time(reps, || {
                let _ = exact.self_query_batch(K, 1);
            });
            (exact_build_s, exact_query_s, false)
        } else {
            let (n_base, build_s, query_s) = exact_base.expect("extrapolation base measured first");
            let scale = (n as f64 / n_base as f64).powi(2);
            (build_s * scale, query_s * scale, true)
        };

        Self {
            exact_build_s,
            exact_query_s,
            hnsw_build_s,
            hnsw_query_s,
            recall,
            exact_extrapolated,
        }
    }

    fn exact_total(&self) -> f64 {
        self.exact_build_s + self.exact_query_s
    }

    fn hnsw_total(&self) -> f64 {
        self.hnsw_build_s + self.hnsw_query_s
    }

    fn json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"exact_build_s\": {:.6}, \"exact_query_s\": {:.6}, \
             \"hnsw_build_s\": {:.6}, \"hnsw_query_s\": {:.6}, \
             \"speedup\": {:.4}, \"recall_at_{K}\": {:.4}, \
             \"exact_extrapolated\": {}}}",
            self.exact_build_s,
            self.exact_query_s,
            self.hnsw_build_s,
            self.hnsw_query_s,
            self.exact_total() / self.hnsw_total(),
            self.recall,
            self.exact_extrapolated,
        );
        s
    }
}

fn proximity_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 12,
            metric: Metric::Euclidean,
        },
        ModelSpec::Loop { n_neighbors: 10 },
        ModelSpec::Cof { n_neighbors: 10 },
        ModelSpec::Abod { n_neighbors: 8 },
    ]
}

/// End-to-end proximity-pool fit: wall time, per-detector training-score
/// ROC-AUC, and the fit's exactness-fallback counter.
fn pool_fit(backend: NeighborBackend, x: &Matrix, y: &[i32]) -> (f64, Vec<f64>, u64) {
    // Projection off: each detector would otherwise fit in its own JL
    // subspace (distinct fingerprints), defeating the shared neighbour
    // cache and diluting the backend comparison with 5x index builds.
    let mut model = Suod::builder()
        .base_estimators(proximity_pool())
        .kernel(KernelConfig::default().with_neighbor(backend))
        .n_workers(1)
        .with_projection(false)
        .with_approximation(false)
        .seed(7)
        .build()
        .expect("valid config");
    let start = Instant::now();
    model.fit(x).expect("fit succeeds");
    let fit_s = start.elapsed().as_secs_f64();
    let fallbacks = model
        .diagnostics()
        .expect("fit records diagnostics")
        .ann_fallbacks();
    let scores = model.training_scores().expect("fitted");
    let aucs: Vec<f64> = (0..scores.ncols())
        .map(|m| {
            let col: Vec<f64> = (0..scores.nrows()).map(|i| scores.get(i, m)).collect();
            roc_auc(y, &col).expect("labelled")
        })
        .collect();
    (fit_s, aucs, fallbacks)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = suod_bench::Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let rev = git_rev();
    let params = HnswParams::default();

    if args.iter().any(|a| a == "--smoke") {
        // CI gates on the acceptance cell (n = 100k): HNSW build + query
        // must beat the exact build + sweep while holding recall >= 0.95.
        let n = 100_000;
        println!("ann smoke: index cell n = {n}, d = {DIM}, k = {K} (single-thread)");
        let (x, _) = planted_outliers(n, DIM, n as u64);
        let cell = IndexCell::measure(&x, true, None);
        println!(
            "exact build {:.3}s + sweep {:.3}s = {:.3}s   hnsw build {:.3}s + sweep {:.3}s \
             = {:.3}s ({:.2}x)   recall@{K} {:.4}",
            cell.exact_build_s,
            cell.exact_query_s,
            cell.exact_total(),
            cell.hnsw_build_s,
            cell.hnsw_query_s,
            cell.hnsw_total(),
            cell.exact_total() / cell.hnsw_total(),
            cell.recall,
        );
        if cell.hnsw_total() >= cell.exact_total() {
            eprintln!("FAIL: hnsw build+query no faster than exact at n = {n}");
            std::process::exit(1);
        }
        if cell.recall < 0.95 {
            eprintln!(
                "FAIL: recall@{K} {:.4} below 0.95 at default ef_search",
                cell.recall
            );
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    println!(
        "Approximate-neighbor backend report (rev {rev}, host cores: {host_cores}, \
         lane: {}, single-thread timings)",
        SimdLane::detect()
    );
    println!(
        "hnsw params: m = {}, ef_construction = {}, ef_search = {}",
        params.m, params.ef_construction, params.ef_search
    );

    // --- Index cells: build + full self-sweep, exact vs HNSW. --------------
    // The exact sweep is O(n^2 d); cells past `exact_cap` extrapolate the
    // exact timings quadratically from the largest measured cell (flagged
    // in the JSON) — HNSW is measured for real everywhere.
    let sizes: Vec<usize> = scale.pick(
        vec![5_000, 20_000],
        vec![20_000, 100_000, 500_000],
        vec![20_000, 100_000, 500_000],
    );
    let exact_cap = scale.pick(20_000, 100_000, 500_000);
    let mut index_rows: Vec<String> = Vec::new();
    let mut exact_base: Option<(usize, f64, f64)> = None;
    for &n in &sizes {
        let (x, _) = planted_outliers(n, DIM, n as u64);
        let measure_exact = n <= exact_cap;
        let cell = IndexCell::measure(&x, measure_exact, exact_base);
        if measure_exact {
            exact_base = Some((n, cell.exact_build_s, cell.exact_query_s));
        }
        println!(
            "index n = {n:>6}  exact {:>9.3}s{}  hnsw {:>8.3}s (build {:>7.3}s + sweep \
             {:>7.3}s)  {:>6.2}x  recall@{K} {:.4}",
            cell.exact_total(),
            if cell.exact_extrapolated { "*" } else { " " },
            cell.hnsw_total(),
            cell.hnsw_build_s,
            cell.hnsw_query_s,
            cell.exact_total() / cell.hnsw_total(),
            cell.recall,
        );
        index_rows.push(format!("\"n{n}\": {}", cell.json()));
    }
    if sizes.iter().any(|&n| n > exact_cap) {
        println!(
            "  (* exact timings extrapolated O(n^2) from n = {})",
            exact_cap
        );
    }

    // --- End-to-end proximity-pool fit at the acceptance size. -------------
    let pool_n = scale.pick(10_000, 100_000, 100_000);
    let (x, y) = planted_outliers(pool_n, DIM, 77);
    println!("pool fit n = {pool_n}: 5 proximity detectors (knn/lof/loop/cof/abod), 1 worker");
    let (exact_fit_s, exact_aucs, _) = pool_fit(NeighborBackend::Exact, &x, &y);
    let (hnsw_fit_s, hnsw_aucs, fallbacks) =
        pool_fit(NeighborBackend::Hnsw(HnswParams::default()), &x, &y);
    let max_auc_delta = exact_aucs
        .iter()
        .zip(&hnsw_aucs)
        .map(|(e, h)| (e - h).abs())
        .fold(0.0f64, f64::max);
    println!(
        "pool fit exact {exact_fit_s:.3}s  hnsw {hnsw_fit_s:.3}s ({:.2}x)  \
         max |auc delta| {max_auc_delta:.4}  ann fallbacks {fallbacks}",
        exact_fit_s / hnsw_fit_s,
    );
    for (m, (e, h)) in exact_aucs.iter().zip(&hnsw_aucs).enumerate() {
        println!(
            "  detector {m}: auc exact {e:.4}  hnsw {h:.4}  delta {:+.4}",
            h - e
        );
    }

    // --- Report. -----------------------------------------------------------
    let auc_list = |aucs: &[f64]| {
        aucs.iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"git_rev\": \"{rev}\",\n  \"host_cores\": {host_cores},\n  \
         \"lane_detected\": \"{}\",\n  \"scale\": \"{scale:?}\",\n  \"n_threads\": 1,\n  \
         \"d\": {DIM},\n  \"k\": {K},\n  \"recall_sample\": {RECALL_SAMPLE},\n  \
         \"hnsw_params\": {{\"m\": {}, \"ef_construction\": {}, \"ef_search\": {}}},\n  \
         \"exact_extrapolation_note\": \"exact cells past n={exact_cap} are extrapolated \
         O(n^2) from the largest measured exact cell (single-core host); hnsw and recall \
         are measured at every n\",\n  \"index\": {{\n    {}\n  }},\n  \
         \"pool_fit_n{pool_n}\": {{\"detectors\": [\"knn\", \"lof\", \"loop\", \"cof\", \
         \"abod\"], \"exact_fit_s\": {exact_fit_s:.6}, \"hnsw_fit_s\": {hnsw_fit_s:.6}, \
         \"speedup\": {:.4}, \"ann_fallbacks\": {fallbacks}, \
         \"max_auc_delta\": {max_auc_delta:.4}, \"auc_exact\": [{}], \
         \"auc_hnsw\": [{}]}}\n}}\n",
        SimdLane::detect(),
        params.m,
        params.ef_construction,
        params.ef_search,
        index_rows.join(",\n    "),
        exact_fit_s / hnsw_fit_s,
        auc_list(&exact_aucs),
        auc_list(&hnsw_aucs),
    );
    std::fs::write("BENCH_neighbors.json", &json).expect("write BENCH_neighbors.json");
    println!("wrote BENCH_neighbors.json");
}
