//! Network front-end system tests: the `suod-wire/1` binary protocol
//! over real loopback sockets.
//!
//! The contract under test: many parallel keep-alive clients receive
//! scores **bitwise identical** to offline `combined_scores`, through a
//! busy flood and a mid-stream hot reload; pipelined admission
//! decisions (per-client quotas, priority lanes) are deterministic
//! in-order functions of the frame sequence; an idle client is closed
//! without stalling anyone else; and a malformed frame is answered in
//! band and never takes a worker down.

use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use suod::prelude::*;
use suod_serve::wire::{read_response, write_request, WireRequest};
use suod_serve::{
    serve_front, BusyReason, FrontConfig, Lane, LaneConfig, ScoreService, ServeConfig, WireClient,
    WireResponse,
};

/// 90 x 5 synthetic grid with two planted outliers (the serve-suite
/// training set).
fn data() -> Matrix {
    let mut rows: Vec<Vec<f64>> = (0..88)
        .map(|i| {
            vec![
                (i % 10) as f64 * 0.2,
                (i / 10) as f64 * 0.2,
                ((i * 3) % 7) as f64 * 0.1,
                ((i * 5) % 11) as f64 * 0.1,
                ((i * 7) % 13) as f64 * 0.1,
            ]
        })
        .collect();
    rows.push(vec![9.0; 5]);
    rows.push(vec![-9.0, 9.0, -9.0, 9.0, -9.0]);
    Matrix::from_rows(&rows).unwrap()
}

/// Query matrices disjoint from the training grid, 4 rows each.
fn queries(n: usize) -> Vec<Matrix> {
    (0..n)
        .map(|r| {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|i| {
                    let k = (r * 4 + i) as f64;
                    vec![
                        (k * 0.17) % 2.0,
                        (k * 0.29) % 2.0,
                        (k * 0.41) % 0.7,
                        (k * 0.53) % 1.1,
                        (k * 0.61) % 1.3,
                    ]
                })
                .collect();
            Matrix::from_rows(&rows).unwrap()
        })
        .collect()
}

fn healthy_pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.5,
        },
        ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        },
        ModelSpec::Loda {
            n_members: 20,
            n_bins: 10,
        },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
    ]
}

fn fit(seed: u64, n_workers: usize) -> Suod {
    let mut clf = Suod::builder()
        .base_estimators(healthy_pool())
        .min_healthy_fraction(0.5)
        .n_workers(n_workers)
        .seed(seed)
        .build()
        .unwrap();
    clf.fit(&data()).unwrap();
    clf
}

fn bits(scores: &[f64]) -> Vec<u64> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Scores with retry-on-busy (the flood keeps the queue small, so any
/// client may bounce; a bounce must never change the eventual bits).
fn score_with_retry(client: &mut WireClient, query: &Matrix) -> (Vec<f64>, usize) {
    let mut busy = 0usize;
    for _ in 0..10_000 {
        match client.score(query, Lane::Normal, None).unwrap() {
            WireResponse::Ok { scores, .. } => return (scores, busy),
            WireResponse::Busy { .. } => {
                busy += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    panic!("server stayed busy for 10s");
}

/// The flagship: N parallel keep-alive clients, scores bitwise equal to
/// offline `combined_scores`, interleaved with a pipelined busy flood
/// and a mid-stream `ScoreService::reload` to a different pool.
#[test]
fn parallel_keepalive_clients_are_bit_identical_through_flood_and_reload() {
    const CLIENTS: usize = 6;
    const PER_PHASE: usize = 3;
    const FLOOD: usize = 8;

    let all_queries = Arc::new(queries(CLIENTS * PER_PHASE + 1));
    let flood_query = all_queries.last().unwrap().clone();

    // Offline references for both pool generations, computed before the
    // pools move into the service.
    let gen0 = fit(41, 2);
    let gen1 = fit(43, 1);
    let offline0: Vec<Vec<u64>> = all_queries
        .iter()
        .map(|q| bits(&gen0.combined_scores(q).unwrap()))
        .collect();
    let offline1: Vec<Vec<u64>> = all_queries
        .iter()
        .map(|q| bits(&gen1.combined_scores(q).unwrap()))
        .collect();
    let offline0 = Arc::new(offline0);
    let offline1 = Arc::new(offline1);

    // A deliberately small queue so the flood produces real `busy`
    // backpressure at the wire.
    let mut service = ScoreService::new(
        gen0,
        ServeConfig {
            queue_capacity: 4,
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    service.spawn_dispatcher();
    let service = Arc::new(service);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let front = FrontConfig {
                // One worker per keep-alive client: every connection in
                // this test stays open across the reload fence, so a
                // smaller pool would park the excess clients in the
                // hand-off queue until the idle timeout reclaims a
                // worker.
                worker_threads: CLIENTS,
                max_conns: CLIENTS,
                ..FrontConfig::default()
            };
            serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
        })
    };

    // Two rendezvous: all clients finish phase 1, then the reload
    // happens, then phase 2 starts — so each response's generation is
    // known exactly.
    let reload_fence = Arc::new(Barrier::new(CLIENTS + 1));
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        let all_queries = Arc::clone(&all_queries);
        let offline0 = Arc::clone(&offline0);
        let offline1 = Arc::clone(&offline1);
        let reload_fence = Arc::clone(&reload_fence);
        let flood_query = flood_query.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = WireClient::connect(&addr).unwrap();
            let mut busy_seen = 0usize;

            // Phase 1 (generation 0), over one keep-alive socket.
            for r in 0..PER_PHASE {
                let q = c * PER_PHASE + r;
                let (scores, busy) = score_with_retry(&mut client, &all_queries[q]);
                busy_seen += busy;
                assert_eq!(bits(&scores), offline0[q], "client {c} request {r} (gen 0)");
            }

            // Client 0 doubles as the flood: a pipelined burst far past
            // the queue capacity. Ok responses must still be exact; the
            // rest bounce as busy — never an error, never a drop.
            if c == 0 {
                let mut ids = Vec::new();
                for _ in 0..FLOOD {
                    ids.push(client.submit(&flood_query, Lane::Normal, None).unwrap());
                }
                for id in ids {
                    let response = client.read_response().unwrap().expect("flood response");
                    assert_eq!(response.id(), id, "responses arrive in request order");
                    match response {
                        WireResponse::Ok { scores, .. } => {
                            assert_eq!(
                                bits(&scores),
                                offline0[CLIENTS * PER_PHASE],
                                "flood scores stay exact under pressure"
                            );
                        }
                        WireResponse::Busy { .. } => busy_seen += 1,
                        other => panic!("flood got {other:?}"),
                    }
                }
            }

            reload_fence.wait(); // phase 1 + flood complete
            reload_fence.wait(); // reload done

            // Phase 2 (generation 1), same socket, same queries.
            for r in 0..PER_PHASE {
                let q = c * PER_PHASE + r;
                let (scores, busy) = score_with_retry(&mut client, &all_queries[q]);
                busy_seen += busy;
                assert_eq!(bits(&scores), offline1[q], "client {c} request {r} (gen 1)");
            }
            busy_seen
        }));
    }

    reload_fence.wait();
    let reloaded = service.reload(gen1).unwrap();
    assert_eq!(reloaded.epoch, 1);
    reload_fence.wait();

    let busy_seen: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let front = server.join().unwrap();
    assert_eq!(front.conns_accepted, CLIENTS as u64);
    // Every frame got exactly one response: nothing dropped, nothing
    // double-answered.
    let responses = front.responses_ok + front.busy_queue + front.busy_quota + front.busy_lane;
    assert_eq!(front.wire_requests, responses);
    assert_eq!(front.responses_error, 0);
    // With quotas and lanes disabled, every busy the clients saw came
    // from the service queue, and vice versa.
    assert_eq!(front.busy_queue, busy_seen as u64);
    assert_eq!(front.busy_quota + front.busy_lane, 0);
}

/// Per-client quota: a client that pipelines K frames in one write gets
/// frame 1 admitted and frames 2..K bounced `busy(quota)` — decided
/// before any response is written, so the outcome sequence is exact.
#[test]
fn pipelined_quota_rejections_are_deterministic_and_in_order() {
    let service = ScoreService::new(fit(41, 1), ServeConfig::default()).unwrap();
    // No dispatcher: the queue drains only when this test says so, so
    // the first request's quota slot is provably held while frames 2..3
    // are admitted.
    let service = Arc::new(service);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let front = FrontConfig {
                worker_threads: 1,
                max_conns: 1,
                lanes: LaneConfig {
                    per_client_inflight: 1,
                    normal_lane_headroom: 1.0,
                },
                ..FrontConfig::default()
            };
            serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
        })
    };

    // Three frames in ONE write, so the worker drains them as a single
    // pipelined batch.
    let query = queries(1).remove(0);
    let mut burst = Vec::new();
    for id in 1..=3u64 {
        write_request(
            &mut burst,
            &WireRequest {
                id,
                lane: Lane::Normal,
                deadline_ms: None,
                rows: query.clone(),
            },
        )
        .unwrap();
    }
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    use std::io::Write as _;
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(&burst).unwrap();
    writer.flush().unwrap();

    // Drain the one admitted request so its response can be written.
    let mut retired = 0usize;
    while retired == 0 {
        retired = service.process_once();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(retired, 1, "only frame 1 made it past the quota");

    let mut reader = std::io::BufReader::new(stream);
    let first = read_response(&mut reader).unwrap().unwrap();
    assert!(
        matches!(&first, WireResponse::Ok { id: 1, .. }),
        "frame 1 scores: {first:?}"
    );
    for expected_id in 2..=3u64 {
        let response = read_response(&mut reader).unwrap().unwrap();
        match response {
            WireResponse::Busy { id, reason, .. } => {
                assert_eq!(id, expected_id);
                assert_eq!(reason, BusyReason::Quota);
            }
            other => panic!("frame {expected_id} expected busy(quota), got {other:?}"),
        }
    }
    drop(reader);

    let front = server.join().unwrap();
    assert_eq!(front.wire_requests, 3);
    assert_eq!(front.responses_ok, 1);
    assert_eq!(front.busy_quota, 2);
}

/// Priority lanes: once the normal lane's headroom is spent, normal
/// frames bounce `busy(lane)` while a high-lane frame in the same
/// pipelined batch still admits.
#[test]
fn high_lane_admits_past_the_normal_lane_headroom() {
    let service = ScoreService::new(
        fit(41, 1),
        ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let service = Arc::new(service);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let front = FrontConfig {
                worker_threads: 1,
                max_conns: 1,
                lanes: LaneConfig {
                    per_client_inflight: 0,
                    // Queue capacity 4 → normal lane stops at depth 2.
                    normal_lane_headroom: 0.5,
                },
                ..FrontConfig::default()
            };
            serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
        })
    };

    let query = queries(1).remove(0);
    let mut burst = Vec::new();
    for (id, lane) in [
        (1, Lane::Normal), // depth 0 → admitted
        (2, Lane::Normal), // depth 1 → admitted
        (3, Lane::Normal), // depth 2 = threshold → busy(lane)
        (4, Lane::High),   // high lane ignores the headroom → admitted
    ] {
        write_request(
            &mut burst,
            &WireRequest {
                id,
                lane,
                deadline_ms: None,
                rows: query.clone(),
            },
        )
        .unwrap();
    }
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    use std::io::Write as _;
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(&burst).unwrap();
    writer.flush().unwrap();

    let mut retired = 0usize;
    while retired < 3 {
        let n = service.process_once();
        if n == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        retired += n;
    }

    let mut reader = std::io::BufReader::new(stream);
    let expect: [(u64, bool); 4] = [(1, true), (2, true), (3, false), (4, true)];
    for (id, ok) in expect {
        let response = read_response(&mut reader).unwrap().unwrap();
        assert_eq!(response.id(), id);
        match (ok, response) {
            (true, WireResponse::Ok { .. }) => {}
            (false, WireResponse::Busy { reason, .. }) => {
                assert_eq!(reason, BusyReason::Lane)
            }
            (_, other) => panic!("frame {id}: unexpected {other:?}"),
        }
    }
    drop(reader);

    let front = server.join().unwrap();
    assert_eq!(front.responses_ok, 3);
    assert_eq!(front.busy_lane, 1);
}

/// A client that connects and sends nothing is closed at the idle
/// timeout; a concurrent client keeps scoring the whole time.
#[test]
fn idle_client_is_closed_without_stalling_others() {
    let mut service = ScoreService::new(fit(41, 1), ServeConfig::default()).unwrap();
    service.spawn_dispatcher();
    let service = Arc::new(service);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let front = FrontConfig {
                worker_threads: 2,
                max_conns: 2,
                idle_timeout: Duration::from_millis(150),
                ..FrontConfig::default()
            };
            serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
        })
    };

    // The silent client arrives first and would have pinned the old
    // single-threaded listener forever.
    let idle = TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let query = queries(1).remove(0);
    let offline = bits(&fit(41, 1).combined_scores(&query).unwrap());
    let mut client = WireClient::connect(&addr).unwrap();
    for _ in 0..3 {
        match client.score(&query, Lane::Normal, None).unwrap() {
            WireResponse::Ok { scores, .. } => assert_eq!(bits(&scores), offline),
            other => panic!("unexpected {other:?}"),
        }
    }
    drop(client);

    // The server hangs up on the idle socket: read returns EOF well
    // before our own 5s guard.
    use std::io::Read as _;
    let mut buf = [0u8; 1];
    let n = (&idle).read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection should be closed by the server");

    let front = server.join().unwrap();
    assert_eq!(front.conns_idle_closed, 1);
    assert_eq!(front.responses_ok, 3);
}

/// A malformed binary frame is answered with an in-band error frame and
/// a close — and the next connection is served normally.
#[test]
fn malformed_frame_is_answered_in_band_and_never_kills_the_server() {
    let mut service = ScoreService::new(fit(41, 1), ServeConfig::default()).unwrap();
    service.spawn_dispatcher();
    let service = Arc::new(service);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let front = FrontConfig {
                worker_threads: 1,
                max_conns: 2,
                ..FrontConfig::default()
            };
            serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
        })
    };

    // Valid magic, unsupported version: enters the binary path, then
    // fails framing.
    use std::io::Write as _;
    let mut bad = TcpStream::connect(&addr).unwrap();
    bad.write_all(b"SWIR\x63\x01AAAAAAAA\x00\x00\x00\x00")
        .unwrap();
    bad.flush().unwrap();
    let mut reader = std::io::BufReader::new(bad.try_clone().unwrap());
    let response = read_response(&mut reader).unwrap().unwrap();
    match response {
        WireResponse::Error { id, message } => {
            assert_eq!(id, 0, "framing faults cannot trust any request id");
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The worker survived; a healthy client is served next.
    let query = queries(1).remove(0);
    let offline = bits(&fit(41, 1).combined_scores(&query).unwrap());
    let mut client = WireClient::connect(&addr).unwrap();
    match client.score(&query, Lane::Normal, None).unwrap() {
        WireResponse::Ok { scores, .. } => assert_eq!(bits(&scores), offline),
        other => panic!("unexpected {other:?}"),
    }
    drop(client);

    let front = server.join().unwrap();
    assert_eq!(front.responses_error, 1);
    assert_eq!(front.responses_ok, 1);
}

/// The binary protocol is bit-transparent end to end across worker
/// counts: 1 and 4 front workers produce identical response bytes for
/// the same request set (the cross-worker identity the CI gate holds).
#[test]
fn scores_are_bit_identical_across_front_worker_counts() {
    let query = queries(1).remove(0);
    let offline = bits(&fit(41, 2).combined_scores(&query).unwrap());

    for worker_threads in [1, 4] {
        let mut service = ScoreService::new(fit(41, 2), ServeConfig::default()).unwrap();
        service.spawn_dispatcher();
        let service = Arc::new(service);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let front = FrontConfig {
                    worker_threads,
                    max_conns: 3,
                    ..FrontConfig::default()
                };
                serve_front(&listener, &service, &front, &suod::observe::noop()).unwrap()
            })
        };
        let mut handles = Vec::new();
        for _ in 0..3 {
            let addr = addr.clone();
            let query = query.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr).unwrap();
                match client.score(&query, Lane::Normal, None).unwrap() {
                    WireResponse::Ok { scores, .. } => bits(&scores),
                    other => panic!("unexpected {other:?}"),
                }
            }));
        }
        for handle in handles {
            assert_eq!(
                handle.join().unwrap(),
                offline,
                "front with {worker_threads} workers must stay bit-exact"
            );
        }
        server.join().unwrap();
    }
}
