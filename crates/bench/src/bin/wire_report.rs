//! Network front-end report: request throughput for the `suod-wire/1`
//! binary keep-alive protocol versus the one-shot text debug path.
//!
//! Sweeps (wire format x client connections x front worker threads)
//! against a live [`serve_front`] listener on loopback: each cell fits
//! the same seeded pool, starts a `ScoreService` plus front end, and
//! fires an open-loop generator at it — binary clients pipeline a
//! bounded window of frames per keep-alive socket without waiting for
//! individual replies, text clients pay a fresh TCP connection per
//! request. `busy` responses are *measured*, never retried, and every
//! `ok` response is compared bit-for-bit against offline
//! [`Suod::combined_scores`], so each cell doubles as an end-to-end
//! determinism check. Results go to `BENCH_wire.json` with the git
//! revision and core count in the header.
//!
//! Flags: `--quick`/`--paper` scale the trace; `--smoke` runs the CI
//! gates and exits non-zero unless (1) no request in any gate cell goes
//! unanswered (zero dropped frames), (2) every scored response is
//! bit-identical to offline scoring at 1, 2, and 4 front workers, and
//! (3) binary keep-alive throughput beats one-shot text at equal
//! worker count.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::time::{Duration, Instant};
use suod::prelude::*;
use suod_bench::Scale;
use suod_datasets::registry;
use suod_linalg::SimdLane;
use suod_serve::{
    score_rows_text, serve_front, FrontConfig, FrontReport, Lane, ScoreService, ServeConfig,
    WireClient, WireResponse,
};

/// Frames a binary client keeps in flight per keep-alive socket. Below
/// the front end's `max_pipeline` default so nothing parks in the
/// socket buffer.
const CLIENT_WINDOW: usize = 8;

/// Rows per request — small, so the sweep measures wire and dispatch
/// overhead rather than kernel time.
const ROWS_PER_REQUEST: usize = 8;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Same six-model heterogeneous pool as `serve_report`, fitted with a
/// fixed seed and worker count so every cell serves an identical model
/// and the offline reference bits transfer across cells.
fn fit(x: &Matrix) -> Suod {
    let mut clf = Suod::builder()
        .base_estimators(vec![
            ModelSpec::Hbos {
                n_bins: 10,
                tolerance: 0.3,
            },
            ModelSpec::Hbos {
                n_bins: 20,
                tolerance: 0.5,
            },
            ModelSpec::IForest {
                n_estimators: 20,
                max_features: 0.8,
            },
            ModelSpec::Loda {
                n_members: 20,
                n_bins: 10,
            },
            ModelSpec::Pca {
                variance_retained: 0.9,
            },
            ModelSpec::Knn {
                n_neighbors: 5,
                method: KnnMethod::Largest,
            },
        ])
        .min_healthy_fraction(0.5)
        .n_workers(2)
        .seed(17)
        .build()
        .expect("valid configuration");
    clf.fit(x).expect("fit succeeds");
    clf
}

#[derive(Debug, Default, Clone, Copy)]
struct ClientStats {
    ok: u64,
    busy: u64,
    shed: u64,
    error: u64,
    /// Requests that never got a response (connect failure, server
    /// hang-up, torn frame). The smoke gate requires zero.
    dropped: u64,
    /// `ok` responses whose score bits differ from offline scoring.
    bit_mismatch: u64,
}

impl ClientStats {
    fn merge(&mut self, other: ClientStats) {
        self.ok += other.ok;
        self.busy += other.busy;
        self.shed += other.shed;
        self.error += other.error;
        self.dropped += other.dropped;
        self.bit_mismatch += other.bit_mismatch;
    }
}

/// Reads one pipelined response and tallies it. Returns `false` when
/// the stream is dead (caller counts the rest of the window dropped).
fn drain_one(
    client: &mut WireClient,
    inflight: &mut VecDeque<(u64, usize)>,
    ref_bits: &[Vec<u64>],
    stats: &mut ClientStats,
) -> bool {
    let response = match client.read_response() {
        Ok(Some(response)) => response,
        Ok(None) | Err(_) => return false,
    };
    let Some((id, qi)) = inflight.pop_front() else {
        return false;
    };
    if response.id() != id {
        stats.error += 1;
        return false;
    }
    match response {
        WireResponse::Ok { scores, .. } => {
            let bits: Vec<u64> = scores.iter().map(|v| v.to_bits()).collect();
            if bits == ref_bits[qi] {
                stats.ok += 1;
            } else {
                stats.bit_mismatch += 1;
            }
        }
        WireResponse::Busy { .. } => stats.busy += 1,
        WireResponse::Shed { .. } => stats.shed += 1,
        WireResponse::Error { .. } => stats.error += 1,
    }
    true
}

/// One keep-alive socket, `n_requests` frames, bounded-window open
/// loop: submit without waiting until [`CLIENT_WINDOW`] are in flight,
/// then trade one response per new frame.
fn binary_client(
    addr: &str,
    queries: &[Matrix],
    ref_bits: &[Vec<u64>],
    n_requests: usize,
) -> ClientStats {
    let mut stats = ClientStats::default();
    let Ok(mut client) = WireClient::connect(addr) else {
        stats.dropped = n_requests as u64;
        return stats;
    };
    let mut inflight: VecDeque<(u64, usize)> = VecDeque::new();
    let mut issued = 0usize;
    for i in 0..n_requests {
        let qi = i % queries.len();
        match client.submit(&queries[qi], Lane::Normal, None) {
            Ok(id) => {
                issued += 1;
                inflight.push_back((id, qi));
            }
            Err(_) => break,
        }
        if inflight.len() >= CLIENT_WINDOW
            && !drain_one(&mut client, &mut inflight, ref_bits, &mut stats)
        {
            break;
        }
    }
    while !inflight.is_empty() {
        if !drain_one(&mut client, &mut inflight, ref_bits, &mut stats) {
            break;
        }
    }
    stats.dropped += (n_requests - issued + inflight.len()) as u64;
    stats
}

/// One fresh TCP connection per request — the debug path's natural
/// usage and the baseline the binary protocol is gated against.
fn text_client(
    addr: &str,
    text_rows: &[Vec<Vec<f64>>],
    ref_bits: &[Vec<u64>],
    n_requests: usize,
) -> ClientStats {
    let mut stats = ClientStats::default();
    for i in 0..n_requests {
        let qi = i % text_rows.len();
        match score_rows_text(addr, &text_rows[qi]) {
            Ok(scores) => {
                let bits: Vec<u64> = scores.iter().map(|v| v.to_bits()).collect();
                if bits == ref_bits[qi] {
                    stats.ok += 1;
                } else {
                    stats.bit_mismatch += 1;
                }
            }
            Err(msg) if msg.contains("busy") => stats.busy += 1,
            Err(msg) if msg.contains("shed") => stats.shed += 1,
            Err(msg) if msg.contains("refused") => stats.error += 1,
            Err(_) => stats.dropped += 1,
        }
    }
    stats
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Binary,
}

impl Format {
    fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Binary => "binary",
        }
    }
}

struct Cell {
    wall_s: f64,
    req_per_s: f64,
    rows_per_s: f64,
    stats: ClientStats,
    front: FrontReport,
}

/// The shared per-run workload: training matrix, the query set in both
/// wire representations, and the offline reference bits every response
/// is checked against.
struct Workload<'a> {
    x: &'a Matrix,
    queries: &'a [Matrix],
    text_rows: &'a [Vec<Vec<f64>>],
    ref_bits: &'a [Vec<u64>],
}

/// Fits a pool, serves it behind a front end with `workers` connection
/// workers, and drives it with `conns` parallel clients issuing
/// `reqs_per_conn` requests each in the given wire format.
fn run_cell(
    w: &Workload,
    format: Format,
    conns: usize,
    workers: usize,
    reqs_per_conn: usize,
) -> Cell {
    let config = ServeConfig {
        queue_capacity: 256,
        batch_window: Duration::from_millis(1),
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let mut service = ScoreService::new(fit(w.x), config).expect("valid serve config");
    service.spawn_dispatcher();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    // Text opens one connection per request; binary keeps `conns`
    // sockets alive for the whole cell. Either way the front end exits
    // once the last expected connection closes.
    let total_conns = match format {
        Format::Binary => conns,
        Format::Text => conns * reqs_per_conn,
    };
    let front_config = FrontConfig {
        worker_threads: workers,
        max_conns: total_conns,
        ..FrontConfig::default()
    };
    let observer = suod_observe::noop();

    let (stats, wall_s, front) = std::thread::scope(|s| {
        let server = s.spawn(|| serve_front(&listener, &service, &front_config, &observer));
        let start = Instant::now();
        let clients: Vec<_> = (0..conns)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || match format {
                    Format::Binary => binary_client(&addr, w.queries, w.ref_bits, reqs_per_conn),
                    Format::Text => text_client(&addr, w.text_rows, w.ref_bits, reqs_per_conn),
                })
            })
            .collect();
        let mut stats = ClientStats::default();
        for client in clients {
            stats.merge(client.join().expect("client thread"));
        }
        let wall_s = start.elapsed().as_secs_f64();
        let front = server
            .join()
            .expect("server thread")
            .expect("front end survives the cell");
        (stats, wall_s, front)
    });

    Cell {
        wall_s,
        req_per_s: stats.ok as f64 / wall_s,
        rows_per_s: (stats.ok as usize * ROWS_PER_REQUEST) as f64 / wall_s,
        stats,
        front,
    }
}

/// Gate helper: a cell must answer everything it was offered, exactly.
fn gate_cell_clean(label: &str, cell: &Cell) -> bool {
    let mut ok = true;
    if cell.stats.dropped > 0 {
        eprintln!("FAIL: {label}: {} requests dropped", cell.stats.dropped);
        ok = false;
    }
    if cell.stats.bit_mismatch > 0 {
        eprintln!(
            "FAIL: {label}: {} responses differ from offline scoring",
            cell.stats.bit_mismatch
        );
        ok = false;
    }
    if cell.stats.error > 0 {
        eprintln!("FAIL: {label}: {} error responses", cell.stats.error);
        ok = false;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let avx2 = SimdLane::supported() == SimdLane::Avx2;
    let rev = git_rev();

    let ds = registry::load_scaled("cardio", 17, 0.25).expect("registry analog");
    let n_queries = 12usize;
    let n_rows = ds.x.nrows();
    let queries: Vec<Matrix> = (0..n_queries)
        .map(|q| {
            let rows: Vec<Vec<f64>> = (0..ROWS_PER_REQUEST)
                .map(|i| ds.x.row((q * ROWS_PER_REQUEST + i) % n_rows).to_vec())
                .collect();
            Matrix::from_rows(&rows).expect("rectangular request")
        })
        .collect();
    let text_rows: Vec<Vec<Vec<f64>>> = queries
        .iter()
        .map(|q| (0..q.nrows()).map(|i| q.row(i).to_vec()).collect())
        .collect();
    // Offline reference: the bit pattern every wire response must
    // reproduce. Fitting is seeded, so a fresh fit inside each cell
    // serves this exact model.
    let reference = fit(&ds.x);
    let ref_bits: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            reference
                .combined_scores(q)
                .expect("offline scoring succeeds")
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    let reqs_per_conn = scale.pick(8usize, 24, 48);
    let workload = Workload {
        x: &ds.x,
        queries: &queries,
        text_rows: &text_rows,
        ref_bits: &ref_bits,
    };

    if args.iter().any(|a| a == "--smoke") {
        println!(
            "wire smoke: {reqs_per_conn} requests/conn x {ROWS_PER_REQUEST} rows \
             (cores: {host_cores})"
        );
        let mut pass = true;
        // Gate 1+2 (and the cross-worker half of gate 3): binary
        // keep-alive at 1, 2, and 4 front workers must answer every
        // frame with offline-exact bits.
        let mut binary_w2 = None;
        for workers in [1usize, 2, 4] {
            let cell = run_cell(&workload, Format::Binary, 4, workers, reqs_per_conn);
            println!(
                "binary conns 4 workers {workers}: {:.3}s wall, {:.0} req/s, \
                 ok {} busy {} dropped {}",
                cell.wall_s, cell.req_per_s, cell.stats.ok, cell.stats.busy, cell.stats.dropped
            );
            pass &= gate_cell_clean(&format!("binary workers={workers}"), &cell);
            if workers == 2 {
                binary_w2 = Some(cell);
            }
        }
        // Gate 3: the keep-alive binary path must beat one-shot text at
        // equal worker count (the committed full report shows >= 3x;
        // the smoke bar is lower to stay robust on noisy CI runners).
        let text = run_cell(&workload, Format::Text, 4, 2, reqs_per_conn);
        println!(
            "text   conns 4 workers 2: {:.3}s wall, {:.0} req/s, ok {} busy {} dropped {}",
            text.wall_s, text.req_per_s, text.stats.ok, text.stats.busy, text.stats.dropped
        );
        pass &= gate_cell_clean("text workers=2", &text);
        let binary = binary_w2.expect("binary workers=2 cell ran");
        if binary.req_per_s <= text.req_per_s {
            eprintln!(
                "FAIL: binary keep-alive ({:.0} req/s) does not beat one-shot text \
                 ({:.0} req/s) at equal workers",
                binary.req_per_s, text.req_per_s
            );
            pass = false;
        } else {
            println!(
                "binary/text throughput ratio at 2 workers: {:.1}x",
                binary.req_per_s / text.req_per_s
            );
        }
        if !pass {
            std::process::exit(1);
        }
        println!("OK");
        return;
    }

    println!(
        "Wire report (rev {rev}, host cores: {host_cores}, avx2+fma: {avx2}, \
         {reqs_per_conn} requests/conn x {ROWS_PER_REQUEST} rows, open loop, \
         pipeline window {CLIENT_WINDOW})"
    );
    let conn_counts = [1usize, 4, 8];
    let worker_counts = [1usize, 2, 4];
    let mut cells: Vec<String> = Vec::new();
    for format in [Format::Text, Format::Binary] {
        for &conns in &conn_counts {
            for &workers in &worker_counts {
                let cell = run_cell(&workload, format, conns, workers, reqs_per_conn);
                assert_eq!(
                    cell.stats.bit_mismatch,
                    0,
                    "{} conns {conns} workers {workers}: wire scores differ from offline",
                    format.name()
                );
                println!(
                    "{:>6} conns {conns} workers {workers}  {:.3}s wall  {:>7.0} req/s  \
                     {:>8.0} rows/s  ok {}  busy {}  dropped {}",
                    format.name(),
                    cell.wall_s,
                    cell.req_per_s,
                    cell.rows_per_s,
                    cell.stats.ok,
                    cell.stats.busy,
                    cell.stats.dropped
                );
                cells.push(format!(
                    "\"{}_conns{conns}_workers{workers}\": {{\
                     \"wall_s\": {:.6}, \"req_per_s\": {:.1}, \"rows_per_s\": {:.1}, \
                     \"ok\": {}, \"busy\": {}, \"shed\": {}, \"error\": {}, \
                     \"dropped\": {}, \"bit_mismatch\": {}, \
                     \"conns_accepted\": {}, \"wire_requests\": {}, \"text_requests\": {}}}",
                    format.name(),
                    cell.wall_s,
                    cell.req_per_s,
                    cell.rows_per_s,
                    cell.stats.ok,
                    cell.stats.busy,
                    cell.stats.shed,
                    cell.stats.error,
                    cell.stats.dropped,
                    cell.stats.bit_mismatch,
                    cell.front.conns_accepted,
                    cell.front.wire_requests,
                    cell.front.text_requests,
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"git_rev\": \"{rev}\",\n  \"host_cores\": {host_cores},\n  \
         \"avx2_fma_supported\": {avx2},\n  \"lane_detected\": \"{}\",\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"cardio(x0.25)\",\n  \
         \"wire_format\": \"suod-wire/1\",\n  \
         \"rows_per_request\": {ROWS_PER_REQUEST},\n  \
         \"requests_per_conn\": {reqs_per_conn},\n  \
         \"pipeline_window\": {CLIENT_WINDOW},\n  \
         \"cells\": {{\n    {}\n  }}\n}}\n",
        SimdLane::detect(),
        cells.join(",\n    "),
    );
    std::fs::write("BENCH_wire.json", &json).expect("write BENCH_wire.json");
    println!("wrote BENCH_wire.json");
}
