//! Streaming detection: the paper's §1 "extended to online settings"
//! note, realized with the sliding-window wrapper.
//!
//! Simulates a sensor stream whose normal operating point drifts halfway
//! through; the streaming ensemble keeps flagging genuine anomalies while
//! absorbing the drift through window refits.
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example streaming_detection
//! ```

use suod::prelude::*;
use suod::streaming::StreamingSuod;

/// Deterministic pseudo-noise in [-0.5, 0.5).
fn noise(i: usize, salt: f64) -> f64 {
    ((i as f64 * 0.618_033_988_749 + salt) % 1.0) - 0.5
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let template = Suod::builder()
        .base_estimators(vec![
            ModelSpec::Knn {
                n_neighbors: 8,
                method: KnnMethod::Largest,
            },
            ModelSpec::Lof {
                n_neighbors: 12,
                metric: Metric::Euclidean,
            },
            ModelSpec::Hbos {
                n_bins: 12,
                tolerance: 0.3,
            },
            ModelSpec::IForest {
                n_estimators: 30,
                max_features: 1.0,
            },
        ])
        .seed(7);

    let mut stream = StreamingSuod::new(template, 256, 64)?;

    // Inject anomalies at fixed ticks; phase shift at t = 600.
    let anomaly_ticks = [300usize, 450, 700, 900];
    let mut flagged = Vec::new();
    let mut warm_scores: Vec<f64> = Vec::new();
    // Isolated flags are quarantined (not pushed); a long run of
    // consecutive flags is concept drift, which must re-enter the window
    // or the reference distribution never catches up.
    let mut consecutive_flags = 0usize;

    println!("streaming 1000 sensor readings (drift at t=600, anomalies at {anomaly_ticks:?})\n");
    for t in 0..1000usize {
        let base = if t < 600 { 0.0 } else { 25.0 }; // operating-point drift
        let mut row = vec![
            base + noise(t, 0.1) * 2.0,
            base * 0.5 + noise(t, 0.4) * 2.0,
            (t % 16) as f64 * 0.1 + noise(t, 0.7),
        ];
        if anomaly_ticks.contains(&t) {
            row[0] += 15.0;
            row[1] -= 12.0;
        }

        if stream.is_warm() {
            let score = stream.score(&row)?;
            // Simple adaptive threshold: mean + 5 sigma of recent scores.
            if warm_scores.len() >= 50 {
                let mu = warm_scores.iter().sum::<f64>() / warm_scores.len() as f64;
                let sd = (warm_scores.iter().map(|s| (s - mu) * (s - mu)).sum::<f64>()
                    / warm_scores.len() as f64)
                    .sqrt();
                let threshold_estimate = mu + 5.0 * sd;
                if score > threshold_estimate {
                    consecutive_flags += 1;
                    if consecutive_flags <= 5 {
                        flagged.push(t);
                        println!(
                            "t={t:>4}  score {score:>9.2}  ** FLAGGED ** (threshold {threshold_estimate:.2})"
                        );
                        // Quarantine isolated anomalies from the window.
                        continue;
                    }
                    // Sustained flagging = drift: fall through and push.
                } else {
                    consecutive_flags = 0;
                }
            }
            warm_scores.push(score);
            if warm_scores.len() > 200 {
                warm_scores.remove(0);
            }
        }
        stream.push(&row)?;
    }

    let hits = anomaly_ticks.iter().filter(|t| flagged.contains(t)).count();
    println!(
        "\ndetected {hits}/{} injected anomalies; {} total flags",
        anomaly_ticks.len(),
        flagged.len()
    );
    println!("(the t=600 drift itself may flag briefly, then the window absorbs it)");
    Ok(())
}
