//! Cross-crate integration tests live in tests/.
