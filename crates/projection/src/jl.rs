//! Johnson–Lindenstrauss random projections (paper §3.3).
//!
//! The transform is `f(x) = (1/sqrt(k)) x W^T` with `W` a `k x d` random
//! matrix. Four constructions from the paper:
//!
//! * [`JlVariant::Basic`] — i.i.d. standard Gaussian entries;
//! * [`JlVariant::Discrete`] — i.i.d. Rademacher (±1) entries;
//! * [`JlVariant::Circulant`] — the first row is Gaussian, each subsequent
//!   row is a cyclic right-shift of the previous one;
//! * [`JlVariant::Toeplitz`] — the first row and first column are
//!   Gaussian, and each diagonal is constant.
//!
//! Structured variants (circulant/toeplitz) draw only `O(d)` random values
//! instead of `O(kd)` — the source of their speed advantage — and the
//! paper finds they also lead the accuracy comparison (Table 1).

use crate::{check_target_dim, Error, Projector, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suod_linalg::Matrix;

/// Draws one standard normal value (Box–Muller; local copy to keep this
/// crate independent of the dataset crate).
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Which JL matrix construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JlVariant {
    /// I.i.d. standard Gaussian entries.
    #[default]
    Basic,
    /// I.i.d. Rademacher (±1) entries.
    Discrete,
    /// Cyclic shifts of one Gaussian row.
    Circulant,
    /// Constant diagonals from one Gaussian row + column.
    Toeplitz,
}

impl JlVariant {
    /// Parses the paper's method names (`basic`/`discrete`/`circulant`/
    /// `toeplitz`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "basic" => Ok(JlVariant::Basic),
            "discrete" => Ok(JlVariant::Discrete),
            "circulant" => Ok(JlVariant::Circulant),
            "toeplitz" => Ok(JlVariant::Toeplitz),
            other => Err(Error::InvalidParameter(format!(
                "unknown JL variant `{other}`"
            ))),
        }
    }

    /// All four variants, in the paper's order.
    pub fn all() -> [JlVariant; 4] {
        [
            JlVariant::Basic,
            JlVariant::Discrete,
            JlVariant::Circulant,
            JlVariant::Toeplitz,
        ]
    }

    /// Builds the `k x d` transformation matrix.
    fn build_matrix(&self, k: usize, d: usize, rng: &mut StdRng) -> Matrix {
        match self {
            JlVariant::Basic => {
                let data: Vec<f64> = (0..k * d).map(|_| randn(rng)).collect();
                Matrix::from_vec(k, d, data).expect("sized buffer")
            }
            JlVariant::Discrete => {
                let data: Vec<f64> = (0..k * d)
                    .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                    .collect();
                Matrix::from_vec(k, d, data).expect("sized buffer")
            }
            JlVariant::Circulant => {
                let first: Vec<f64> = (0..d).map(|_| randn(rng)).collect();
                let mut m = Matrix::zeros(k, d);
                for r in 0..k {
                    for c in 0..d {
                        // Row r is the first row cyclically shifted right r times.
                        m.set(r, c, first[(c + d - (r % d)) % d]);
                    }
                }
                m
            }
            JlVariant::Toeplitz => {
                let first_row: Vec<f64> = (0..d).map(|_| randn(rng)).collect();
                let first_col: Vec<f64> = (0..k).map(|_| randn(rng)).collect();
                let mut m = Matrix::zeros(k, d);
                for r in 0..k {
                    for c in 0..d {
                        // Constant along each diagonal (r - c).
                        let v = if c >= r {
                            first_row[c - r]
                        } else {
                            first_col[r - c]
                        };
                        m.set(r, c, v);
                    }
                }
                m
            }
        }
    }
}

/// A seeded JL projector.
#[derive(Debug, Clone)]
pub struct JlProjector {
    variant: JlVariant,
    k: usize,
    seed: u64,
    /// `k x d` transformation matrix, built at fit time.
    w: Option<Matrix>,
}

impl JlProjector {
    /// Creates a JL projector to `k` output dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k == 0`.
    pub fn new(variant: JlVariant, k: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter(
                "target dimension must be >= 1".into(),
            ));
        }
        Ok(Self {
            variant,
            k,
            seed,
            w: None,
        })
    }

    /// The construction variant.
    pub fn variant(&self) -> JlVariant {
        self.variant
    }

    /// The fitted transformation matrix (`k x d`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn matrix(&self) -> Result<&Matrix> {
        self.w.as_ref().ok_or(Error::NotFitted("JlProjector"))
    }
}

impl Projector for JlProjector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let d = x.ncols();
        check_target_dim(self.k, d)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.w = Some(self.variant.build_matrix(self.k, d, &mut rng));
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let w = self.w.as_ref().ok_or(Error::NotFitted("JlProjector"))?;
        if x.ncols() != w.ncols() {
            return Err(Error::DimensionMismatch {
                expected: w.ncols(),
                actual: x.ncols(),
            });
        }
        // f(x) = (1/sqrt(k)) x W^T
        let mut z = x.matmul(&w.transpose())?;
        z.scale_in_place(1.0 / (self.k as f64).sqrt());
        Ok(z)
    }

    fn output_dim(&self) -> usize {
        self.k
    }

    fn name(&self) -> &'static str {
        match self.variant {
            JlVariant::Basic => "basic",
            JlVariant::Discrete => "discrete",
            JlVariant::Circulant => "circulant",
            JlVariant::Toeplitz => "toeplitz",
        }
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_u8(match self.variant {
            JlVariant::Basic => 0,
            JlVariant::Discrete => 1,
            JlVariant::Circulant => 2,
            JlVariant::Toeplitz => 3,
        });
        w.write_usize(self.k);
        w.write_u64(self.seed);
        match &self.w {
            Some(m) => {
                w.write_bool(true);
                w.write_matrix(m);
            }
            None => w.write_bool(false),
        }
        Ok(())
    }
}

impl JlProjector {
    /// Reads a projector written by [`Projector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(r: &mut suod_linalg::SnapshotReader<'_>) -> Result<Self> {
        let variant = match r.read_u8()? {
            0 => JlVariant::Basic,
            1 => JlVariant::Discrete,
            2 => JlVariant::Circulant,
            3 => JlVariant::Toeplitz,
            other => {
                return Err(Error::InvalidParameter(format!(
                    "snapshot: unknown JL variant tag {other}"
                )))
            }
        };
        let k = r.read_usize()?;
        let seed = r.read_u64()?;
        let w = if r.read_bool()? {
            Some(r.read_matrix()?)
        } else {
            None
        };
        Ok(Self {
            variant,
            k,
            seed,
            w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suod_linalg::DistanceMetric;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| randn(&mut rng)).collect();
        Matrix::from_vec(n, d, data).unwrap()
    }

    #[test]
    fn output_shape_is_n_by_k() {
        let x = random_data(10, 20, 0);
        for variant in JlVariant::all() {
            let mut p = JlProjector::new(variant, 5, 1).unwrap();
            p.fit(&x).unwrap();
            assert_eq!(p.transform(&x).unwrap().shape(), (10, 5));
        }
    }

    #[test]
    fn distances_roughly_preserved() {
        // With k close to d, pairwise distances survive within a loose
        // factor — the JL property the detectors rely on.
        let x = random_data(20, 60, 3);
        let orig = suod_linalg::pairwise_distances(&x, &x, DistanceMetric::Euclidean).unwrap();
        for variant in JlVariant::all() {
            let mut p = JlProjector::new(variant, 40, 7).unwrap();
            p.fit(&x).unwrap();
            let z = p.transform(&x).unwrap();
            let proj = suod_linalg::pairwise_distances(&z, &z, DistanceMetric::Euclidean).unwrap();
            let mut ratios = Vec::new();
            for i in 0..20 {
                for j in (i + 1)..20 {
                    ratios.push(proj.get(i, j) / orig.get(i, j));
                }
            }
            let mean = suod_linalg::stats::mean(&ratios);
            assert!(
                (mean - 1.0).abs() < 0.3,
                "{variant:?}: mean distance ratio {mean}"
            );
        }
    }

    #[test]
    fn circulant_rows_are_shifts() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = JlVariant::Circulant.build_matrix(4, 6, &mut rng);
        for r in 1..4 {
            for c in 0..6 {
                assert_eq!(m.get(r, c), m.get(r - 1, (c + 6 - 1) % 6));
            }
        }
    }

    #[test]
    fn toeplitz_diagonals_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = JlVariant::Toeplitz.build_matrix(4, 6, &mut rng);
        for r in 1..4 {
            for c in 1..6 {
                assert_eq!(m.get(r, c), m.get(r - 1, c - 1));
            }
        }
    }

    #[test]
    fn discrete_entries_are_rademacher() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = JlVariant::Discrete.build_matrix(5, 7, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn seeds_control_randomness() {
        let x = random_data(5, 10, 0);
        let mut a = JlProjector::new(JlVariant::Basic, 4, 11).unwrap();
        let mut b = JlProjector::new(JlVariant::Basic, 4, 11).unwrap();
        let mut c = JlProjector::new(JlVariant::Basic, 4, 12).unwrap();
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        c.fit(&x).unwrap();
        assert_eq!(a.transform(&x).unwrap(), b.transform(&x).unwrap());
        assert_ne!(a.transform(&x).unwrap(), c.transform(&x).unwrap());
    }

    #[test]
    fn same_matrix_applies_to_test_data() {
        let x = random_data(8, 10, 1);
        let q = random_data(3, 10, 2);
        let mut p = JlProjector::new(JlVariant::Toeplitz, 6, 0).unwrap();
        p.fit(&x).unwrap();
        let w = p.matrix().unwrap().clone();
        let z = p.transform(&q).unwrap();
        // Manual application of the same matrix must agree.
        let mut expected = q.matmul(&w.transpose()).unwrap();
        expected.scale_in_place(1.0 / 6f64.sqrt());
        assert_eq!(z, expected);
    }

    #[test]
    fn parse_variant_names() {
        assert_eq!(JlVariant::parse("basic").unwrap(), JlVariant::Basic);
        assert_eq!(JlVariant::parse("toeplitz").unwrap(), JlVariant::Toeplitz);
        assert!(JlVariant::parse("gaussian").is_err());
    }

    #[test]
    fn validates_inputs() {
        assert!(JlProjector::new(JlVariant::Basic, 0, 0).is_err());
        let mut p = JlProjector::new(JlVariant::Basic, 20, 0).unwrap();
        assert!(p.fit(&random_data(5, 10, 0)).is_err()); // k > d
        let p2 = JlProjector::new(JlVariant::Basic, 2, 0).unwrap();
        assert!(p2.transform(&random_data(5, 10, 0)).is_err()); // not fitted
        let mut p3 = JlProjector::new(JlVariant::Basic, 2, 0).unwrap();
        p3.fit(&random_data(5, 10, 0)).unwrap();
        assert!(p3.transform(&random_data(5, 9, 0)).is_err());
    }
}
