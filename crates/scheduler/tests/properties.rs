//! Property-based tests for the scheduling module.

use proptest::prelude::*;
use suod_scheduler::assignment::{bps_schedule, generic_schedule, shuffled_schedule};
use suod_scheduler::simulate::simulate_makespan;

fn cost_vector() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..100.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_partition_tasks(costs in cost_vector(), t in 1usize..16, seed in 0u64..100) {
        let m = costs.len();
        for a in [
            generic_schedule(m, t).unwrap(),
            shuffled_schedule(m, t, seed).unwrap(),
            bps_schedule(&costs, t, 1.0).unwrap(),
        ] {
            prop_assert_eq!(a.n_tasks(), m);
            let mut seen: Vec<usize> = a.groups().iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..m).collect::<Vec<_>>());
            prop_assert!(a.n_workers() <= t.max(1));
        }
    }

    #[test]
    fn makespan_bounds_hold(costs in cost_vector(), t in 1usize..16) {
        // max(cost) <= makespan <= sum(cost); speedup <= t.
        let heaviest = costs.iter().cloned().fold(0.0f64, f64::max);
        let total: f64 = costs.iter().sum();
        for a in [
            generic_schedule(costs.len(), t).unwrap(),
            bps_schedule(&costs, t, 1.0).unwrap(),
        ] {
            let r = simulate_makespan(&costs, &a).unwrap();
            prop_assert!(r.makespan + 1e-9 >= heaviest);
            prop_assert!(r.makespan <= total + 1e-9);
            prop_assert!(r.speedup() <= t as f64 + 1e-9);
            prop_assert!(r.efficiency() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bps_at_most_twice_optimal(costs in cost_vector(), t in 1usize..8) {
        // Greedy LPT on the *true* costs is a 4/3-approximation; even with
        // rank discounting the makespan stays within 2x of the trivial
        // lower bound max(heaviest, total/t).
        let heaviest = costs.iter().cloned().fold(0.0f64, f64::max);
        let total: f64 = costs.iter().sum();
        let lower = heaviest.max(total / t as f64);
        let a = bps_schedule(&costs, t, 1.0).unwrap();
        let r = simulate_makespan(&costs, &a).unwrap();
        prop_assert!(
            r.makespan <= 2.0 * lower + 1e-9,
            "makespan {} vs lower bound {lower}",
            r.makespan
        );
    }

    #[test]
    fn bps_beats_generic_on_sorted_costs(
        mut costs in proptest::collection::vec(0.01f64..100.0, 8..100),
        t in 2usize..8,
    ) {
        // Descending-sorted cost lists (heavy family first) are the
        // adversarial case for contiguous chunking.
        costs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let g = simulate_makespan(&costs, &generic_schedule(costs.len(), t).unwrap()).unwrap();
        let b = simulate_makespan(&costs, &bps_schedule(&costs, t, 1.0).unwrap()).unwrap();
        prop_assert!(b.makespan <= g.makespan + 1e-9);
    }

    #[test]
    fn bps_within_lpt_guarantee_of_generic(costs in cost_vector(), t in 1usize..8) {
        // On the discounted-rank weights BPS greedily balances, its
        // max load obeys the LPT guarantee (<= 4/3 OPT), and the generic
        // schedule's max load is >= OPT, so BPS <= 4/3 generic.
        let g = generic_schedule(costs.len(), t).unwrap();
        let b = bps_schedule(&costs, t, 1.0).unwrap();
        let ranks = suod_linalg::rank::ordinal_ranks(&costs);
        let weights: Vec<f64> = ranks
            .iter()
            .map(|&r| 1.0 + r as f64 / costs.len() as f64)
            .collect();
        let max_load = |loads: Vec<f64>| loads.into_iter().fold(0.0f64, f64::max);
        let b_max = max_load(b.worker_loads(&weights).unwrap());
        let g_max = max_load(g.worker_loads(&weights).unwrap());
        prop_assert!(b_max <= 4.0 / 3.0 * g_max + 1e-9, "bps {b_max} vs generic {g_max}");
    }

    #[test]
    fn alpha_variations_still_valid(costs in cost_vector(), alpha in 0.0f64..5.0) {
        let a = bps_schedule(&costs, 4, alpha).unwrap();
        prop_assert_eq!(a.n_tasks(), costs.len());
    }
}
