//! A minimal JSON reader/writer.
//!
//! The workspace is offline (no serde), so the exporters hand-roll their
//! output and this module provides the small value model + parser used to
//! validate exported traces round-trip ([`crate::export::from_json`]).
//! It supports the full JSON grammar except `\u` surrogate pairs beyond
//! the BMP, which the trace schema never emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; the schema only uses integers that
    /// fit f64 exactly, i.e. < 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let start = self.pos - 1;
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ unicode: é λ \u{1}";
        let mut buf = String::new();
        write_escaped(&mut buf, original);
        assert_eq!(parse(&buf).unwrap(), Value::String(original.to_string()));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }
}
