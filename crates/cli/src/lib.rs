#![warn(missing_docs)]

//! Command-line interface for the SUOD reproduction.
//!
//! The binary (`suod-cli`) wraps the `suod` library for the two things a
//! practitioner does first: score a dataset with a heterogeneous ensemble
//! and inspect the available benchmark analogs. Argument parsing is
//! hand-rolled (no CLI dependency) and lives here in the library so it is
//! unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! suod-cli detect --dataset cardio [--scale 0.25] [--models 20]
//!                 [--no-rp] [--no-psa] [--no-bps] [--workers 2]
//!                 [--contamination 0.1] [--seed 42] [--output scores.csv]
//! suod-cli detect --csv data.csv [--label-column 3] ...
//! suod-cli trace --dataset cardio [--format json|chrome] [--output trace.json] ...
//! suod-cli serve --dataset cardio [--chaos panic] [--listen 127.0.0.1:7878] ...
//! suod-cli score --connect 127.0.0.1:7878 --csv data.csv
//! suod-cli list-datasets
//! suod-cli help
//! ```

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use suod::prelude::*;
use suod_datasets::csv::{load_csv, CsvOptions};
use suod_datasets::{registry, Dataset};
use suod_metrics::{precision_at_n, roc_auc};
use suod_serve::{ScoreOutcome, ScoreService, ServeConfig, SubmitError};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Fit an ensemble and emit per-sample scores.
    Detect(DetectArgs),
    /// Run an instrumented fit + predict and export the trace.
    Trace(TraceArgs),
    /// Fit a pool and run the fault-tolerant online scoring service.
    Serve(ServeArgs),
    /// Score rows against a running `serve --listen` server.
    Score(ScoreArgs),
    /// Print the registry's dataset table.
    ListDatasets,
    /// Print usage.
    Help,
}

/// Arguments for [`Command::Serve`]: the pipeline configuration plus the
/// serving knobs. Without `--listen` the command runs a self-contained
/// replay demo — concurrent clients score slices of the dataset's own
/// rows — and prints the per-request outcomes and the service report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Pipeline configuration (shared `detect` flags).
    pub detect: DetectArgs,
    /// Admission queue capacity (`Busy` past this).
    pub queue: usize,
    /// Micro-batch row cap.
    pub batch_rows: usize,
    /// Batch assembly window in milliseconds.
    pub window_ms: u64,
    /// Default per-request deadline budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Consecutive predict faults before a model is quarantined.
    pub failure_budget: u32,
    /// Serving floor: minimum healthy fraction of the ensemble.
    pub min_healthy: f64,
    /// Optional saboteur appended to the pool (chaos demo).
    pub chaos: Option<ChaosMode>,
    /// Replay demo: number of concurrent client requests.
    pub requests: usize,
    /// Replay demo: rows per request.
    pub rows_per_request: usize,
    /// TCP address to listen on instead of running the replay demo.
    pub listen: Option<String>,
    /// Listen mode: exit after this many connections (0 = run forever).
    pub max_conns: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            detect: DetectArgs::default(),
            queue: 64,
            batch_rows: 256,
            window_ms: 2,
            deadline_ms: None,
            failure_budget: 3,
            min_healthy: 0.5,
            chaos: None,
            requests: 8,
            rows_per_request: 16,
            listen: None,
            max_conns: 0,
        }
    }
}

/// Arguments for [`Command::Score`]: the client side of `serve --listen`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreArgs {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub connect: String,
    /// CSV of feature rows to score.
    pub csv: String,
    /// Label column to strip from the CSV before sending.
    pub label_column: Option<usize>,
    /// Optional output CSV path for the returned scores.
    pub output: Option<String>,
}

/// Export format for [`Command::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The stable `suod-trace/1` JSON schema.
    Json,
    /// Chrome `trace_event` format (load in `chrome://tracing` / Perfetto).
    Chrome,
}

/// Arguments for [`Command::Trace`]: the same pipeline configuration as
/// `detect`, plus an export format. `--output` names the trace file
/// instead of a score CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Pipeline configuration (same flags as `detect`).
    pub detect: DetectArgs,
    /// Trace export format.
    pub format: TraceFormat,
}

/// Arguments for [`Command::Detect`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectArgs {
    /// Registry dataset name (mutually exclusive with `csv`).
    pub dataset: Option<String>,
    /// CSV path (mutually exclusive with `dataset`).
    pub csv: Option<String>,
    /// Label column within the CSV.
    pub label_column: Option<usize>,
    /// Registry subsampling factor.
    pub scale: f64,
    /// Number of random Table B.1 models in the pool.
    pub models: usize,
    /// Module flags.
    pub rp: bool,
    /// Pseudo-supervised approximation flag.
    pub psa: bool,
    /// Balanced scheduling flag.
    pub bps: bool,
    /// Worker count.
    pub workers: usize,
    /// Contamination for the label threshold.
    pub contamination: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional output CSV path for scores.
    pub output: Option<String>,
    /// Brute-force distance backend (naive | blocked | gemm).
    pub backend: DistanceBackend,
    /// Kernel numeric precision (f64 | mixed).
    pub precision: Precision,
    /// Neighbour index backend (exact | hnsw).
    pub neighbor: NeighborBackend,
    /// HNSW search beam width (recall knob); `None` keeps the default.
    pub ef_search: Option<usize>,
}

impl Default for DetectArgs {
    fn default() -> Self {
        Self {
            dataset: None,
            csv: None,
            label_column: None,
            scale: 0.25,
            models: 12,
            rp: true,
            psa: true,
            bps: true,
            workers: 1,
            contamination: 0.1,
            seed: 42,
            output: None,
            backend: KernelConfig::default().backend,
            precision: Precision::default(),
            neighbor: NeighborBackend::default(),
            ef_search: None,
        }
    }
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// unparsable numbers, or conflicting inputs.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list-datasets" => Ok(Command::ListDatasets),
        "detect" => {
            let (d, _) = parse_pipeline_flags(&mut it, "detect", false)?;
            Ok(Command::Detect(d))
        }
        "trace" => {
            let (detect, format) = parse_pipeline_flags(&mut it, "trace", true)?;
            Ok(Command::Trace(TraceArgs {
                detect,
                format: format.unwrap_or(TraceFormat::Json),
            }))
        }
        "serve" => parse_serve_flags(&mut it).map(Command::Serve),
        "score" => parse_score_flags(&mut it).map(Command::Score),
        other => Err(format!("unknown command `{other}` (see `suod-cli help`)")),
    }
}

fn parse_chaos(raw: &str) -> Result<ChaosMode, String> {
    match raw {
        "panic" => Ok(ChaosMode::PanicOnPredict),
        "nan" => Ok(ChaosMode::NanOnPredict),
        "slow" => Ok(ChaosMode::SlowPredict(25)),
        other => other
            .strip_prefix("slow:")
            .and_then(|ms| ms.parse().ok())
            .map(ChaosMode::SlowPredict)
            .ok_or_else(|| format!("unknown chaos mode `{other}` (panic|nan|slow[:ms])")),
    }
}

fn parse_serve_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
) -> Result<ServeArgs, String> {
    let mut s = ServeArgs::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => s.detect.dataset = Some(value("--dataset")?),
            "--csv" => s.detect.csv = Some(value("--csv")?),
            "--label-column" => {
                s.detect.label_column = Some(parse_num(&value("--label-column")?, flag)?)
            }
            "--scale" => s.detect.scale = parse_num(&value("--scale")?, flag)?,
            "--models" => s.detect.models = parse_num(&value("--models")?, flag)?,
            "--workers" => s.detect.workers = parse_num(&value("--workers")?, flag)?,
            "--seed" => s.detect.seed = parse_num(&value("--seed")?, flag)?,
            "--no-rp" => s.detect.rp = false,
            "--no-psa" => s.detect.psa = false,
            "--no-bps" => s.detect.bps = false,
            "--queue" => s.queue = parse_num(&value("--queue")?, flag)?,
            "--batch-rows" => s.batch_rows = parse_num(&value("--batch-rows")?, flag)?,
            "--window-ms" => s.window_ms = parse_num(&value("--window-ms")?, flag)?,
            "--deadline-ms" => s.deadline_ms = Some(parse_num(&value("--deadline-ms")?, flag)?),
            "--failure-budget" => s.failure_budget = parse_num(&value("--failure-budget")?, flag)?,
            "--min-healthy" => s.min_healthy = parse_num(&value("--min-healthy")?, flag)?,
            "--chaos" => s.chaos = Some(parse_chaos(&value("--chaos")?)?),
            "--requests" => s.requests = parse_num(&value("--requests")?, flag)?,
            "--rows-per-request" => {
                s.rows_per_request = parse_num(&value("--rows-per-request")?, flag)?
            }
            "--listen" => s.listen = Some(value("--listen")?),
            "--max-conns" => s.max_conns = parse_num(&value("--max-conns")?, flag)?,
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&s.detect.dataset, &s.detect.csv) {
        (None, None) => Err("serve needs --dataset <name> or --csv <path>".into()),
        (Some(_), Some(_)) => Err("--dataset and --csv are mutually exclusive".into()),
        _ => Ok(s),
    }
}

fn parse_score_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
) -> Result<ScoreArgs, String> {
    let mut connect = None;
    let mut csv = None;
    let mut label_column = None;
    let mut output = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--csv" => csv = Some(value("--csv")?),
            "--label-column" => label_column = Some(parse_num(&value("--label-column")?, flag)?),
            "--output" => output = Some(value("--output")?),
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    Ok(ScoreArgs {
        connect: connect.ok_or("score needs --connect <addr>")?,
        csv: csv.ok_or("score needs --csv <path>")?,
        label_column,
        output,
    })
}

/// Parses the shared `detect`/`trace` flag set. `--format` is only
/// accepted when `allow_format` is set (the `trace` subcommand).
fn parse_pipeline_flags(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    sub: &str,
    allow_format: bool,
) -> Result<(DetectArgs, Option<TraceFormat>), String> {
    let mut d = DetectArgs::default();
    let mut format = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => d.dataset = Some(value("--dataset")?),
            "--csv" => d.csv = Some(value("--csv")?),
            "--label-column" => d.label_column = Some(parse_num(&value("--label-column")?, flag)?),
            "--scale" => d.scale = parse_num(&value("--scale")?, flag)?,
            "--models" => d.models = parse_num(&value("--models")?, flag)?,
            "--workers" => d.workers = parse_num(&value("--workers")?, flag)?,
            "--contamination" => d.contamination = parse_num(&value("--contamination")?, flag)?,
            "--seed" => d.seed = parse_num(&value("--seed")?, flag)?,
            "--output" => d.output = Some(value("--output")?),
            "--backend" => {
                d.backend =
                    DistanceBackend::parse(&value("--backend")?).map_err(|e| e.to_string())?
            }
            "--precision" => {
                d.precision = Precision::parse(&value("--precision")?).map_err(|e| e.to_string())?
            }
            "--neighbor-backend" => {
                d.neighbor = NeighborBackend::parse(&value("--neighbor-backend")?)
                    .map_err(|e| e.to_string())?
            }
            "--ef-search" => d.ef_search = Some(parse_num(&value("--ef-search")?, flag)?),
            "--no-rp" => d.rp = false,
            "--no-psa" => d.psa = false,
            "--no-bps" => d.bps = false,
            "--format" if allow_format => {
                format = Some(match value("--format")?.as_str() {
                    "json" => TraceFormat::Json,
                    "chrome" => TraceFormat::Chrome,
                    other => return Err(format!("unknown trace format `{other}` (json|chrome)")),
                })
            }
            other => return Err(format!("unknown flag `{other}` (see `suod-cli help`)")),
        }
    }
    match (&d.dataset, &d.csv) {
        (None, None) => Err(format!("{sub} needs --dataset <name> or --csv <path>")),
        (Some(_), Some(_)) => Err("--dataset and --csv are mutually exclusive".into()),
        _ => Ok((d, format)),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("cannot parse `{raw}` for {flag}"))
}

/// Usage text.
pub fn usage() -> &'static str {
    "suod-cli — scalable unsupervised heterogeneous outlier detection

USAGE:
  suod-cli detect --dataset <name> [options]   score a registry analog
  suod-cli detect --csv <path> [options]       score a local CSV file
  suod-cli trace --dataset <name> [options]    export an instrumented run's trace
  suod-cli serve --dataset <name> [options]    run the online scoring service
  suod-cli score --connect <addr> --csv <path> score rows against a server
  suod-cli list-datasets                       show the benchmark registry
  suod-cli help                                this text

DETECT / TRACE OPTIONS:
  --label-column <i>    CSV column holding 0/1 labels (enables ROC/P@N)
  --scale <f>           registry subsample factor in (0, 1]   [0.25]
  --models <m>          random Table B.1 pool size            [12]
  --workers <t>         worker threads                        [1]
  --contamination <c>   expected outlier fraction             [0.1]
  --seed <s>            RNG seed                              [42]
  --output <path>       detect: score CSV; trace: trace file
  --backend <b>         distance backend: naive|blocked|gemm  [blocked]
  --precision <p>       distance kernels: f64|mixed           [f64]
                        mixed = f32 packed storage with f64
                        accumulation (documented error bound)
  --neighbor-backend <b>  kNN index: exact|hnsw               [exact]
                        hnsw = seeded approximate graph (recall
                        >= 0.95 at defaults; small n and
                        non-Euclidean metrics fall back to exact)
  --ef-search <ef>      HNSW search beam width (recall knob)  [64]
  --no-rp | --no-psa | --no-bps   disable a SUOD module

TRACE OPTIONS:
  --format <json|chrome>  export format                       [json]
                          json   = stable suod-trace/1 schema
                          chrome = chrome://tracing / Perfetto

SERVE OPTIONS (plus the shared detect flags above):
  --queue <n>           admission queue capacity              [64]
  --batch-rows <n>      micro-batch row cap                   [256]
  --window-ms <ms>      batch assembly window                 [2]
  --deadline-ms <ms>    default per-request deadline          [none]
  --failure-budget <n>  predict faults before quarantine      [3]
  --min-healthy <f>     serving floor (healthy fraction)      [0.5]
  --chaos <mode>        append a saboteur: panic|nan|slow[:ms]
  --requests <n>        replay demo: concurrent requests      [8]
  --rows-per-request <n>  replay demo: rows per request       [16]
  --listen <addr>       serve over TCP instead of the replay demo
  --max-conns <n>       listen: exit after n connections (0 = forever)

SCORE OPTIONS:
  --connect <addr>      server address (serve --listen)
  --csv <path>          feature rows to score
  --label-column <i>    strip this CSV column before sending
  --output <path>       write index,score CSV instead of printing
"
}

/// Runs a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable message on any pipeline failure.
pub fn run(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(usage().to_string()),
        Command::ListDatasets => {
            let mut out = String::new();
            writeln!(
                out,
                "{:<12} {:>8} {:>5} {:>9} {:>10}",
                "name", "n", "d", "outliers", "% outlier"
            )
            .expect("string write");
            for info in registry::TABLE_A1 {
                writeln!(
                    out,
                    "{:<12} {:>8} {:>5} {:>9} {:>10.2}",
                    info.name,
                    info.n_samples,
                    info.n_features,
                    info.n_outliers,
                    100.0 * info.contamination()
                )
                .expect("string write");
            }
            Ok(out)
        }
        Command::Detect(args) => detect(&args),
        Command::Trace(args) => trace(&args),
        Command::Serve(args) => serve(&args),
        Command::Score(args) => score(&args),
    }
}

fn load_dataset(args: &DetectArgs) -> Result<(Dataset, bool), String> {
    if let Some(name) = &args.dataset {
        let ds = registry::load_scaled(name, args.seed, args.scale)
            .map_err(|e| format!("cannot load dataset `{name}`: {e}"))?;
        Ok((ds, true))
    } else {
        let path = args.csv.as_ref().expect("validated in parse_args");
        let ds = load_csv(
            path,
            CsvOptions {
                has_header: None,
                label_column: args.label_column,
            },
        )
        .map_err(|e| format!("cannot load CSV: {e}"))?;
        let labeled = args.label_column.is_some();
        Ok((ds, labeled))
    }
}

fn clamp_pool(pool: Vec<ModelSpec>, n: usize) -> Vec<ModelSpec> {
    let cap = (n / 3).max(2);
    pool.into_iter()
        .map(|spec| match spec {
            ModelSpec::Abod { n_neighbors } => ModelSpec::Abod {
                n_neighbors: n_neighbors.clamp(2, cap),
            },
            ModelSpec::Knn {
                n_neighbors,
                method,
            } => ModelSpec::Knn {
                n_neighbors: n_neighbors.min(cap),
                method,
            },
            ModelSpec::Lof {
                n_neighbors,
                metric,
            } => ModelSpec::Lof {
                n_neighbors: n_neighbors.clamp(2, cap),
                metric,
            },
            ModelSpec::Cblof { n_clusters } => ModelSpec::Cblof {
                n_clusters: n_clusters.min(n / 4).max(1),
            },
            other => other,
        })
        .collect()
}

fn detect(args: &DetectArgs) -> Result<String, String> {
    let (ds, labeled) = load_dataset(args)?;
    let pool = clamp_pool(suod::random_pool(args.models, args.seed), ds.n_samples());

    let mut builder = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.rp)
        .with_approximation(args.psa)
        .with_bps(args.bps)
        .n_workers(args.workers.max(1))
        .contamination(args.contamination)
        .seed(args.seed)
        .distance_backend(args.backend)
        .precision(args.precision)
        .neighbor_backend(args.neighbor);
    if let Some(ef) = args.ef_search {
        builder = builder.ef_search(ef);
    }
    let mut clf = builder
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))?;

    let fit_start = std::time::Instant::now();
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    let fit_secs = fit_start.elapsed().as_secs_f64();

    let scores = clf
        .combined_scores(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;
    let labels = clf
        .predict(&ds.x)
        .map_err(|e| format!("predict failed: {e}"))?;

    let mut out = String::new();
    writeln!(
        out,
        "dataset: {} ({} samples x {} features)",
        ds.name,
        ds.n_samples(),
        ds.n_features()
    )
    .expect("string write");
    writeln!(
        out,
        "pool: {} models | rp={} psa={} bps={} workers={}",
        args.models, args.rp, args.psa, args.bps, args.workers
    )
    .expect("string write");
    writeln!(
        out,
        "kernels: backend={} {}",
        args.backend.name(),
        clf.diagnostics()
            .map(|d| d.cpu_features().to_string())
            .unwrap_or_else(|| "unavailable".into()),
    )
    .expect("string write");
    writeln!(out, "fit time: {fit_secs:.3}s").expect("string write");
    writeln!(
        out,
        "flagged: {}/{} samples",
        labels.iter().sum::<i32>(),
        labels.len()
    )
    .expect("string write");
    if labeled && ds.n_outliers() > 0 && ds.n_outliers() < ds.n_samples() {
        let auc = roc_auc(&ds.y, &scores).map_err(|e| e.to_string())?;
        let pan = precision_at_n(&ds.y, &scores, None).map_err(|e| e.to_string())?;
        writeln!(out, "ROC-AUC: {auc:.4}").expect("string write");
        writeln!(out, "P@N:     {pan:.4}").expect("string write");
    }

    if let Some(path) = &args.output {
        let mut csv = String::from("index,score,label\n");
        for (i, (s, l)) in scores.iter().zip(&labels).enumerate() {
            writeln!(csv, "{i},{s:.6},{l}").expect("string write");
        }
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "scores written to {path}").expect("string write");
    }
    Ok(out)
}

fn trace(args: &TraceArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(&args.detect)?;
    let pool = clamp_pool(
        suod::random_pool(args.detect.models, args.detect.seed),
        ds.n_samples(),
    );
    let recorder = Arc::new(RecordingObserver::new());

    let mut builder = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.detect.rp)
        .with_approximation(args.detect.psa)
        .with_bps(args.detect.bps)
        .n_workers(args.detect.workers.max(1))
        .contamination(args.detect.contamination)
        .seed(args.detect.seed)
        .distance_backend(args.detect.backend)
        .precision(args.detect.precision)
        .neighbor_backend(args.detect.neighbor)
        .observer(recorder.clone());
    if let Some(ef) = args.detect.ef_search {
        builder = builder.ef_search(ef);
    }
    let mut clf = builder
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;
    clf.decision_function(&ds.x)
        .map_err(|e| format!("scoring failed: {e}"))?;

    let trace = recorder.trace();
    let body = match args.format {
        TraceFormat::Json => {
            let json = suod::observe::export::to_json(&trace);
            // Validate the export against the schema before it leaves the
            // process: a trace we cannot re-parse is a bug, not output.
            suod::observe::export::from_json(&json)
                .map_err(|e| format!("exported trace failed schema validation: {e}"))?;
            json
        }
        TraceFormat::Chrome => suod::observe::export::to_chrome_trace(&trace),
    };

    let mut out = String::new();
    writeln!(
        out,
        "trace: {} spans, {} stages with latency histograms, {:.3}s wall",
        trace.spans().len(),
        trace.histograms().len(),
        trace.wall_us() as f64 / 1e6
    )
    .expect("string write");
    for (counter, value) in trace.counters() {
        if value > 0 {
            writeln!(out, "  {} = {value}", counter.name()).expect("string write");
        }
    }
    match &args.detect.output {
        Some(path) => {
            std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "trace written to {path}").expect("string write");
        }
        None => out.push_str(&body),
    }
    Ok(out)
}

fn serve(args: &ServeArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(&args.detect)?;
    let mut pool = clamp_pool(
        suod::random_pool(args.detect.models, args.detect.seed),
        ds.n_samples(),
    );
    if let Some(mode) = args.chaos {
        pool.push(ModelSpec::Chaos {
            mode,
            n_neighbors: 5,
        });
    }

    let mut clf = Suod::builder()
        .base_estimators(pool)
        .with_projection(args.detect.rp)
        .with_approximation(args.detect.psa)
        .with_bps(args.detect.bps)
        .n_workers(args.detect.workers.max(1))
        .min_healthy_fraction(args.min_healthy)
        .seed(args.detect.seed)
        .build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    clf.fit(&ds.x).map_err(|e| format!("fit failed: {e}"))?;

    let config = ServeConfig {
        queue_capacity: args.queue,
        max_batch_rows: args.batch_rows,
        batch_window: std::time::Duration::from_millis(args.window_ms),
        default_deadline_ms: args.deadline_ms,
        predict_failure_budget: args.failure_budget,
        min_healthy_fraction: args.min_healthy,
        ..ServeConfig::default()
    };
    let mut service =
        ScoreService::new(clf, config).map_err(|e| format!("invalid serve config: {e}"))?;
    service.spawn_dispatcher();

    if let Some(addr) = &args.listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        println!(
            "serving on {bound} ({} = stop)",
            match args.max_conns {
                0 => "ctrl-c".to_string(),
                n => format!("{n} connections"),
            }
        );
        let summary = serve_listener(&listener, &service, args.max_conns)?;
        let mut out = summary;
        out.push('\n');
        write!(out, "{}", service.report()).expect("string write");
        return Ok(out);
    }

    // Replay demo: concurrent clients score slices of the dataset's own
    // rows through the full admission/batching/quarantine path.
    let service = Arc::new(service);
    let n_rows = ds.x.nrows();
    let mut clients = Vec::new();
    for r in 0..args.requests {
        let service = Arc::clone(&service);
        let rows: Vec<Vec<f64>> = (0..args.rows_per_request)
            .map(|i| ds.x.row((r * args.rows_per_request + i) % n_rows).to_vec())
            .collect();
        clients.push(std::thread::spawn(move || {
            let query = suod_linalg::Matrix::from_rows(&rows).expect("rectangular request");
            let ticket = loop {
                match service.submit(query.clone()) {
                    Ok(t) => break t,
                    Err(SubmitError::Busy { .. }) => {
                        std::thread::sleep(std::time::Duration::from_millis(1))
                    }
                    Err(e) => return (r, Err(format!("submit failed: {e}"))),
                }
            };
            (r, Ok(ticket.wait()))
        }));
    }

    let mut out = String::new();
    let mut outcomes: Vec<(usize, Result<ScoreOutcome, String>)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    outcomes.sort_by_key(|(r, _)| *r);
    for (r, outcome) in outcomes {
        match outcome {
            Ok(ScoreOutcome::Scored(batch)) if batch.faults.is_empty() => {
                writeln!(
                    out,
                    "request {r:2}: scored clean ({} rows, {}ms)",
                    batch.combined.len(),
                    batch.latency_ms
                )
                .expect("string write");
            }
            Ok(ScoreOutcome::Scored(batch)) => {
                let faults: Vec<String> = batch
                    .faults
                    .iter()
                    .map(|fault| {
                        format!(
                            "{}#{}{}",
                            fault.name,
                            fault.pool_index,
                            if fault.quarantined {
                                " [quarantined]"
                            } else {
                                ""
                            }
                        )
                    })
                    .collect();
                writeln!(
                    out,
                    "request {r:2}: scored degraded ({}/{} models healthy): {}",
                    batch.healthy_models,
                    batch.total_models,
                    faults.join(", ")
                )
                .expect("string write");
            }
            Ok(other) => writeln!(out, "request {r:2}: {other:?}").expect("string write"),
            Err(msg) => writeln!(out, "request {r:2}: {msg}").expect("string write"),
        }
    }
    writeln!(out, "{}", service.report()).expect("string write");
    Ok(out)
}

/// Accepts connections and answers one score request per connection.
///
/// Wire protocol: the client sends feature rows as comma-separated f64
/// lines terminated by a blank line (or EOF); the server replies with
/// `ok <n>` followed by `n` score lines, or a single `busy` / `shed ...`
/// / `error <msg>` line. Per-connection errors are answered in-band and
/// never take the server down.
///
/// Returns a one-line summary after `max_conns` connections (0 = loop
/// until the listener fails).
///
/// # Errors
///
/// Returns a message only if accepting on the listener itself fails.
pub fn serve_listener(
    listener: &TcpListener,
    service: &ScoreService,
    max_conns: usize,
) -> Result<String, String> {
    let mut served = 0usize;
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("accept failed: {e}"))?;
        // In-band response already written; connection-level I/O errors
        // mean the client went away and are not the server's problem.
        let _ = handle_connection(stream, service);
        served += 1;
        if max_conns > 0 && served >= max_conns {
            break;
        }
    }
    Ok(format!("served {served} connections"))
}

fn handle_connection(stream: TcpStream, service: &ScoreService) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
        let parsed: Result<Vec<f64>, _> = line
            .trim()
            .split(',')
            .map(|cell| cell.trim().parse::<f64>())
            .collect();
        match parsed {
            Ok(row) => rows.push(row),
            Err(e) => {
                writeln!(writer, "error cannot parse row {}: {e}", rows.len())?;
                return Ok(());
            }
        }
    }
    let query = match suod_linalg::Matrix::from_rows(&rows) {
        Ok(m) => m,
        Err(e) => {
            writeln!(writer, "error {e}")?;
            return Ok(());
        }
    };
    let ticket = match service.submit(query) {
        Ok(t) => t,
        Err(SubmitError::Busy { .. }) => {
            writeln!(writer, "busy")?;
            return Ok(());
        }
        Err(e) => {
            writeln!(writer, "error {e}")?;
            return Ok(());
        }
    };
    match ticket.wait() {
        ScoreOutcome::Scored(batch) => {
            writeln!(writer, "ok {}", batch.combined.len())?;
            for s in &batch.combined {
                // f64 Display round-trips, so scores cross the wire
                // bit-identically.
                writeln!(writer, "{s}")?;
            }
        }
        ScoreOutcome::Shed {
            waited_ms,
            deadline_ms,
        } => writeln!(
            writer,
            "shed waited_ms={waited_ms} deadline_ms={deadline_ms}"
        )?,
        ScoreOutcome::Failed(msg) => writeln!(writer, "error {msg}")?,
        other => writeln!(writer, "error unexpected outcome: {other:?}")?,
    }
    writer.flush()
}

/// Client side of the wire protocol: sends `rows` to a
/// `serve --listen` server and returns the combined scores.
///
/// # Errors
///
/// Returns a message on connection failure, a `busy` / `shed` / `error`
/// response, or a malformed reply.
pub fn score_rows(addr: &str, rows: &[Vec<f64>]) -> Result<Vec<f64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut body = String::new();
    for row in rows {
        let cells: Vec<String> = row.iter().map(f64::to_string).collect();
        body.push_str(&cells.join(","));
        body.push('\n');
    }
    body.push('\n'); // blank-line terminator
    writer
        .write_all(body.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader
        .read_line(&mut header)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let header = header.trim();
    let n: usize = match header.strip_prefix("ok ") {
        Some(count) => count
            .parse()
            .map_err(|_| format!("malformed response header `{header}`"))?,
        None => return Err(format!("server refused request: {header}")),
    };
    let mut scores = Vec::with_capacity(n);
    let mut line = String::new();
    for i in 0..n {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read score {i}: {e}"))?;
        scores.push(
            line.trim()
                .parse::<f64>()
                .map_err(|_| format!("malformed score line `{}`", line.trim()))?,
        );
    }
    Ok(scores)
}

fn score(args: &ScoreArgs) -> Result<String, String> {
    let ds = load_csv(
        &args.csv,
        CsvOptions {
            has_header: None,
            label_column: args.label_column,
        },
    )
    .map_err(|e| format!("cannot load CSV: {e}"))?;
    let rows: Vec<Vec<f64>> = (0..ds.x.nrows()).map(|r| ds.x.row(r).to_vec()).collect();
    let scores = score_rows(&args.connect, &rows)?;

    let mut csv = String::from("index,score\n");
    for (i, s) in scores.iter().enumerate() {
        writeln!(csv, "{i},{s:.6}").expect("string write");
    }
    let mut out = format!("scored {} rows via {}\n", scores.len(), args.connect);
    match &args.output {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            writeln!(out, "scores written to {path}").expect("string write");
        }
        None => out.push_str(&csv),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&argv("list-datasets")).unwrap(),
            Command::ListDatasets
        );
    }

    #[test]
    fn parses_detect_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --scale 0.1 --models 8 --no-rp --workers 3 --seed 7",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.dataset.as_deref(), Some("cardio"));
        assert_eq!(d.scale, 0.1);
        assert_eq!(d.models, 8);
        assert!(!d.rp);
        assert!(d.psa && d.bps);
        assert_eq!(d.workers, 3);
        assert_eq!(d.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("detect")).is_err()); // no source
        assert!(parse_args(&argv("detect --dataset a --csv b.csv")).is_err());
        assert!(parse_args(&argv("detect --dataset a --bogus")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models x")).is_err());
        assert!(parse_args(&argv("detect --dataset a --models")).is_err());
        assert!(parse_args(&argv("detect --dataset a --backend simd")).is_err());
        assert!(parse_args(&argv("detect --dataset a --precision f16")).is_err());
        assert!(parse_args(&argv("detect --dataset a --neighbor-backend kdtree")).is_err());
        assert!(parse_args(&argv("detect --dataset a --ef-search fast")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_kernel_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --backend gemm --precision mixed",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Gemm);
        assert_eq!(d.precision, Precision::Mixed);

        // Defaults: the exact blocked/f64 pipeline.
        let Command::Detect(d) = parse_args(&argv("detect --dataset cardio")).unwrap() else {
            panic!("expected detect")
        };
        assert_eq!(d.backend, DistanceBackend::Blocked);
        assert_eq!(d.precision, Precision::F64);
        assert_eq!(d.neighbor, NeighborBackend::Exact);
        assert_eq!(d.ef_search, None);
    }

    #[test]
    fn parses_neighbor_flags() {
        let cmd = parse_args(&argv(
            "detect --dataset cardio --neighbor-backend hnsw --ef-search 128",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else {
            panic!("expected detect")
        };
        assert!(d.neighbor.is_approximate());
        assert_eq!(d.ef_search, Some(128));
    }

    #[test]
    fn detect_reports_cpu_features() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 --backend gemm \
             --precision mixed",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("kernels: backend=gemm lane="), "{out}");
        assert!(out.contains("precision=mixed"), "{out}");
        assert!(out.contains("neighbors=exact"), "{out}");
    }

    #[test]
    fn detect_reports_hnsw_backend() {
        // Registry analogs are far below DEFAULT_HNSW_MIN_ROWS at this
        // scale, so the run exercises the exactness fallback while the
        // kernels line still reports the configured hnsw backend.
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 4 --seed 3 \
             --neighbor-backend hnsw --ef-search 32",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("neighbors=hnsw(ef_search=32)"), "{out}");
    }

    #[test]
    fn list_datasets_prints_registry() {
        let out = run(Command::ListDatasets).unwrap();
        assert!(out.contains("cardio"));
        assert!(out.contains("shuttle"));
        assert_eq!(out.lines().count(), 1 + registry::TABLE_A1.len());
    }

    #[test]
    fn detect_on_registry_analog() {
        let cmd = parse_args(&argv(
            "detect --dataset pima --scale 0.2 --models 5 --workers 1 --seed 3",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("ROC-AUC"), "{out}");
        assert!(out.contains("flagged"));
    }

    #[test]
    fn detect_on_csv_roundtrip() {
        let dir = std::env::temp_dir().join("suod_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let mut body = String::from("a,b,label\n");
        for i in 0..40 {
            body.push_str(&format!("{}.0,{}.5,0\n", i % 7, (i * 3) % 5));
        }
        body.push_str("50.0,50.0,1\n");
        std::fs::write(&input, body).unwrap();
        let output = dir.join("out.csv");

        let cmd = parse_args(&argv(&format!(
            "detect --csv {} --label-column 2 --models 4 --seed 1 --output {}",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("ROC-AUC"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score,label\n"));
        assert_eq!(written.lines().count(), 1 + 41);
    }

    #[test]
    fn detect_errors_are_messages_not_panics() {
        let cmd = parse_args(&argv("detect --dataset not-a-dataset")).unwrap();
        assert!(run(cmd).is_err());
        let cmd = parse_args(&argv("detect --csv /nonexistent/nope.csv")).unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 4 --format chrome --workers 2",
        ))
        .unwrap();
        let Command::Trace(t) = cmd else {
            panic!("expected trace")
        };
        assert_eq!(t.detect.dataset.as_deref(), Some("pima"));
        assert_eq!(t.detect.models, 4);
        assert_eq!(t.format, TraceFormat::Chrome);

        // Default format is the stable JSON schema.
        let Command::Trace(t) = parse_args(&argv("trace --dataset pima")).unwrap() else {
            panic!("expected trace")
        };
        assert_eq!(t.format, TraceFormat::Json);

        assert!(parse_args(&argv("trace")).is_err()); // no source
        assert!(parse_args(&argv("trace --dataset pima --format xml")).is_err());
        // --format belongs to trace only.
        assert!(parse_args(&argv("detect --dataset pima --format json")).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse_args(&argv(
            "serve --dataset cardio --scale 0.2 --models 6 --workers 2 --queue 8 \
             --batch-rows 64 --window-ms 5 --deadline-ms 100 --failure-budget 2 \
             --min-healthy 0.6 --chaos panic --requests 4 --rows-per-request 8",
        ))
        .unwrap();
        let Command::Serve(s) = cmd else {
            panic!("expected serve")
        };
        assert_eq!(s.detect.dataset.as_deref(), Some("cardio"));
        assert_eq!(s.detect.workers, 2);
        assert_eq!(s.queue, 8);
        assert_eq!(s.batch_rows, 64);
        assert_eq!(s.window_ms, 5);
        assert_eq!(s.deadline_ms, Some(100));
        assert_eq!(s.failure_budget, 2);
        assert_eq!(s.min_healthy, 0.6);
        assert_eq!(s.chaos, Some(ChaosMode::PanicOnPredict));
        assert_eq!(s.requests, 4);
        assert_eq!(s.rows_per_request, 8);
        assert_eq!(s.listen, None);

        // Chaos mode spellings.
        let parse = |raw: &str| {
            parse_args(&argv(&format!("serve --dataset a --chaos {raw}"))).map(|cmd| match cmd {
                Command::Serve(s) => s.chaos,
                _ => panic!("expected serve"),
            })
        };
        assert_eq!(parse("nan").unwrap(), Some(ChaosMode::NanOnPredict));
        assert_eq!(parse("slow").unwrap(), Some(ChaosMode::SlowPredict(25)));
        assert_eq!(parse("slow:9").unwrap(), Some(ChaosMode::SlowPredict(9)));
        assert!(parse("explode").is_err());

        assert!(parse_args(&argv("serve")).is_err()); // no source
        assert!(parse_args(&argv("serve --dataset a --csv b.csv")).is_err());
        assert!(parse_args(&argv("serve --dataset a --format json")).is_err());
    }

    #[test]
    fn parses_score_flags() {
        let cmd = parse_args(&argv(
            "score --connect 127.0.0.1:7878 --csv q.csv --label-column 2",
        ))
        .unwrap();
        let Command::Score(s) = cmd else {
            panic!("expected score")
        };
        assert_eq!(s.connect, "127.0.0.1:7878");
        assert_eq!(s.csv, "q.csv");
        assert_eq!(s.label_column, Some(2));
        assert_eq!(s.output, None);

        assert!(parse_args(&argv("score --csv q.csv")).is_err()); // no addr
        assert!(parse_args(&argv("score --connect 127.0.0.1:1")).is_err()); // no csv
        assert!(parse_args(&argv("score --connect a --csv b --models 3")).is_err());
    }

    #[test]
    fn serve_replay_demo_answers_every_request() {
        // NanOnPredict keeps stderr quiet (no panic hook noise) while
        // still exercising the degradation path end to end.
        let cmd = parse_args(&argv(
            "serve --dataset pima --scale 0.2 --models 4 --seed 3 --workers 2 \
             --requests 3 --rows-per-request 8 --batch-rows 8 --chaos nan \
             --failure-budget 2 --min-healthy 0.5",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("request  0: scored"), "{out}");
        assert!(out.contains("request  2: scored"), "{out}");
        assert!(out.contains("serve: 3 admitted"), "{out}");
        assert!(out.contains("chaos#4"), "{out}");
        assert!(!out.contains("Failed"), "{out}");
    }

    #[test]
    fn serve_listen_and_score_round_trip_over_loopback() {
        let dir = std::env::temp_dir().join("suod_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();

        // A small healthy service bound to an ephemeral loopback port.
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 8) as f64, (i % 5) as f64 * 0.5, (i % 3) as f64])
            .collect();
        rows.push(vec![40.0, 40.0, 40.0]);
        let x = suod_linalg::Matrix::from_rows(&rows).unwrap();
        let mut clf = Suod::builder()
            .base_estimators(vec![
                ModelSpec::Hbos {
                    n_bins: 8,
                    tolerance: 0.3,
                },
                ModelSpec::IForest {
                    n_estimators: 10,
                    max_features: 1.0,
                },
            ])
            .n_workers(1)
            .seed(5)
            .build()
            .unwrap();
        clf.fit(&x).unwrap();
        let mut service = ScoreService::new(clf, ServeConfig::default()).unwrap();
        service.spawn_dispatcher();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let summary = serve_listener(&listener, &service, 3).unwrap();
            (summary, service.report())
        });

        // Connection 1: direct client API round trip.
        let queries = vec![vec![1.0, 0.5, 2.0], vec![39.0, 41.0, 38.0]];
        let scores = score_rows(&addr, &queries).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(scores[1] > scores[0], "planted outlier must score higher");

        // Connection 2: a ragged request is answered in-band, not fatal.
        let err = score_rows(&addr, &[vec![1.0, 2.0, 3.0], vec![4.0]]).unwrap_err();
        assert!(err.contains("server refused request"), "{err}");

        // Connection 3: the score subcommand end to end, via CSV.
        let input = dir.join("queries.csv");
        std::fs::write(&input, "a,b,c\n0.0,0.5,1.0\n38.0,40.0,39.0\n").unwrap();
        let output = dir.join("scores.csv");
        let cmd = parse_args(&argv(&format!(
            "score --connect {addr} --csv {} --output {}",
            input.display(),
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("scored 2 rows"), "{report}");
        let written = std::fs::read_to_string(&output).unwrap();
        assert!(written.starts_with("index,score\n"));
        assert_eq!(written.lines().count(), 3);

        let (summary, report) = server.join().unwrap();
        assert_eq!(summary, "served 3 connections");
        assert_eq!(report.requests_scored, 2);
        assert_eq!(report.admitted, 2); // the ragged request never queued
    }

    #[test]
    fn trace_exports_schema_valid_json() {
        let dir = std::env::temp_dir().join("suod_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("trace.json");
        let cmd = parse_args(&argv(&format!(
            "trace --dataset pima --scale 0.2 --models 5 --workers 2 --seed 3 --output {}",
            output.display()
        )))
        .unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("spans"), "{report}");
        assert!(report.contains("trace written to"), "{report}");

        let written = std::fs::read_to_string(&output).unwrap();
        let trace = suod::observe::export::from_json(&written).expect("schema-valid trace");
        assert!(trace.spans_of(suod::observe::Stage::Fit).count() >= 1);
        assert!(trace.spans_of(suod::observe::Stage::ModelFit).count() >= 5);
        assert!(trace.spans_of(suod::observe::Stage::Predict).count() >= 1);
    }

    #[test]
    fn trace_chrome_format_streams_to_stdout() {
        let cmd = parse_args(&argv(
            "trace --dataset pima --scale 0.2 --models 3 --workers 1 --seed 5 --format chrome",
        ))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("\"traceEvents\""), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
    }
}
