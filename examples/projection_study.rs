//! Projection-method study: Table 1 of the paper, example-sized.
//!
//! Fits a costly detector (LOF) on a high-dimensional dataset under each
//! projection method — `original`, `PCA`, `RS`, and the four JL variants
//! — and prints fit time, test ROC, and P@N per method, showing the JL
//! variants holding accuracy while cutting dimensionality.
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod --example projection_study
//! ```

use std::time::Instant;
use suod::prelude::*;
use suod_datasets::{registry, train_test_split};
use suod_detectors::{Detector, LofDetector};
use suod_metrics::{precision_at_n, roc_auc};
use suod_projection::{
    IdentityProjector, JlProjector, PcaProjector, Projector, RandomSelectProjector,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic analog of the paper's MNIST benchmark (d = 100), scaled
    // down so the example runs in seconds.
    let ds = registry::load_scaled("mnist", 7, 0.25)?;
    let split = train_test_split(&ds, 0.4, 7)?;
    let d = ds.n_features();
    let k = (2 * d) / 3; // the paper's k = (2/3) d

    println!(
        "dataset: {} analog, {} x {} (k = {k})\n",
        ds.name,
        ds.n_samples(),
        d
    );
    println!(
        "{:<10} {:>9} {:>8} {:>8}",
        "method", "time(s)", "ROC", "P@N"
    );

    let mut projectors: Vec<Box<dyn Projector>> = vec![
        Box::new(IdentityProjector::new()),
        Box::new(PcaProjector::new(k)?),
        Box::new(RandomSelectProjector::new(k, 7)?),
    ];
    for variant in JlVariant::all() {
        projectors.push(Box::new(JlProjector::new(variant, k, 7)?));
    }

    for mut proj in projectors {
        proj.fit(&split.x_train)?;
        let z_train = proj.transform(&split.x_train)?;
        let z_test = proj.transform(&split.x_test)?;

        let start = Instant::now();
        let mut lof = LofDetector::new(20)?;
        lof.fit(&z_train)?;
        let scores = lof.decision_function(&z_test)?;
        let elapsed = start.elapsed().as_secs_f64();

        let auc = roc_auc(&split.y_test, &scores)?;
        let pan = precision_at_n(&split.y_test, &scores, None)?;
        println!("{:<10} {elapsed:>9.3} {auc:>8.3} {pan:>8.3}", proj.name());
    }

    println!("\n(JL variants, especially circulant/toeplitz, should track or beat");
    println!(" `original` accuracy at lower cost — the paper's Table 1 shape.)");
    Ok(())
}
