//! Scoped-thread helpers backing the data-parallel kernels.
//!
//! Every parallel kernel in this crate decomposes over **contiguous row
//! blocks** and takes an explicit `n_threads` argument (callers pass 1
//! for the sequential baseline). Each output element is computed by the
//! same code path regardless of how rows are chunked, so results are
//! bit-identical across thread counts — the guarantee the determinism
//! system test pins down.
//!
//! Plain `std::thread::scope` is used instead of a pool: kernel
//! invocations are coarse (a whole distance matrix, a whole matmul), so
//! thread spawn cost is noise next to the work. The executor-level
//! pooling lives in `suod-scheduler`.

use std::ops::Range;

/// Splits `0..n` into at most `parts` contiguous, non-empty ranges of
/// near-equal length (earlier ranges get the remainder).
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over contiguous row blocks of a row-major buffer, one scoped
/// thread per block; `f` receives the block's global row range and its
/// mutable slice (`range.len() * cols` elements).
///
/// With `n_threads <= 1` (or a single row) runs inline on the calling
/// thread — the baseline every parallel result must match bit-for-bit.
pub fn par_row_blocks<F>(data: &mut [f64], cols: usize, n_threads: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    let rows = data.len() / cols;
    let threads = n_threads.max(1).min(rows);
    if threads <= 1 {
        f(0..rows, data);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = data;
        for range in split_ranges(rows, threads) {
            let (block, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            scope.spawn(move || f(range, block));
        }
    });
}

/// Maps `f` over contiguous chunks of `0..n` on scoped threads and
/// concatenates the per-chunk vectors in chunk order, so the result is
/// ordered exactly like the sequential `f(0..n)`.
pub fn par_chunk_map<T, F>(n: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let threads = n_threads.max(1).min(n.max(1));
    if threads <= 1 {
        return f(0..n);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = split_ranges(n, threads)
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 32] {
                let ranges = split_ranges(n, parts);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                assert!(ranges.len() <= parts.max(1));
                if n >= parts && parts >= 1 {
                    assert_eq!(ranges.len(), parts);
                }
            }
        }
    }

    #[test]
    fn split_lengths_near_equal() {
        let ranges = split_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn par_row_blocks_writes_every_row_once() {
        for threads in [1usize, 2, 3, 8] {
            let mut data = vec![0.0; 7 * 3];
            par_row_blocks(&mut data, 3, threads, |rows, block| {
                for (offset, row) in block.chunks_mut(3).enumerate() {
                    let i = rows.start + offset;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v += (i * 10 + c) as f64;
                    }
                }
            });
            let expected: Vec<f64> = (0..7)
                .flat_map(|i| (0..3).map(move |c| (i * 10 + c) as f64))
                .collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_row_blocks_empty_is_noop() {
        let mut empty: Vec<f64> = Vec::new();
        par_row_blocks(&mut empty, 0, 4, |_, _| panic!("must not run"));
        par_row_blocks(&mut empty, 3, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_chunk_map_preserves_order() {
        for threads in [1usize, 2, 5, 16] {
            let got = par_chunk_map(11, threads, |range| {
                range.map(|i| i * i).collect::<Vec<_>>()
            });
            assert_eq!(got, (0..11).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunk_map_empty() {
        let got: Vec<usize> = par_chunk_map(0, 4, |range| range.collect());
        assert!(got.is_empty());
    }
}
