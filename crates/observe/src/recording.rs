//! The recording observer and its immutable [`Trace`] snapshot.
//!
//! [`RecordingObserver`] is the concrete sink behind `suod-cli trace` and
//! the observability system tests. It is **lock-sharded**: span ids come
//! from one atomic counter and each id is routed to `id % n_shards`, so
//! concurrent executor workers rarely contend on the same mutex, and the
//! hot path never allocates more than one `Vec` push per span.
//!
//! The captured trace is deterministic in the sense the system tests
//! verify: for a fixed `(data, pool, seed)`, the *set* of spans (stage +
//! model/task attribution) and every deterministic [`Counter`] are
//! identical across worker counts. Timestamps, durations, worker ids,
//! latency histograms, and scheduling counters (steals, stragglers) are
//! wall-clock-class fields and excluded from the guarantee — see
//! [`Trace::deterministic_signature`].

use crate::{Counter, Observer, SpanAttrs, SpanId, Stage, COUNTERS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets per stage histogram. Bucket `b > 0`
/// counts durations in `[2^(b-1), 2^b)` microseconds; bucket 0 counts
/// sub-microsecond spans. 32 buckets reach ~35 minutes.
pub const HISTOGRAM_BUCKETS: usize = 32;

fn bucket_of(dur_us: u64) -> usize {
    if dur_us == 0 {
        0
    } else {
        ((64 - dur_us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// One recorded span in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (begin order; starts at 1).
    pub id: u64,
    /// The pipeline stage.
    pub stage: Stage,
    /// Pool model index attribution, if any.
    pub model: Option<usize>,
    /// Executor task index attribution, if any.
    pub task: Option<usize>,
    /// Worker thread that ran the span (wall-clock-class field).
    pub worker: Option<usize>,
    /// Start offset in microseconds since the observer's creation.
    pub start_us: u64,
    /// Duration in microseconds (0 for spans never closed).
    pub dur_us: u64,
}

/// Latency histogram of one stage's span durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRecord {
    /// The stage the histogram aggregates.
    pub stage: Stage,
    /// Log₂ bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Number of spans aggregated.
    pub count: u64,
    /// Sum of span durations in microseconds.
    pub total_us: u64,
}

/// An immutable snapshot of everything a [`RecordingObserver`] captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    spans: Vec<SpanRecord>,
    /// Counter values indexed like [`COUNTERS`].
    counters: Vec<u64>,
    histograms: Vec<HistogramRecord>,
}

impl Trace {
    /// Reassembles a trace from its exported parts (used by the JSON
    /// importer; `counters` is indexed like [`COUNTERS`]).
    pub fn from_parts(
        spans: Vec<SpanRecord>,
        counters: Vec<u64>,
        histograms: Vec<HistogramRecord>,
    ) -> Self {
        let mut counters = counters;
        counters.resize(COUNTERS.len(), 0);
        Trace {
            spans,
            counters,
            histograms,
        }
    }

    /// All spans, ordered by `(start_us, id)`.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The spans of one stage, in trace order.
    pub fn spans_of(&self, stage: Stage) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.stage == stage)
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        let idx = COUNTERS
            .iter()
            .position(|&c| c == counter)
            .expect("every counter is listed in COUNTERS");
        self.counters[idx]
    }

    /// All `(counter, value)` pairs in export order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        COUNTERS.iter().zip(&self.counters).map(|(&c, &v)| (c, v))
    }

    /// Per-stage latency histograms (stages with at least one span).
    pub fn histograms(&self) -> &[HistogramRecord] {
        &self.histograms
    }

    /// Sum of the durations of one stage's spans.
    pub fn total_time_of(&self, stage: Stage) -> Duration {
        Duration::from_micros(self.spans_of(stage).map(|s| s.dur_us).sum())
    }

    /// End-to-end extent of the trace in microseconds.
    pub fn wall_us(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        end - start
    }

    /// The wall-clock-free identity of this trace: one sorted line per
    /// span — `span <stage> model=<m> task=<t>` — followed by one line
    /// per deterministic counter. Two runs of the same `(data, pool,
    /// seed)` produce equal signatures at any worker count; timestamps,
    /// durations, worker ids, histograms, and scheduling counters are
    /// deliberately excluded.
    pub fn deterministic_signature(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "span {} model={} task={}",
                    s.stage.name(),
                    s.model.map_or_else(|| "-".into(), |m| m.to_string()),
                    s.task.map_or_else(|| "-".into(), |t| t.to_string()),
                )
            })
            .collect();
        lines.sort();
        for (c, v) in self.counters() {
            if c.is_deterministic() {
                lines.push(format!("counter {}={v}", c.name()));
            }
        }
        lines
    }

    /// Fraction of the `parent` stage's total duration covered by the
    /// union of all other spans — the "how much of the fit is accounted
    /// for" metric behind the ≥95 % coverage acceptance target. Returns
    /// 1.0 when `parent` has no spans or zero duration.
    pub fn coverage_of(&self, parent: Stage) -> f64 {
        let parents: Vec<(u64, u64)> = self
            .spans_of(parent)
            .map(|s| (s.start_us, s.start_us + s.dur_us))
            .collect();
        let total: u64 = parents.iter().map(|&(a, b)| b - a).sum();
        if total == 0 {
            return 1.0;
        }
        let mut children: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.stage != parent && s.dur_us > 0)
            .map(|s| (s.start_us, s.start_us + s.dur_us))
            .collect();
        children.sort_unstable();
        // Merge overlapping child intervals, then clip to parent spans.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(children.len());
        for (a, b) in children {
            match merged.last_mut() {
                Some((_, e)) if a <= *e => *e = (*e).max(b),
                _ => merged.push((a, b)),
            }
        }
        let mut covered = 0u64;
        for &(pa, pb) in &parents {
            for &(ca, cb) in &merged {
                let lo = ca.max(pa);
                let hi = cb.min(pb);
                if hi > lo {
                    covered += hi - lo;
                }
            }
        }
        covered as f64 / total as f64
    }
}

/// One shard's open/closed span storage.
#[derive(Debug, Default)]
struct Shard {
    spans: Vec<ShardSpan>,
}

#[derive(Debug)]
struct ShardSpan {
    id: u64,
    stage: Stage,
    attrs: SpanAttrs,
    start_us: u64,
    end_us: Option<u64>,
}

/// A lock-sharded recording [`Observer`]. See the [module docs](self).
#[derive(Debug)]
pub struct RecordingObserver {
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    counters: Vec<AtomicU64>,
}

impl Default for RecordingObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingObserver {
    /// Number of mutex shards (power of two; spans route by `id & mask`).
    const SHARDS: usize = 16;

    /// Creates a recorder whose timestamps are offsets from "now".
    pub fn new() -> Self {
        RecordingObserver {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            counters: COUNTERS.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn shard_of(&self, id: u64) -> &Mutex<Shard> {
        &self.shards[(id as usize) & (Self::SHARDS - 1)]
    }

    /// Snapshots everything recorded so far into an immutable [`Trace`].
    /// Spans are ordered by `(start_us, id)`; spans still open keep
    /// duration 0. The recorder keeps accumulating afterwards.
    pub fn trace(&self) -> Trace {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for s in &shard.spans {
                spans.push(SpanRecord {
                    id: s.id,
                    stage: s.stage,
                    model: s.attrs.model,
                    task: s.attrs.task,
                    worker: s.attrs.worker,
                    start_us: s.start_us,
                    dur_us: s.end_us.map_or(0, |e| e.saturating_sub(s.start_us)),
                });
            }
        }
        spans.sort_by_key(|s| (s.start_us, s.id));
        let counters: Vec<u64> = self
            .counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let mut histograms: Vec<HistogramRecord> = Vec::new();
        for &stage in crate::STAGES {
            let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
            let mut count = 0u64;
            let mut total_us = 0u64;
            for s in spans.iter().filter(|s| s.stage == stage) {
                buckets[bucket_of(s.dur_us)] += 1;
                count += 1;
                total_us += s.dur_us;
            }
            if count > 0 {
                histograms.push(HistogramRecord {
                    stage,
                    buckets,
                    count,
                    total_us,
                });
            }
        }
        Trace {
            spans,
            counters,
            histograms,
        }
    }
}

impl Observer for RecordingObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&self, stage: Stage, attrs: SpanAttrs) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start_us = self.now_us();
        let mut shard = self.shard_of(id).lock().unwrap_or_else(|e| e.into_inner());
        shard.spans.push(ShardSpan {
            id,
            stage,
            attrs,
            start_us,
            end_us: None,
        });
        SpanId(id)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let end = self.now_us();
        let mut shard = self
            .shard_of(id.0)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Spans close LIFO per thread, so the open span is almost always
        // near the back of its shard.
        if let Some(s) = shard
            .spans
            .iter_mut()
            .rev()
            .find(|s| s.id == id.0 && s.end_us.is_none())
        {
            s.end_us = Some(end);
        }
    }

    fn counter(&self, counter: Counter, delta: u64) {
        let idx = COUNTERS
            .iter()
            .position(|&c| c == counter)
            .expect("every counter is listed in COUNTERS");
        self.counters[idx].fetch_add(delta, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_counters_and_histograms() {
        let rec = RecordingObserver::new();
        let a = rec.span_begin(Stage::Fit, SpanAttrs::none());
        let b = rec.span_begin(Stage::ModelFit, SpanAttrs::model(2).with_task(2));
        rec.counter(Counter::CacheMiss, 1);
        rec.counter(Counter::CacheHit, 2);
        rec.span_end(b);
        rec.span_end(a);

        let t = rec.trace();
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].stage, Stage::Fit);
        assert_eq!(t.spans()[1].model, Some(2));
        assert_eq!(t.counter(Counter::CacheHit), 2);
        assert_eq!(t.counter(Counter::CacheMiss), 1);
        assert_eq!(t.counter(Counter::Steal), 0);
        let hist: Vec<Stage> = t.histograms().iter().map(|h| h.stage).collect();
        assert_eq!(hist, vec![Stage::Fit, Stage::ModelFit]);
        assert_eq!(t.histograms()[0].count, 1);
        assert_eq!(
            t.histograms()[0].buckets.iter().sum::<u64>(),
            t.histograms()[0].count
        );
    }

    #[test]
    fn concurrent_spans_all_recorded() {
        let rec = std::sync::Arc::new(RecordingObserver::new());
        std::thread::scope(|scope| {
            for w in 0..8usize {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..50usize {
                        let id = rec.span_begin(
                            Stage::ExecutorTask,
                            SpanAttrs::task(w * 50 + i).on_worker(w),
                        );
                        rec.counter(Counter::Steal, 1);
                        rec.span_end(id);
                    }
                });
            }
        });
        let t = rec.trace();
        assert_eq!(t.spans().len(), 400);
        assert_eq!(t.counter(Counter::Steal), 400);
        // Ids are unique.
        let mut ids: Vec<u64> = t.spans().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn unclosed_span_has_zero_duration() {
        let rec = RecordingObserver::new();
        let _open = rec.span_begin(Stage::Predict, SpanAttrs::none());
        let t = rec.trace();
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].dur_us, 0);
    }

    #[test]
    fn ending_none_or_unknown_is_harmless() {
        let rec = RecordingObserver::new();
        rec.span_end(SpanId::NONE);
        rec.span_end(SpanId(999));
        assert!(rec.trace().spans().is_empty());
    }

    #[test]
    fn deterministic_signature_ignores_wall_clock() {
        let make = |steals: u64| {
            let rec = RecordingObserver::new();
            let a = rec.span_begin(Stage::ModelFit, SpanAttrs::model(0).on_worker(3));
            std::thread::sleep(Duration::from_millis(1));
            rec.span_end(a);
            let b = rec.span_begin(Stage::ModelFit, SpanAttrs::model(1).on_worker(1));
            rec.span_end(b);
            rec.counter(Counter::Steal, steals);
            rec.counter(Counter::CacheHit, 2);
            rec.trace().deterministic_signature()
        };
        // Different steal counts, worker ids, and durations — same signature.
        assert_eq!(make(0), make(7));
    }

    #[test]
    fn coverage_of_unions_children() {
        let spans = vec![
            SpanRecord {
                id: 1,
                stage: Stage::Fit,
                model: None,
                task: None,
                worker: None,
                start_us: 0,
                dur_us: 100,
            },
            SpanRecord {
                id: 2,
                stage: Stage::ModelFit,
                model: Some(0),
                task: None,
                worker: None,
                start_us: 0,
                dur_us: 40,
            },
            // Overlaps the first child; union covers 0..70.
            SpanRecord {
                id: 3,
                stage: Stage::ModelFit,
                model: Some(1),
                task: None,
                worker: None,
                start_us: 30,
                dur_us: 40,
            },
        ];
        let t = Trace::from_parts(spans, vec![], vec![]);
        let cov = t.coverage_of(Stage::Fit);
        assert!((cov - 0.7).abs() < 1e-12, "{cov}");
        // A stage with no spans is trivially covered.
        assert_eq!(t.coverage_of(Stage::Predict), 1.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}
