#![warn(missing_docs)]

//! Offline shim for the subset of `criterion` this workspace's benches
//! use.
//!
//! The build container has no crates-registry access, so the benches run
//! on a small, dependency-free timing harness exposing the same API
//! shape: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Statistics are minimal
//! (mean and min over fixed-count samples, printed to stdout) — enough to
//! compare kernels and track regressions, without upstream criterion's
//! adaptive sampling or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warmup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh values from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    println!(
        "{label:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
