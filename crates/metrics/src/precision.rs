//! Precision at rank N and related top-k diagnostics.

use crate::{check_lengths, Error, Result};
use suod_linalg::rank::top_k_indices;

/// Precision at rank `n` (P@N).
///
/// The paper (Appendix A) evaluates P@N with `n` set to the actual number
/// of outliers in the dataset, which is the default here (`n = None`).
/// Pass `Some(k)` to evaluate precision among the top-`k` scored samples
/// instead.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] when the vectors differ in length.
/// * [`Error::Empty`] on empty input.
/// * [`Error::Undefined`] when there are no outliers and `n` is `None`,
///   or when `Some(0)` is passed.
/// * [`Error::NonFinite`] when any score is NaN or infinite — a NaN score
///   would make the top-k selection order-dependent garbage.
///
/// # Example
///
/// ```
/// // 2 outliers; the top-2 scores hit one of them.
/// let p = suod_metrics::precision_at_n(&[0, 0, 1, 1], &[0.9, 0.1, 0.8, 0.2], None)?;
/// assert_eq!(p, 0.5);
/// # Ok::<(), suod_metrics::Error>(())
/// ```
pub fn precision_at_n(labels: &[i32], scores: &[f64], n: Option<usize>) -> Result<f64> {
    check_lengths(labels.len(), scores.len())?;
    if labels.is_empty() {
        return Err(Error::Empty("precision_at_n"));
    }
    if scores.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFinite("precision_at_n"));
    }
    let n_outliers = labels.iter().filter(|&&l| l != 0).count();
    let k = match n {
        Some(0) => return Err(Error::Undefined("precision_at_n with n = 0")),
        Some(k) => k.min(labels.len()),
        None if n_outliers == 0 => {
            return Err(Error::Undefined("precision_at_n with zero outliers"))
        }
        None => n_outliers,
    };
    let top = top_k_indices(scores, k);
    let hits = top.iter().filter(|&&i| labels[i] != 0).count();
    Ok(hits as f64 / k as f64)
}

/// Precision and recall among the top-`k` scored samples, returned as
/// `(precision, recall)`.
///
/// # Errors
///
/// Same conditions as [`precision_at_n`]; additionally undefined when the
/// dataset has no outliers (recall denominator).
pub fn precision_recall_at_k(labels: &[i32], scores: &[f64], k: usize) -> Result<(f64, f64)> {
    check_lengths(labels.len(), scores.len())?;
    if labels.is_empty() {
        return Err(Error::Empty("precision_recall_at_k"));
    }
    if k == 0 {
        return Err(Error::Undefined("precision_recall_at_k with k = 0"));
    }
    if scores.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFinite("precision_recall_at_k"));
    }
    let n_outliers = labels.iter().filter(|&&l| l != 0).count();
    if n_outliers == 0 {
        return Err(Error::Undefined("precision_recall_at_k with zero outliers"));
    }
    let k = k.min(labels.len());
    let top = top_k_indices(scores, k);
    let hits = top.iter().filter(|&&i| labels[i] != 0).count();
    Ok((hits as f64 / k as f64, hits as f64 / n_outliers as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let p = precision_at_n(&[1, 1, 0, 0], &[0.9, 0.8, 0.2, 0.1], None).unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn worst_ranking() {
        let p = precision_at_n(&[1, 1, 0, 0], &[0.1, 0.2, 0.8, 0.9], None).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn partial_hit() {
        let p = precision_at_n(&[0, 0, 1, 1], &[0.9, 0.1, 0.8, 0.2], None).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn explicit_k() {
        let p = precision_at_n(&[1, 0, 0, 0], &[0.9, 0.8, 0.1, 0.0], Some(2)).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn k_clamped_to_len() {
        let p = precision_at_n(&[1, 0], &[0.9, 0.1], Some(10)).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn no_outliers_undefined() {
        assert!(precision_at_n(&[0, 0], &[0.1, 0.2], None).is_err());
    }

    #[test]
    fn zero_k_undefined() {
        assert!(precision_at_n(&[1, 0], &[0.9, 0.1], Some(0)).is_err());
    }

    #[test]
    fn non_finite_scores_rejected() {
        assert!(matches!(
            precision_at_n(&[1, 0], &[f64::NAN, 0.1], None).unwrap_err(),
            Error::NonFinite(_)
        ));
        assert!(precision_recall_at_k(&[1, 0], &[0.9, f64::NEG_INFINITY], 1).is_err());
    }

    #[test]
    fn precision_recall_pair() {
        // 2 outliers; top-1 hits one.
        let (p, r) = precision_recall_at_k(&[1, 1, 0], &[0.9, 0.1, 0.5], 1).unwrap();
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn precision_recall_full_k() {
        let (p, r) = precision_recall_at_k(&[1, 1, 0], &[0.9, 0.1, 0.5], 3).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r, 1.0);
    }
}
