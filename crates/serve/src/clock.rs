//! Time sources for the scoring service.
//!
//! Deadline shedding is inherently wall-clock-dependent, which would make
//! the shed set non-deterministic and untestable. The service therefore
//! reads time only through the [`Clock`] trait: production uses
//! [`SystemClock`]; tests use [`ManualClock`], advanced explicitly, so
//! the set of shed requests becomes a pure function of the submitted
//! arrival trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic millisecond time source the service consults for
/// admission timestamps, deadline checks, and batch-window pacing.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds elapsed since the clock's epoch (monotonic).
    fn now_millis(&self) -> u64;

    /// Blocks the calling thread for roughly `window` — the dispatcher's
    /// batch-assembly pause. Manual clocks make this a no-op; callers
    /// stepping a service by hand pace it themselves.
    fn sleep(&self, window: Duration);
}

/// Wall-clock time relative to the clock's construction instant.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn sleep(&self, window: Duration) {
        std::thread::sleep(window);
    }
}

/// A clock that only moves when told to — the deterministic time source
/// for shed-set and latency tests. `sleep` is a no-op, so a service on a
/// manual clock should be stepped with
/// [`ScoreService::process_once`](crate::ScoreService::process_once)
/// rather than a background dispatcher.
#[derive(Debug, Default)]
pub struct ManualClock {
    millis: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.millis.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }

    fn sleep(&self, _window: Duration) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_millis(), 0);
        clock.sleep(Duration::from_secs(3600));
        assert_eq!(clock.now_millis(), 0);
        clock.advance(250);
        assert_eq!(clock.now_millis(), 250);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_millis();
        clock.sleep(Duration::from_millis(2));
        assert!(clock.now_millis() >= a);
    }
}
