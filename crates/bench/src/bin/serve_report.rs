//! Online-serving report: throughput and latency percentiles for the
//! micro-batching score service under an open-loop load generator.
//!
//! Sweeps (batch window x worker count x injected fault rate) over a
//! fitted heterogeneous pool: each cell fits the pool, starts a
//! [`ScoreService`], fires a fixed open-loop request trace at it (no
//! retry on `Busy` — rejections are *measured*, not hidden), and records
//! the service's own counters and latency percentiles. Results go to
//! `BENCH_serve.json` in the working directory so the serving perf
//! trajectory is tracked across PRs; the header records the git
//! revision, core count, and SIMD lane, so every number says what
//! produced it.
//!
//! Flags: `--quick` shrinks the trace for smoke runs; `--smoke` runs the
//! CI gates and exits non-zero unless (1) the nominal-load cell drops
//! zero requests, (2) its p99 latency is under [`SMOKE_P99_MS`], and
//! (3) survivor scores under injected predict chaos are bit-identical
//! across worker counts on a manual-clock trace.

use std::sync::Arc;
use std::time::{Duration, Instant};
use suod::prelude::*;
use suod_bench::Scale;
use suod_datasets::registry;
use suod_linalg::SimdLane;
use suod_serve::{ManualClock, ScoreOutcome, ScoreService, ServeConfig, SubmitError};

/// CI gate: nominal-load p99 admission-to-response latency ceiling.
/// Generous — the gate exists to catch order-of-magnitude regressions
/// (a stuck dispatcher, an accidental sleep), not scheduler jitter.
const SMOKE_P99_MS: u64 = 500;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Six cheap healthy models; with `chaos` two predict-time saboteurs
/// (one panicking, one NaN-scoring) are appended at the end so the
/// healthy prefix keeps identical derived seeds.
fn pool(chaos: bool) -> Vec<ModelSpec> {
    let mut pool = vec![
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.5,
        },
        ModelSpec::IForest {
            n_estimators: 20,
            max_features: 0.8,
        },
        ModelSpec::Loda {
            n_members: 20,
            n_bins: 10,
        },
        ModelSpec::Pca {
            variance_retained: 0.9,
        },
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
    ];
    if chaos {
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::PanicOnPredict,
            n_neighbors: 5,
        });
        pool.push(ModelSpec::Chaos {
            mode: ChaosMode::NanOnPredict,
            n_neighbors: 5,
        });
    }
    pool
}

fn fit(x: &Matrix, chaos: bool, workers: usize) -> Suod {
    let mut clf = Suod::builder()
        .base_estimators(pool(chaos))
        .min_healthy_fraction(0.5)
        .n_workers(workers)
        .seed(17)
        .build()
        .expect("valid configuration");
    clf.fit(x).expect("fit succeeds");
    clf
}

/// One sweep cell's measurements.
struct Cell {
    wall_s: f64,
    rows_per_s: f64,
    report: suod_serve::ServeReport,
    dropped: u64,
}

/// Open-loop load: `n_requests` requests of `rows_per_request` rows at a
/// fixed inter-arrival gap. `Busy` rejections are counted as dropped and
/// NOT retried — an open-loop generator measures the service as offered
/// load sees it.
fn run_cell(
    x: &Matrix,
    queries: &[Matrix],
    window_ms: u64,
    workers: usize,
    chaos: bool,
    interarrival: Duration,
) -> Cell {
    let clf = fit(x, chaos, workers);
    let config = ServeConfig {
        queue_capacity: 64,
        batch_window: Duration::from_millis(window_ms),
        // Sustained fault rate: the saboteurs must keep faulting, so the
        // budget never quarantines them inside a cell.
        predict_failure_budget: u32::MAX,
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let mut service = ScoreService::new(clf, config).expect("valid serve config");
    service.spawn_dispatcher();
    let service = Arc::new(service);

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(queries.len());
    let mut dropped = 0u64;
    for query in queries {
        match service.submit(query.clone()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Busy { .. }) => dropped += 1,
            Err(e) => panic!("submit failed: {e}"),
        }
        std::thread::sleep(interarrival);
    }
    let mut rows_scored = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            ScoreOutcome::Scored(batch) => rows_scored += batch.combined.len(),
            ScoreOutcome::Shed { .. } => dropped += 1,
            ScoreOutcome::Failed(msg) => panic!("request failed: {msg}"),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let report = service.report();
    Cell {
        wall_s,
        rows_per_s: rows_scored as f64 / wall_s,
        report,
        dropped,
    }
}

/// Deterministic chaos trace on a manual clock: returns every scored
/// request's combined-score bits plus the final active mask, for the
/// cross-worker bit-identity gate.
fn chaos_trace_bits(x: &Matrix, queries: &[Matrix], workers: usize) -> (Vec<Vec<u64>>, Vec<bool>) {
    let config = ServeConfig {
        predict_failure_budget: 3,
        min_healthy_fraction: 0.5,
        ..ServeConfig::default()
    };
    let clock = Arc::new(ManualClock::new());
    let service =
        ScoreService::with_parts(fit(x, true, workers), config, clock, suod_observe::noop())
            .expect("valid serve config");
    let mut tickets = Vec::new();
    for query in queries {
        tickets.push(service.submit(query.clone()).expect("queue has room"));
        service.process_once();
    }
    let bits = tickets
        .into_iter()
        .map(|t| match t.wait() {
            ScoreOutcome::Scored(batch) => batch
                .combined
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            other => panic!("chaos trace request not scored: {other:?}"),
        })
        .collect();
    (bits, service.active_models())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let avx2 = SimdLane::supported() == SimdLane::Avx2;
    let rev = git_rev();

    // The saboteurs' panics are caught at the task boundary; keep the
    // default hook from flooding stderr with backtraces.
    std::panic::set_hook(Box::new(|_| {}));

    let ds = registry::load_scaled("cardio", 17, 0.25).expect("registry analog");
    let rows_per_request = 16usize;
    let n_requests = scale.pick(16usize, 48, 96);
    let n_rows = ds.x.nrows();
    let queries: Vec<Matrix> = (0..n_requests)
        .map(|r| {
            let rows: Vec<Vec<f64>> = (0..rows_per_request)
                .map(|i| ds.x.row((r * rows_per_request + i) % n_rows).to_vec())
                .collect();
            Matrix::from_rows(&rows).expect("rectangular request")
        })
        .collect();

    if args.iter().any(|a| a == "--smoke") {
        println!(
            "serve smoke: {n_requests} requests x {rows_per_request} rows (cores: {host_cores})"
        );
        // Gate 1+2: nominal load (2ms window, 2 workers, no chaos) must
        // drop nothing and answer within the p99 ceiling.
        let cell = run_cell(
            &ds.x,
            &queries,
            2,
            2.min(host_cores),
            false,
            Duration::from_millis(2),
        );
        println!(
            "nominal: {:.3}s wall, {:.0} rows/s, p99 {}ms, dropped {}",
            cell.wall_s, cell.rows_per_s, cell.report.p99_latency_ms, cell.dropped
        );
        if cell.dropped > 0 {
            eprintln!("FAIL: {} requests dropped at nominal load", cell.dropped);
            std::process::exit(1);
        }
        if cell.report.p99_latency_ms > SMOKE_P99_MS {
            eprintln!(
                "FAIL: nominal p99 {}ms exceeds {SMOKE_P99_MS}ms ceiling",
                cell.report.p99_latency_ms
            );
            std::process::exit(1);
        }
        // Gate 3: survivor bit-identity across worker counts while
        // predict chaos is quarantining models mid-trace.
        let reference = chaos_trace_bits(&ds.x, &queries, 1);
        for workers in [2usize, 4] {
            let run = chaos_trace_bits(&ds.x, &queries, workers);
            if run != reference {
                eprintln!("FAIL: chaos survivor scores differ between 1 and {workers} workers");
                std::process::exit(1);
            }
        }
        println!(
            "chaos trace: {} requests bit-identical at 1/2/4 workers, active mask {:?}",
            reference.0.len(),
            reference.1
        );
        println!("OK");
        return;
    }

    println!(
        "Serving report (rev {rev}, host cores: {host_cores}, avx2+fma: {avx2}, \
         {n_requests} requests x {rows_per_request} rows, open loop)"
    );
    let windows: &[u64] = &[0, 2, 5];
    let worker_counts: Vec<usize> = [1usize, 2, 4]
        .iter()
        .copied()
        .filter(|&w| w == 1 || w <= host_cores)
        .collect();
    let mut cells: Vec<String> = Vec::new();
    for &window_ms in windows {
        for &workers in &worker_counts {
            for chaos in [false, true] {
                let cell = run_cell(
                    &ds.x,
                    &queries,
                    window_ms,
                    workers,
                    chaos,
                    Duration::from_millis(1),
                );
                let r = &cell.report;
                println!(
                    "window {window_ms}ms workers {workers} chaos {}  {:.3}s wall  \
                     {:>7.0} rows/s  p50 {}ms  p99 {}ms  dropped {}  faults {}",
                    u8::from(chaos),
                    cell.wall_s,
                    cell.rows_per_s,
                    r.p50_latency_ms,
                    r.p99_latency_ms,
                    cell.dropped,
                    r.predict_faults,
                );
                cells.push(format!(
                    "\"window{window_ms}ms_workers{workers}_chaos{}\": {{\
                     \"wall_s\": {:.6}, \"rows_per_s\": {:.1}, \
                     \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
                     \"requests_scored\": {}, \"batches\": {}, \
                     \"p50_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \
                     \"dropped\": {}, \"predict_faults\": {}}}",
                    u8::from(chaos),
                    cell.wall_s,
                    cell.rows_per_s,
                    r.admitted,
                    r.rejected,
                    r.shed,
                    r.requests_scored,
                    r.batches,
                    r.p50_latency_ms,
                    r.p99_latency_ms,
                    r.max_latency_ms,
                    cell.dropped,
                    r.predict_faults,
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"git_rev\": \"{rev}\",\n  \"host_cores\": {host_cores},\n  \
         \"avx2_fma_supported\": {avx2},\n  \"lane_detected\": \"{}\",\n  \
         \"scale\": \"{scale:?}\",\n  \"dataset\": \"cardio(x0.25)\",\n  \
         \"rows_per_request\": {rows_per_request},\n  \"n_requests\": {n_requests},\n  \
         \"cells\": {{\n    {}\n  }}\n}}\n",
        SimdLane::detect(),
        cells.join(",\n    "),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
