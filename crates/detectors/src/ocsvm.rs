//! One-Class Support Vector Machine (Schölkopf et al. 2001).
//!
//! Solves the dual problem
//!
//! ```text
//! min_a  1/2 a' Q a    s.t.  0 <= a_i <= 1/(nu * n),  sum a_i = 1
//! ```
//!
//! with a Sequential Minimal Optimization (SMO) loop using maximal-
//! violating-pair working-set selection, the same scheme as libsvm.
//! Kernel columns are computed on demand (no `n x n` kernel matrix), so
//! memory stays `O(n)` at the cost of `O(n d)` work per SMO iteration —
//! OCSVM is one of the "costly" families SUOD approximates away at
//! prediction time, and this implementation honestly reproduces that cost
//! profile.
//!
//! The decision function is `f(x) = sum_i a_i k(x_i, x) - rho`; training
//! points with `f < 0` are the fraction `nu` of margin violations.
//! Outlyingness scores are `-f(x)` (larger = more outlying).

use crate::{check_dims, Detector, Error, Result};
use suod_linalg::{matrix::dot, Matrix};

/// Kernel functions for [`OcsvmDetector`], matching the paper's grid
/// (`linear`, `poly`, `rbf`, `sigmoid`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(x, y) = <x, y>`.
    Linear,
    /// `k(x, y) = (gamma <x, y> + coef0)^degree`.
    Poly {
        /// Kernel coefficient.
        gamma: f64,
        /// Independent term.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
    /// `k(x, y) = exp(-gamma |x - y|^2)`.
    Rbf {
        /// Kernel coefficient.
        gamma: f64,
    },
    /// `k(x, y) = tanh(gamma <x, y> + coef0)`.
    Sigmoid {
        /// Kernel coefficient.
        gamma: f64,
        /// Independent term.
        coef0: f64,
    },
}

impl Kernel {
    /// Parses a PyOD-style kernel name with the default parameters used in
    /// the paper's grid (`gamma = 1/d` is substituted at fit time when the
    /// stored gamma is 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "linear" => Ok(Kernel::Linear),
            "poly" => Ok(Kernel::Poly {
                gamma: 0.0,
                coef0: 1.0,
                degree: 3,
            }),
            "rbf" => Ok(Kernel::Rbf { gamma: 0.0 }),
            "sigmoid" => Ok(Kernel::Sigmoid {
                gamma: 0.0,
                coef0: 0.0,
            }),
            other => Err(Error::InvalidParameter(format!("unknown kernel `{other}`"))),
        }
    }

    /// Resolves `gamma = 0` placeholders to `1/d`.
    #[allow(clippy::redundant_guards)] // f64 literal patterns are deprecated
    fn resolved(self, d: usize) -> Self {
        let auto = 1.0 / d.max(1) as f64;
        match self {
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } if gamma == 0.0 => Kernel::Poly {
                gamma: auto,
                coef0,
                degree,
            },
            Kernel::Rbf { gamma } if gamma == 0.0 => Kernel::Rbf { gamma: auto },
            Kernel::Sigmoid { gamma, coef0 } if gamma == 0.0 => {
                Kernel::Sigmoid { gamma: auto, coef0 }
            }
            other => other,
        }
    }

    /// Evaluates the kernel on two rows.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Sigmoid { gamma, coef0 } => (gamma * dot(a, b) + coef0).tanh(),
        }
    }
}

/// One-class SVM detector.
///
/// # Example
///
/// ```
/// use suod_detectors::{Detector, Kernel, OcsvmDetector};
/// use suod_linalg::Matrix;
///
/// # fn main() -> Result<(), suod_detectors::Error> {
/// let mut rows: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1])
///     .collect();
/// rows.push(vec![9.0, 9.0]);
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut det = OcsvmDetector::new(0.1, Kernel::Rbf { gamma: 0.0 })?;
/// det.fit(&x)?;
/// let s = det.training_scores()?;
/// assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OcsvmDetector {
    nu: f64,
    kernel: Kernel,
    max_iter: usize,
    tol: f64,
    // Fitted state.
    support_vectors: Option<Matrix>,
    alphas: Vec<f64>,
    rho: f64,
    train_scores: Vec<f64>,
}

impl OcsvmDetector {
    /// Creates an OCSVM with margin parameter `nu` (the asymptotic
    /// fraction of training points treated as outliers) and the given
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `nu` is outside `(0, 1)`.
    pub fn new(nu: f64, kernel: Kernel) -> Result<Self> {
        if !(nu > 0.0 && nu < 1.0) {
            return Err(Error::InvalidParameter(format!(
                "nu must be in (0, 1), got {nu}"
            )));
        }
        Ok(Self {
            nu,
            kernel,
            max_iter: 20_000,
            tol: 1e-4,
            support_vectors: None,
            alphas: Vec::new(),
            rho: 0.0,
            train_scores: Vec::new(),
        })
    }

    /// Overrides the SMO iteration cap (default 20,000).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// The margin parameter.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// The kernel (with `gamma` still unresolved if constructed with 0).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The offset `rho` of the fitted decision function.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`.
    pub fn rho(&self) -> Result<f64> {
        if self.support_vectors.is_none() {
            return Err(Error::NotFitted("OcsvmDetector"));
        }
        Ok(self.rho)
    }

    /// Kernel column `Q[., i]` against all training rows.
    fn kernel_column(kernel: &Kernel, x: &Matrix, i: usize) -> Vec<f64> {
        let xi = x.row(i);
        (0..x.nrows()).map(|j| kernel.eval(x.row(j), xi)).collect()
    }

    /// Decision value `sum_j a_j k(x_j, q) - rho` for a query row.
    fn decision_value(&self, q: &[f64]) -> f64 {
        let sv = self.support_vectors.as_ref().expect("fitted");
        let kernel = self.kernel.resolved(sv.ncols());
        let mut acc = 0.0;
        for (j, &a) in self.alphas.iter().enumerate() {
            if a > 0.0 {
                acc += a * kernel.eval(sv.row(j), q);
            }
        }
        acc - self.rho
    }
}

impl Detector for OcsvmDetector {
    fn fit(&mut self, x: &Matrix) -> Result<()> {
        let n = x.nrows();
        if n < 2 {
            return Err(Error::InsufficientData {
                needed: "at least 2 samples".into(),
                got: n,
            });
        }
        let kernel = self.kernel.resolved(x.ncols());
        let c = 1.0 / (self.nu * n as f64);

        // libsvm-style feasible start: the first floor(nu*n) points get
        // alpha = C, one fractional remainder, rest zero.
        let n_full = (self.nu * n as f64).floor() as usize;
        let mut alpha = vec![0.0; n];
        for a in alpha.iter_mut().take(n_full.min(n)) {
            *a = c;
        }
        if n_full < n {
            alpha[n_full] = 1.0 - n_full as f64 * c;
        }

        // Gradient g = Q alpha, built from the nonzero alphas.
        let mut g = vec![0.0; n];
        for (i, &a) in alpha.iter().enumerate() {
            if a > 0.0 {
                let col = Self::kernel_column(&kernel, x, i);
                for (gj, &q) in g.iter_mut().zip(&col) {
                    *gj += a * q;
                }
            }
        }
        let diag: Vec<f64> = (0..n).map(|i| kernel.eval(x.row(i), x.row(i))).collect();

        // SMO with maximal-violating-pair selection.
        for _iter in 0..self.max_iter {
            // i: can increase (alpha_i < C), smallest gradient.
            // j: can decrease (alpha_j > 0), largest gradient.
            let mut i_best: Option<usize> = None;
            let mut j_best: Option<usize> = None;
            for t in 0..n {
                if alpha[t] < c - 1e-15 && i_best.is_none_or(|b| g[t] < g[b]) {
                    i_best = Some(t);
                }
                if alpha[t] > 1e-15 && j_best.is_none_or(|b| g[t] > g[b]) {
                    j_best = Some(t);
                }
            }
            let (Some(i), Some(j)) = (i_best, j_best) else {
                break;
            };
            if g[j] - g[i] < self.tol {
                break; // KKT satisfied.
            }

            let col_i = Self::kernel_column(&kernel, x, i);
            let col_j = Self::kernel_column(&kernel, x, j);
            // Curvature; guarded for non-PSD kernels (sigmoid).
            let eta = (diag[i] + diag[j] - 2.0 * col_i[j]).max(1e-12);
            let mut t_step = (g[j] - g[i]) / eta;
            t_step = t_step.min(c - alpha[i]).min(alpha[j]);
            if t_step <= 0.0 {
                break;
            }
            alpha[i] += t_step;
            alpha[j] -= t_step;
            for k in 0..n {
                g[k] += t_step * (col_i[k] - col_j[k]);
            }
        }

        // rho: mean gradient over free support vectors, else midpoint of
        // the KKT interval.
        let free: Vec<f64> = (0..n)
            .filter(|&t| alpha[t] > 1e-12 && alpha[t] < c - 1e-12)
            .map(|t| g[t])
            .collect();
        self.rho = if !free.is_empty() {
            suod_linalg::stats::mean(&free)
        } else {
            let ub = (0..n)
                .filter(|&t| alpha[t] <= 1e-12)
                .map(|t| g[t])
                .fold(f64::INFINITY, f64::min);
            let lb = (0..n)
                .filter(|&t| alpha[t] >= c - 1e-12)
                .map(|t| g[t])
                .fold(f64::NEG_INFINITY, f64::max);
            match (lb.is_finite(), ub.is_finite()) {
                (true, true) => 0.5 * (lb + ub),
                (true, false) => lb,
                (false, true) => ub,
                (false, false) => 0.0,
            }
        };

        // A non-PSD kernel on extreme inputs can blow the gradient up to
        // inf/NaN without tripping the KKT break: surface that as a typed
        // non-convergence instead of publishing a garbage model.
        if !self.rho.is_finite() || g.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonConvergence(
                "SMO produced non-finite gradient/offset (kernel overflow?)".into(),
            ));
        }

        // Training scores: f(x_i) = g_i - rho; outlyingness = rho - g_i.
        self.train_scores = g.iter().map(|&gi| self.rho - gi).collect();
        self.alphas = alpha;
        self.support_vectors = Some(x.clone());
        Ok(())
    }

    fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        let sv = self
            .support_vectors
            .as_ref()
            .ok_or(Error::NotFitted("OcsvmDetector"))?;
        check_dims(sv.ncols(), x)?;
        Ok(x.rows_iter().map(|row| -self.decision_value(row)).collect())
    }

    fn training_scores(&self) -> Result<Vec<f64>> {
        if self.support_vectors.is_none() {
            return Err(Error::NotFitted("OcsvmDetector"));
        }
        Ok(self.train_scores.clone())
    }

    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn is_fitted(&self) -> bool {
        self.support_vectors.is_some()
    }

    fn snapshot_write(&self, w: &mut suod_linalg::SnapshotWriter) -> Result<()> {
        w.write_f64(self.nu);
        match self.kernel {
            Kernel::Linear => w.write_u8(0),
            Kernel::Poly {
                gamma,
                coef0,
                degree,
            } => {
                w.write_u8(1);
                w.write_f64(gamma);
                w.write_f64(coef0);
                w.write_u64(u64::from(degree));
            }
            Kernel::Rbf { gamma } => {
                w.write_u8(2);
                w.write_f64(gamma);
            }
            Kernel::Sigmoid { gamma, coef0 } => {
                w.write_u8(3);
                w.write_f64(gamma);
                w.write_f64(coef0);
            }
        }
        w.write_usize(self.max_iter);
        w.write_f64(self.tol);
        match &self.support_vectors {
            Some(sv) => {
                w.write_bool(true);
                w.write_matrix(sv);
            }
            None => w.write_bool(false),
        }
        w.write_f64s(&self.alphas);
        w.write_f64(self.rho);
        w.write_f64s(&self.train_scores);
        Ok(())
    }
}

impl OcsvmDetector {
    /// Reads a detector written by [`Detector::snapshot_write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or malformed state.
    pub fn snapshot_read(
        r: &mut suod_linalg::SnapshotReader<'_>,
        _n_threads: usize,
    ) -> Result<Self> {
        let nu = r.read_f64()?;
        let kernel = match r.read_u8()? {
            0 => Kernel::Linear,
            1 => Kernel::Poly {
                gamma: r.read_f64()?,
                coef0: r.read_f64()?,
                degree: u32::try_from(r.read_u64()?).map_err(|_| {
                    Error::InvalidParameter("snapshot: poly degree overflows u32".into())
                })?,
            },
            2 => Kernel::Rbf {
                gamma: r.read_f64()?,
            },
            3 => Kernel::Sigmoid {
                gamma: r.read_f64()?,
                coef0: r.read_f64()?,
            },
            other => {
                return Err(Error::InvalidParameter(format!(
                    "snapshot: unknown ocsvm kernel tag {other}"
                )))
            }
        };
        let max_iter = r.read_usize()?;
        let tol = r.read_f64()?;
        let support_vectors = if r.read_bool()? {
            Some(r.read_matrix()?)
        } else {
            None
        };
        Ok(Self {
            nu,
            kernel,
            max_iter,
            tol,
            support_vectors,
            alphas: r.read_f64s()?,
            rho: r.read_f64()?,
            train_scores: r.read_f64s()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1])
            .collect();
        rows.push(vec![9.0, 9.0]);
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn rbf_flags_far_point() {
        let mut det = OcsvmDetector::new(0.1, Kernel::Rbf { gamma: 0.0 }).unwrap();
        det.fit(&blob_with_outlier()).unwrap();
        let s = det.training_scores().unwrap();
        assert_eq!(suod_linalg::rank::argsort_desc(&s)[0], 40);
    }

    #[test]
    fn decision_function_orders_queries() {
        let mut det = OcsvmDetector::new(0.2, Kernel::Rbf { gamma: 0.5 }).unwrap();
        det.fit(&blob_with_outlier()).unwrap();
        let q = Matrix::from_rows(&[vec![0.35, 0.2], vec![15.0, -3.0]]).unwrap();
        let s = det.decision_function(&q).unwrap();
        assert!(s[1] > s[0]);
    }

    #[test]
    fn alpha_constraints_hold() {
        let x = blob_with_outlier();
        let n = x.nrows();
        let nu = 0.3;
        let mut det = OcsvmDetector::new(nu, Kernel::Rbf { gamma: 1.0 }).unwrap();
        det.fit(&x).unwrap();
        let c = 1.0 / (nu * n as f64);
        let sum: f64 = det.alphas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum(alpha) = {sum}");
        assert!(det
            .alphas
            .iter()
            .all(|&a| (-1e-12..=c + 1e-12).contains(&a)));
    }

    #[test]
    fn nu_controls_margin_violations() {
        // Roughly a nu-fraction of training points should have f < 0
        // (score > 0), per the nu-property.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..100 {
            rows.push(vec![((i % 10) as f64) * 0.3, ((i / 10) as f64) * 0.3]);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let nu = 0.3;
        let mut det = OcsvmDetector::new(nu, Kernel::Rbf { gamma: 1.0 }).unwrap();
        det.fit(&x).unwrap();
        let s = det.training_scores().unwrap();
        let frac = s.iter().filter(|&&v| v > 1e-9).count() as f64 / s.len() as f64;
        assert!(
            (frac - nu).abs() < 0.2,
            "violation fraction {frac} too far from nu={nu}"
        );
    }

    #[test]
    fn all_kernels_run() {
        let x = blob_with_outlier();
        for name in ["linear", "poly", "rbf", "sigmoid"] {
            let kernel = Kernel::parse(name).unwrap();
            let mut det = OcsvmDetector::new(0.2, kernel).unwrap();
            det.fit(&x).unwrap();
            let s = det.training_scores().unwrap();
            assert!(s.iter().all(|v| v.is_finite()), "kernel {name}");
            let q = det.decision_function(&x).unwrap();
            assert_eq!(q.len(), x.nrows(), "kernel {name}");
        }
    }

    #[test]
    fn kernel_eval_reference_values() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Kernel::Linear.eval(&a, &b), 0.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&a, &b) - (-1.0f64).exp()).abs() < 1e-12);
        let poly = Kernel::Poly {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        assert_eq!(poly.eval(&a, &a), 4.0);
        let sig = Kernel::Sigmoid {
            gamma: 1.0,
            coef0: 0.0,
        };
        assert!((sig.eval(&a, &a) - 1f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn training_scores_match_decision_function() {
        // For a converged solve, training_scores ~ -f(x_i) recomputed.
        let x = blob_with_outlier();
        let mut det = OcsvmDetector::new(0.2, Kernel::Rbf { gamma: 1.0 }).unwrap();
        det.fit(&x).unwrap();
        let from_fit = det.training_scores().unwrap();
        let recomputed = det.decision_function(&x).unwrap();
        for (a, b) in from_fit.iter().zip(&recomputed) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn overflowing_kernel_reports_non_convergence() {
        // Poly kernel on astronomically scaled data overflows to inf in
        // the very first gradient build; the fit must surface a typed
        // NonConvergence instead of a silently garbage model.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![1e200 * (i + 1) as f64, -1e200])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let kernel = Kernel::Poly {
            gamma: 1.0,
            coef0: 0.0,
            degree: 3,
        };
        let mut det = OcsvmDetector::new(0.5, kernel).unwrap().with_max_iter(50);
        assert!(matches!(det.fit(&x), Err(Error::NonConvergence(_))));
        assert!(!det.is_fitted());
    }

    #[test]
    fn validates_inputs() {
        assert!(OcsvmDetector::new(0.0, Kernel::Linear).is_err());
        assert!(OcsvmDetector::new(1.0, Kernel::Linear).is_err());
        assert!(Kernel::parse("laplacian").is_err());
        let mut det = OcsvmDetector::new(0.5, Kernel::Linear).unwrap();
        assert!(det.fit(&Matrix::zeros(1, 2)).is_err());
        assert!(det.decision_function(&Matrix::zeros(1, 2)).is_err());
        det.fit(&blob_with_outlier()).unwrap();
        assert!(det.decision_function(&Matrix::zeros(1, 3)).is_err());
    }
}
