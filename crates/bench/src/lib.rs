//! Shared infrastructure for the SUOD reproduction harness.
//!
//! Each paper table/figure has a `bin` target that prints paper-style
//! rows and writes CSV under `target/experiments/`. The binaries share
//! the helpers here: experiment-scale flags, CSV emission, timing, and a
//! tiny evaluation struct.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — projection methods × detectors × datasets |
//! | `fig3` | Figure 3 — decision surfaces, detectors vs approximators |
//! | `table2` | Table 2 + Table C.1 — Orig vs Appr ROC / P@N |
//! | `table3` | Table 3 — Generic vs BPS training makespans |
//! | `table4` | Table 4 — full-system time + accuracy |
//! | `cost_predictor_cv` | §3.5 — cost-predictor Spearman CV |
//! | `iqvia_case` | §4.5 — claims deployment case |
//! | `ablation` | extension — per-module ablation |

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Experiment scale, parsed from CLI args.
///
/// * default — CI-friendly sizes (minutes on one core);
/// * `--quick` — smoke-test sizes (seconds);
/// * `--paper-scale` — the paper's full sizes (hours on one core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke test.
    Quick,
    /// Default reduced scale.
    Default,
    /// The paper's full experiment sizes.
    Paper,
}

impl Scale {
    /// Parses the scale from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Default
        }
    }

    /// Picks one of three values by scale.
    pub fn pick<T>(&self, quick: T, default: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}

/// Where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// A CSV sink: header written once, rows appended.
pub struct CsvSink {
    path: PathBuf,
    file: fs::File,
}

impl CsvSink {
    /// Creates (truncates) `target/experiments/<name>.csv` with a header.
    pub fn create(name: &str, header: &str) -> Self {
        let path = experiments_dir().join(format!("{name}.csv"));
        let mut file = fs::File::create(&path).expect("create csv");
        writeln!(file, "{header}").expect("write header");
        Self { path, file }
    }

    /// Appends one row.
    pub fn row(&mut self, row: &str) {
        writeln!(self.file, "{row}").expect("write row");
    }

    /// The sink's path (for the final summary line).
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats a fraction as a percentage string with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Mean of a slice (0 for empty) — tiny local helper for trial averaging.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn csv_sink_writes() {
        let mut sink = CsvSink::create("unit_test_sink", "a,b");
        sink.row("1,2");
        let content = std::fs::read_to_string(sink.path()).unwrap();
        assert!(content.starts_with("a,b\n1,2"));
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn pct_and_mean() {
        assert_eq!(pct(0.5), "50.0");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
