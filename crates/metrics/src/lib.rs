#![warn(missing_docs)]

//! Evaluation metrics and ensemble score combination for the SUOD
//! reproduction.
//!
//! Every table in the paper reports ROC-AUC and P@N (precision at the true
//! number of outliers); the balanced-scheduling module is validated by
//! Spearman's rank correlation between predicted and true model costs; and
//! the full-system evaluation (Table 4) combines base-model scores with the
//! average / maximum-of-average schemes of Aggarwal & Sathe.
//!
//! # Example
//!
//! ```
//! use suod_metrics::{roc_auc, precision_at_n};
//!
//! # fn main() -> Result<(), suod_metrics::Error> {
//! let labels = [0, 0, 1, 1];
//! let scores = [0.1, 0.4, 0.35, 0.8];
//! let auc = roc_auc(&labels, &scores)?;
//! assert!((auc - 0.75).abs() < 1e-12);
//! let p = precision_at_n(&labels, &scores, None)?;
//! assert!((p - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod combination;
pub mod correlation;
pub mod precision;
pub mod roc;

pub use combination::{aom, average, maximization, moa, Combiner};
pub use correlation::{kendall_tau, pearson, spearman};
pub use precision::{precision_at_n, precision_recall_at_k};
pub use roc::roc_auc;

use std::fmt;

/// Errors produced when metric inputs are malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Label and score vectors have different lengths.
    LengthMismatch {
        /// Length of the label vector.
        labels: usize,
        /// Length of the score vector.
        scores: usize,
    },
    /// The metric is undefined for the given input (e.g. single-class ROC).
    Undefined(&'static str),
    /// Inputs were empty where data is required.
    Empty(&'static str),
    /// Scores contained NaN or infinite values where a total order (or a
    /// meaningful standardization) is required.
    NonFinite(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch { labels, scores } => write!(
                f,
                "labels ({labels}) and scores ({scores}) must have equal length"
            ),
            Error::Undefined(what) => write!(f, "metric undefined: {what}"),
            Error::Empty(what) => write!(f, "{what} received empty input"),
            Error::NonFinite(what) => {
                write!(f, "{what} received non-finite (NaN/inf) scores")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

pub(crate) fn check_lengths(labels: usize, scores: usize) -> Result<()> {
    if labels != scores {
        return Err(Error::LengthMismatch { labels, scores });
    }
    Ok(())
}
