//! Ablation study (extension beyond the paper's tables): each SUOD
//! module toggled independently on the same pool and datasets.
//!
//! The paper argues the three modules are "independent but complementary"
//! (§3.2); this harness quantifies each module's isolated contribution to
//! fit time, prediction time, and accuracy, plus the full stack.
//!
//! Flags: `--quick`, `--paper-scale`.

use suod::prelude::*;
use suod_bench::{CsvSink, Scale};
use suod_datasets::{registry, train_test_split};
use suod_metrics::roc_auc;
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, CostModel, DatasetMeta,
};

const SETTINGS: &[(&str, bool, bool, bool)] = &[
    ("none", false, false, false),
    ("rp", true, false, false),
    ("psa", false, true, false),
    ("bps", false, false, true),
    ("all", true, true, true),
];

fn pool(n_train: usize) -> Vec<ModelSpec> {
    let cap = (n_train / 3).max(2);
    vec![
        ModelSpec::Knn {
            n_neighbors: 10.min(cap),
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 25.min(cap),
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 15.min(cap),
            metric: Metric::Euclidean,
        },
        ModelSpec::Abod {
            n_neighbors: 10.min(cap),
        },
        ModelSpec::Cblof { n_clusters: 4 },
        ModelSpec::FeatureBagging { n_estimators: 8 },
        ModelSpec::Hbos {
            n_bins: 20,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 50,
            max_features: 0.8,
        },
    ]
}

fn main() {
    let scale = Scale::from_args();
    let data_scale = scale.pick(0.05, 0.25, 1.0);
    let t = 4usize;
    let mut csv = CsvSink::create(
        "ablation",
        "dataset,setting,fit_seq_s,pred_seq_s,fit_makespan_s,roc",
    );

    println!("Ablation: per-module contribution ({t} simulated workers)");
    for ds_name in ["cardio", "mnist"] {
        let ds = registry::load_scaled(ds_name, 31, data_scale).expect("registry dataset");
        let split = train_test_split(&ds, 0.4, 31).expect("valid split");
        let meta = DatasetMeta::extract(&split.x_train);
        let pool = pool(split.x_train.nrows());
        println!(
            "\n== {ds_name} ({} train rows, {} features) ==",
            split.x_train.nrows(),
            ds.n_features()
        );
        println!(
            "{:<6} {:>10} {:>10} {:>14} {:>7}",
            "mods", "fit seq(s)", "pred seq(s)", "fit mkspan(s)", "ROC"
        );

        for &(name, rp, psa, bps) in SETTINGS {
            let mut clf = Suod::builder()
                .base_estimators(pool.clone())
                .with_projection(rp)
                .with_approximation(psa)
                .with_bps(bps)
                .n_workers(1)
                .seed(31)
                .build()
                .expect("valid config");
            let fit_start = std::time::Instant::now();
            clf.fit(&split.x_train).expect("pool fit");
            let fit_seq = fit_start.elapsed().as_secs_f64();

            let (scores, pred_report) = clf
                .decision_function_observed(&split.x_test, &suod::observe::noop())
                .expect("scoring fitted pool");
            let pred_times = pred_report.model_times;
            let pred_seq: f64 = pred_times.iter().map(|d| d.as_secs_f64()).sum();

            let fit_costs: Vec<f64> = clf
                .diagnostics()
                .expect("fitted")
                .fit_times()
                .iter()
                .map(|d| d.as_secs_f64().max(1e-9))
                .collect();
            let assignment = if bps {
                let tasks: Vec<_> = pool.iter().map(|s| s.task_descriptor()).collect();
                let predicted = AnalyticCostModel::new().predict_costs(&tasks, &meta);
                bps_schedule(&predicted, t, 1.0).expect("finite costs")
            } else {
                generic_schedule(pool.len(), t).expect("m,t >= 1")
            };
            let mkspan = simulate_makespan(&fit_costs, &assignment)
                .expect("matching lengths")
                .makespan;

            let combined = suod_metrics::average(&scores).expect("non-empty");
            let roc = roc_auc(&split.y_test, &combined).unwrap_or(0.5);
            println!("{name:<6} {fit_seq:>10.3} {pred_seq:>10.3} {mkspan:>14.3} {roc:>7.3}");
            csv.row(&format!(
                "{ds_name},{name},{fit_seq:.6},{pred_seq:.6},{mkspan:.6},{roc:.4}"
            ));
        }
    }
    println!("\nwrote {}", csv.path().display());
    println!("(expected: rp cuts fit seq on wide data, psa cuts pred seq, bps cuts");
    println!(" the multi-worker makespan; `all` combines the three wins.)");
}
