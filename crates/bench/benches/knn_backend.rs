//! Criterion micro-benchmarks: KD-tree vs brute-force kNN backends.
//!
//! Design-choice evidence for the automatic backend switch in
//! `suod_linalg::KnnIndex`: the KD-tree wins decisively at low
//! dimensionality and loses its edge as `d` grows (the switch threshold
//! is d <= 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use suod_linalg::{DistanceMetric, KnnIndex, Matrix};

fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(-10.0..10.0)).collect();
    Matrix::from_vec(n, d, data).expect("sized buffer")
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_query_n4000_k10");
    group.sample_size(20);
    for d in [3usize, 8, 15] {
        let pts = random_points(4000, d, 7);
        let queries = random_points(50, d, 8);
        let brute = KnnIndex::build_brute_force(&pts, DistanceMetric::Euclidean).expect("rows");
        let tree = KnnIndex::build(&pts, DistanceMetric::Euclidean).expect("rows");
        assert!(tree.uses_kdtree());
        group.bench_with_input(BenchmarkId::new("brute", d), &d, |b, _| {
            b.iter(|| {
                for q in 0..queries.nrows() {
                    black_box(brute.query(queries.row(q), 10));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("kdtree", d), &d, |b, _| {
            b.iter(|| {
                for q in 0..queries.nrows() {
                    black_box(tree.query(queries.row(q), 10));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
