//! Worker-count determinism: the parallel execution layer must never
//! change a number.
//!
//! The work-stealing executor races workers against each other and the
//! prediction path splits scoring into (model x row-chunk) tasks, yet
//! both merge results by task index and every kernel keeps a fixed
//! per-element evaluation order — so fitting and predicting the same
//! seeded dataset under any worker count must produce **bit-identical**
//! score matrices. This is the contract that lets the benchmarks compare
//! schedulers on speed alone.

use suod::prelude::*;
use suod_datasets::registry;
use suod_linalg::Matrix;

fn pool() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn {
            n_neighbors: 5,
            method: KnnMethod::Largest,
        },
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Mean,
        },
        ModelSpec::Lof {
            n_neighbors: 8,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 12,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 15,
            max_features: 0.8,
        },
        ModelSpec::Abod { n_neighbors: 6 },
    ]
}

fn fit_and_score(n_workers: usize, x: &Matrix, queries: &Matrix) -> (Matrix, Matrix, Vec<i32>) {
    let mut model = Suod::builder()
        .base_estimators(pool())
        .n_workers(n_workers)
        .seed(42)
        .build()
        .expect("valid config");
    model.fit(x).expect("fit succeeds");
    let train_scores = model.training_scores().expect("fitted");
    let query_scores = model.decision_function(queries).expect("fitted");
    let labels = model.predict(queries).expect("fitted");
    (train_scores, query_scores, labels)
}

#[test]
fn score_matrices_bit_identical_across_worker_counts() {
    let ds = registry::load_scaled("cardio", 11, 0.3).expect("registry dataset");
    // Queries larger than one prediction row-chunk would be ideal, but
    // even below the chunk width the (model x chunk) merge is exercised;
    // reuse training rows plus a shifted copy for a distinct query set.
    let mut shifted = ds.x.clone();
    for v in shifted.as_mut_slice() {
        *v += 0.25;
    }
    let queries = ds.x.vstack(&shifted).expect("same width");

    let (train_1, query_1, labels_1) = fit_and_score(1, &ds.x, &queries);
    for workers in [2usize, 8] {
        let (train_w, query_w, labels_w) = fit_and_score(workers, &ds.x, &queries);
        assert_eq!(
            train_1.as_slice(),
            train_w.as_slice(),
            "training score matrix differs at n_workers={workers}"
        );
        assert_eq!(
            query_1.as_slice(),
            query_w.as_slice(),
            "prediction score matrix differs at n_workers={workers}"
        );
        assert_eq!(labels_1, labels_w, "labels differ at n_workers={workers}");
    }
}

#[test]
fn repeated_predictions_reuse_pool_and_stay_identical() {
    let ds = registry::load_scaled("cardio", 13, 0.2).expect("registry dataset");
    let mut model = Suod::builder()
        .base_estimators(pool())
        .n_workers(4)
        .seed(3)
        .build()
        .expect("valid config");
    model.fit(&ds.x).expect("fit succeeds");
    let report = model
        .diagnostics()
        .expect("fit emits telemetry")
        .execution()
        .clone();
    assert_eq!(report.task_times.len(), pool().len());
    assert_eq!(report.worker_busy.len(), 4);

    // The persistent pool serves many predict calls; every call must
    // return the same bits.
    let first = model.decision_function(&ds.x).expect("fitted");
    for _ in 0..5 {
        let again = model.decision_function(&ds.x).expect("fitted");
        assert_eq!(first.as_slice(), again.as_slice());
    }
}
