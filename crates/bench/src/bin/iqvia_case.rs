//! §4.5 reproduction: fraudulent medical claim analysis (IQVIA case).
//!
//! The paper deploys SUOD on a proprietary 123,720 x 35 claims dataset
//! (15.38 % fraud), 60/40 split, 10 workers, and reports: fit time
//! 6232.5 s → 4202.3 s (−32.6 %), predict time 3723.5 s → 2814.9 s
//! (−24.4 %), with ROC +3.59 % and P@N +7.46 %.
//!
//! This binary runs the same protocol on the synthetic claims generator
//! (DESIGN.md §4, substitution 3): baseline (no modules, generic
//! scheduling) vs SUOD (all modules, BPS), with 10-worker wall-clocks
//! simulated from measured per-model costs.
//!
//! Flags: `--quick`, `--paper-scale` (full 123,720 claims — slow).

use suod::prelude::*;
use suod_bench::{CsvSink, Scale};
use suod_datasets::claims::{generate_claims, ClaimsConfig, PAPER_FRAUD_RATE, PAPER_N_CLAIMS};
use suod_datasets::train_test_split;
use suod_metrics::{precision_at_n, roc_auc};
use suod_scheduler::{
    bps_schedule, generic_schedule, simulate_makespan, AnalyticCostModel, CostModel, DatasetMeta,
};

const WORKERS: usize = 10;

/// The deployed pool: a screening ensemble of ~32 heterogeneous models,
/// several per family with varied hyperparameters (the paper describes "a
/// group of selected detection models in PyOD" combined by averaging).
/// Family-grouped ordering — the realistic layout generic scheduling
/// chokes on.
fn pool(n_train: usize) -> Vec<ModelSpec> {
    let cap = (n_train / 4).max(2);
    let mut pool = Vec::new();
    for k in [10usize, 20, 30, 40] {
        pool.push(ModelSpec::Knn {
            n_neighbors: k.min(cap),
            method: KnnMethod::Largest,
        });
    }
    for k in [20usize, 40] {
        pool.push(ModelSpec::Knn {
            n_neighbors: k.min(cap),
            method: KnnMethod::Mean,
        });
    }
    for k in [20usize, 35, 50] {
        pool.push(ModelSpec::Lof {
            n_neighbors: k.min(cap),
            metric: Metric::Euclidean,
        });
    }
    for k in [30usize, 50] {
        pool.push(ModelSpec::Lof {
            n_neighbors: k.min(cap),
            metric: Metric::Manhattan,
        });
    }
    for k in [10usize, 15, 20] {
        pool.push(ModelSpec::Abod {
            n_neighbors: k.min(cap),
        });
    }
    for c in [4usize, 8, 12] {
        pool.push(ModelSpec::Cblof { n_clusters: c });
    }
    for (t, f) in [(50usize, 0.5f64), (100, 0.8), (150, 0.6), (200, 0.9)] {
        pool.push(ModelSpec::IForest {
            n_estimators: t,
            max_features: f,
        });
    }
    for (b, tol) in [(15usize, 0.1f64), (25, 0.2), (50, 0.4), (75, 0.3)] {
        pool.push(ModelSpec::Hbos {
            n_bins: b,
            tolerance: tol,
        });
    }
    for t in [5usize, 10] {
        pool.push(ModelSpec::FeatureBagging { n_estimators: t });
    }
    for nu in [0.2f64, 0.5] {
        pool.push(ModelSpec::Ocsvm {
            nu,
            kernel: Kernel::Rbf { gamma: 0.0 },
        });
    }
    pool
}

struct Outcome {
    fit_makespan: f64,
    pred_makespan: f64,
    roc: f64,
    pan: f64,
}

fn run(full: bool, split: &suod_datasets::TrainTestSplit, seed: u64) -> Outcome {
    let pool = pool(split.x_train.nrows());
    let meta = DatasetMeta::extract(&split.x_train);
    let mut clf = Suod::builder()
        .base_estimators(pool.clone())
        .with_projection(full)
        .with_approximation(full)
        .with_bps(full)
        .n_workers(1) // measure sequentially; simulate 10 workers below
        .contamination(PAPER_FRAUD_RATE)
        .seed(seed)
        .build()
        .expect("valid config");
    clf.fit(&split.x_train).expect("claims fit");
    let fit_costs: Vec<f64> = clf
        .diagnostics()
        .expect("fitted")
        .fit_times()
        .iter()
        .map(|d| d.as_secs_f64().max(1e-9))
        .collect();

    let (scores, pred_report) = clf
        .decision_function_observed(&split.x_test, &suod::observe::noop())
        .expect("claims scoring");
    let pred_times = pred_report.model_times;
    let pred_costs: Vec<f64> = pred_times
        .iter()
        .map(|d| d.as_secs_f64().max(1e-9))
        .collect();

    let assignment_fit = if full {
        let tasks: Vec<_> = pool.iter().map(|s| s.task_descriptor()).collect();
        let predicted = AnalyticCostModel::new().predict_costs(&tasks, &meta);
        bps_schedule(&predicted, WORKERS, 1.0).expect("finite costs")
    } else {
        generic_schedule(pool.len(), WORKERS).expect("m,t >= 1")
    };
    let fit_makespan = simulate_makespan(&fit_costs, &assignment_fit)
        .expect("matching lengths")
        .makespan;
    let pred_makespan = simulate_makespan(&pred_costs, &assignment_fit)
        .expect("matching lengths")
        .makespan;

    let combined = suod_metrics::average(&scores).expect("non-empty scores");
    Outcome {
        fit_makespan,
        pred_makespan,
        roc: roc_auc(&split.y_test, &combined).unwrap_or(0.5),
        pan: precision_at_n(&split.y_test, &combined, None).unwrap_or(0.0),
    }
}

fn main() {
    let scale = Scale::from_args();
    let n_claims = scale.pick(2_000usize, 12_000, PAPER_N_CLAIMS);
    let mut csv = CsvSink::create("iqvia_case", "setting,fit_s,pred_s,roc,p_at_n");

    println!("IQVIA claims case: {n_claims} claims, {WORKERS} (simulated) workers");
    let ds = generate_claims(&ClaimsConfig {
        n_claims,
        fraud_rate: PAPER_FRAUD_RATE,
        seed: 2021,
    })
    .expect("valid claims config");
    // The paper uses 74,220 train / 49,500 validation: a 60/40 split.
    let split = train_test_split(&ds, 0.4, 2021).expect("valid split");
    println!(
        "train {} / validation {} ({} features, {:.2}% fraud)\n",
        split.x_train.nrows(),
        split.x_test.nrows(),
        ds.n_features(),
        100.0 * ds.contamination()
    );

    let baseline = run(false, &split, 9);
    let suod_run = run(true, &split, 9);

    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>8}",
        "setting", "fit(s)", "pred(s)", "ROC", "P@N"
    );
    for (name, o) in [("baseline", &baseline), ("suod", &suod_run)] {
        println!(
            "{name:<10} {:>10.3} {:>10.3} {:>8.4} {:>8.4}",
            o.fit_makespan, o.pred_makespan, o.roc, o.pan
        );
        csv.row(&format!(
            "{name},{:.6},{:.6},{:.4},{:.4}",
            o.fit_makespan, o.pred_makespan, o.roc, o.pan
        ));
    }
    let fit_redu =
        100.0 * (baseline.fit_makespan - suod_run.fit_makespan) / baseline.fit_makespan.max(1e-12);
    let pred_redu = 100.0 * (baseline.pred_makespan - suod_run.pred_makespan)
        / baseline.pred_makespan.max(1e-12);
    println!("\nfit time reduction : {fit_redu:.2}%   (paper: 32.57%)");
    println!("pred time reduction: {pred_redu:.2}%   (paper: 24.40%)");
    println!(
        "ROC change         : {:+.2}%   (paper: +3.59%)",
        100.0 * (suod_run.roc - baseline.roc) / baseline.roc.max(1e-12)
    );
    println!(
        "P@N change         : {:+.2}%   (paper: +7.46%)",
        100.0 * (suod_run.pan - baseline.pan) / baseline.pan.max(1e-12)
    );
    println!("wrote {}", csv.path().display());
}
