//! Property-based tests for metrics.

use proptest::prelude::*;
use suod_linalg::Matrix;
use suod_metrics::{average, maximization, precision_at_n, roc_auc, spearman};

fn labeled_scores() -> impl Strategy<Value = (Vec<i32>, Vec<f64>)> {
    (2usize..80).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..2i32, n),
            proptest::collection::vec(-1e3f64..1e3, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn auc_in_unit_interval((labels, scores) in labeled_scores()) {
        if let Ok(auc) = roc_auc(&labels, &scores) {
            prop_assert!((0.0..=1.0).contains(&auc));
        }
    }

    #[test]
    fn auc_complement_under_negation((labels, scores) in labeled_scores()) {
        if let Ok(auc) = roc_auc(&labels, &scores) {
            let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
            let auc_neg = roc_auc(&labels, &neg).unwrap();
            prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn auc_complement_under_label_flip((labels, scores) in labeled_scores()) {
        if let Ok(auc) = roc_auc(&labels, &scores) {
            let flipped: Vec<i32> = labels.iter().map(|&l| 1 - l).collect();
            let auc_f = roc_auc(&flipped, &scores).unwrap();
            prop_assert!((auc + auc_f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn precision_bounded((labels, scores) in labeled_scores()) {
        if let Ok(p) = precision_at_n(&labels, &scores, None) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn spearman_bounded(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..50),
    ) {
        let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        if let Ok(r) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn spearman_self_is_one(x in proptest::collection::vec(-1e3f64..1e3, 3..50)) {
        if let Ok(r) = spearman(&x, &x) {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_dominates_average(
        rows in 2usize..20,
        cols in 1usize..8,
        seed in proptest::collection::vec(-1e2f64..1e2, 160),
    ) {
        let data: Vec<f64> = seed.iter().cycle().take(rows * cols).copied().collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let avg = average(&m).unwrap();
        let mx = maximization(&m).unwrap();
        for (a, x) in avg.iter().zip(&mx) {
            prop_assert!(x + 1e-9 >= *a);
        }
    }
}
