//! Trace exporters: the stable `suod-trace/1` JSON schema and the Chrome
//! `trace_event` format.
//!
//! [`to_json`] / [`from_json`] round-trip losslessly — the system tests
//! and the `suod-cli trace` subcommand validate every export by parsing
//! it back and comparing [`Trace`] equality. [`to_chrome_trace`] produces
//! a JSON object loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>: spans become complete (`ph:"X"`) events with
//! worker ids as `tid`s and counters become `ph:"C"` counter tracks.

use crate::json::{self, write_escaped, Value};
use crate::recording::{HistogramRecord, SpanRecord, Trace, HISTOGRAM_BUCKETS};
use crate::{Counter, Stage};
use std::fmt::Write as _;

/// Identifier embedded in every export of the current schema.
pub const SCHEMA: &str = "suod-trace/1";

fn write_opt_usize(out: &mut String, v: Option<usize>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Serializes `trace` to the stable `suod-trace/1` JSON schema.
///
/// Layout: `{"schema", "spans": [...], "counters": [...],
/// "histograms": [...]}` with spans in trace order, counters in
/// [`crate::COUNTERS`] order (each carrying its `deterministic` flag),
/// and per-stage latency histograms.
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.spans().len() * 96);
    out.push_str("{\n  \"schema\": ");
    write_escaped(&mut out, SCHEMA);
    out.push_str(",\n  \"spans\": [");
    for (i, s) in trace.spans().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(out, "    {{\"id\": {}, \"stage\": ", s.id);
        write_escaped(&mut out, s.stage.name());
        out.push_str(", \"model\": ");
        write_opt_usize(&mut out, s.model);
        out.push_str(", \"task\": ");
        write_opt_usize(&mut out, s.task);
        out.push_str(", \"worker\": ");
        write_opt_usize(&mut out, s.worker);
        let _ = write!(
            out,
            ", \"start_us\": {}, \"dur_us\": {}}}",
            s.start_us, s.dur_us
        );
    }
    out.push_str("\n  ],\n  \"counters\": [");
    let mut first = true;
    for (c, v) in trace.counters() {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("    {\"name\": ");
        write_escaped(&mut out, c.name());
        let _ = write!(
            out,
            ", \"value\": {v}, \"deterministic\": {}}}",
            c.is_deterministic()
        );
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, h) in trace.histograms().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"stage\": ");
        write_escaped(&mut out, h.stage.name());
        let _ = write!(
            out,
            ", \"count\": {}, \"total_us\": {}, \"buckets\": [",
            h.count, h.total_us
        );
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// An export validation failure (parse error or schema violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn field<'a>(v: &'a Value, ctx: &str, key: &str) -> Result<&'a Value, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing field \"{key}\"")))
}

fn u64_field(v: &Value, ctx: &str, key: &str) -> Result<u64, SchemaError> {
    field(v, ctx, key)?
        .as_u64()
        .ok_or_else(|| SchemaError(format!("{ctx}: \"{key}\" must be a non-negative integer")))
}

fn opt_usize_field(v: &Value, ctx: &str, key: &str) -> Result<Option<usize>, SchemaError> {
    match field(v, ctx, key)? {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| SchemaError(format!("{ctx}: \"{key}\" must be null or an integer"))),
    }
}

/// Parses a `suod-trace/1` JSON document back into a [`Trace`],
/// validating the schema along the way. `to_json` → `from_json` is
/// lossless: the result compares equal to the original trace.
pub fn from_json(input: &str) -> Result<Trace, SchemaError> {
    let doc = json::parse(input).map_err(|e| SchemaError(e.to_string()))?;
    let schema = field(&doc, "document", "schema")?
        .as_str()
        .ok_or_else(|| SchemaError("document: \"schema\" must be a string".into()))?;
    if schema != SCHEMA {
        return Err(SchemaError(format!(
            "unsupported schema \"{schema}\" (expected \"{SCHEMA}\")"
        )));
    }

    let mut spans = Vec::new();
    for (i, s) in field(&doc, "document", "spans")?
        .as_array()
        .ok_or_else(|| SchemaError("document: \"spans\" must be an array".into()))?
        .iter()
        .enumerate()
    {
        let ctx = format!("spans[{i}]");
        let stage_name = field(s, &ctx, "stage")?
            .as_str()
            .ok_or_else(|| SchemaError(format!("{ctx}: \"stage\" must be a string")))?;
        let stage = Stage::from_name(stage_name)
            .ok_or_else(|| SchemaError(format!("{ctx}: unknown stage \"{stage_name}\"")))?;
        spans.push(SpanRecord {
            id: u64_field(s, &ctx, "id")?,
            stage,
            model: opt_usize_field(s, &ctx, "model")?,
            task: opt_usize_field(s, &ctx, "task")?,
            worker: opt_usize_field(s, &ctx, "worker")?,
            start_us: u64_field(s, &ctx, "start_us")?,
            dur_us: u64_field(s, &ctx, "dur_us")?,
        });
    }

    let mut counters = vec![0u64; crate::COUNTERS.len()];
    for (i, c) in field(&doc, "document", "counters")?
        .as_array()
        .ok_or_else(|| SchemaError("document: \"counters\" must be an array".into()))?
        .iter()
        .enumerate()
    {
        let ctx = format!("counters[{i}]");
        let name = field(c, &ctx, "name")?
            .as_str()
            .ok_or_else(|| SchemaError(format!("{ctx}: \"name\" must be a string")))?;
        let counter = Counter::from_name(name)
            .ok_or_else(|| SchemaError(format!("{ctx}: unknown counter \"{name}\"")))?;
        let det = field(c, &ctx, "deterministic")?
            .as_bool()
            .ok_or_else(|| SchemaError(format!("{ctx}: \"deterministic\" must be a bool")))?;
        if det != counter.is_deterministic() {
            return Err(SchemaError(format!(
                "{ctx}: \"deterministic\" flag disagrees with counter \"{name}\""
            )));
        }
        let idx = crate::COUNTERS.iter().position(|&k| k == counter).unwrap();
        counters[idx] = u64_field(c, &ctx, "value")?;
    }

    let mut histograms = Vec::new();
    for (i, h) in field(&doc, "document", "histograms")?
        .as_array()
        .ok_or_else(|| SchemaError("document: \"histograms\" must be an array".into()))?
        .iter()
        .enumerate()
    {
        let ctx = format!("histograms[{i}]");
        let stage_name = field(h, &ctx, "stage")?
            .as_str()
            .ok_or_else(|| SchemaError(format!("{ctx}: \"stage\" must be a string")))?;
        let stage = Stage::from_name(stage_name)
            .ok_or_else(|| SchemaError(format!("{ctx}: unknown stage \"{stage_name}\"")))?;
        let buckets_val = field(h, &ctx, "buckets")?
            .as_array()
            .ok_or_else(|| SchemaError(format!("{ctx}: \"buckets\" must be an array")))?;
        if buckets_val.len() != HISTOGRAM_BUCKETS {
            return Err(SchemaError(format!(
                "{ctx}: expected {HISTOGRAM_BUCKETS} buckets, got {}",
                buckets_val.len()
            )));
        }
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
        for (j, b) in buckets_val.iter().enumerate() {
            buckets.push(b.as_u64().ok_or_else(|| {
                SchemaError(format!(
                    "{ctx}: buckets[{j}] must be a non-negative integer"
                ))
            })?);
        }
        let count = u64_field(h, &ctx, "count")?;
        if buckets.iter().sum::<u64>() != count {
            return Err(SchemaError(format!(
                "{ctx}: bucket sum disagrees with \"count\""
            )));
        }
        histograms.push(HistogramRecord {
            stage,
            buckets,
            count,
            total_us: u64_field(h, &ctx, "total_us")?,
        });
    }

    Ok(Trace::from_parts(spans, counters, histograms))
}

/// Serializes `trace` to the Chrome `trace_event` JSON format.
///
/// Spans become complete events (`ph:"X"`, `ts`/`dur` in µs) with the
/// worker id as `tid` (spans without a worker go to tid 0); model/task
/// attribution lands in `args`. Counters become `ph:"C"` counter tracks.
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.spans().len() * 128);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    for s in trace.spans() {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("  {\"name\": ");
        write_escaped(&mut out, s.stage.name());
        let _ = write!(
            out,
            ", \"cat\": \"suod\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}",
            s.start_us,
            s.dur_us,
            s.worker.map_or(0, |w| w + 1)
        );
        let _ = write!(out, ", \"args\": {{\"id\": {}", s.id);
        if let Some(m) = s.model {
            let _ = write!(out, ", \"model\": {m}");
        }
        if let Some(t) = s.task {
            let _ = write!(out, ", \"task\": {t}");
        }
        out.push_str("}}");
    }
    let end_ts = trace
        .spans()
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for (c, v) in trace.counters() {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("  {\"name\": ");
        write_escaped(&mut out, c.name());
        let _ = write!(
            out,
            ", \"cat\": \"suod\", \"ph\": \"C\", \"ts\": {end_ts}, \"pid\": 1, \"args\": {{\"value\": {v}}}}}"
        );
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Observer, RecordingObserver, SpanAttrs};

    fn sample_trace() -> Trace {
        let rec = RecordingObserver::new();
        let fit = rec.span_begin(Stage::Fit, SpanAttrs::none());
        let m0 = rec.span_begin(
            Stage::ModelFit,
            SpanAttrs::model(0).with_task(0).on_worker(2),
        );
        rec.counter(Counter::CacheMiss, 1);
        rec.span_end(m0);
        let m1 = rec.span_begin(Stage::ModelFit, SpanAttrs::model(1).with_task(1));
        rec.counter(Counter::CacheHit, 1);
        rec.counter(Counter::Steal, 3);
        rec.span_end(m1);
        rec.span_end(fit);
        rec.trace()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let trace = sample_trace();
        let exported = to_json(&trace);
        let parsed = from_json(&exported).expect("export must satisfy its own schema");
        assert_eq!(parsed, trace);
        // And re-export is byte-stable.
        assert_eq!(to_json(&parsed), exported);
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err());
        let wrong_schema =
            r#"{"schema": "suod-trace/99", "spans": [], "counters": [], "histograms": []}"#;
        assert!(from_json(wrong_schema)
            .unwrap_err()
            .0
            .contains("unsupported schema"));
        let bad_stage = r#"{"schema": "suod-trace/1", "spans": [
            {"id": 1, "stage": "bogus", "model": null, "task": null, "worker": null, "start_us": 0, "dur_us": 0}
        ], "counters": [], "histograms": []}"#;
        assert!(from_json(bad_stage)
            .unwrap_err()
            .0
            .contains("unknown stage"));
        let bad_flag = r#"{"schema": "suod-trace/1", "spans": [], "counters": [
            {"name": "steal", "value": 1, "deterministic": true}
        ], "histograms": []}"#;
        assert!(from_json(bad_flag).unwrap_err().0.contains("disagrees"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = RecordingObserver::new().trace();
        assert_eq!(from_json(&to_json(&trace)).unwrap(), trace);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let trace = sample_trace();
        let chrome = to_chrome_trace(&trace);
        let doc = crate::json::parse(&chrome).expect("chrome export must be valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        // 3 spans + one counter track per counter.
        assert_eq!(events.len(), 3 + crate::COUNTERS.len());
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(span_events.len(), 3);
        assert_eq!(
            span_events[0].get("name").and_then(Value::as_str),
            Some("fit")
        );
        // Worker 2 lands on tid 3 (tid 0 is reserved for unattributed spans).
        assert!(span_events
            .iter()
            .any(|e| e.get("tid").and_then(Value::as_u64) == Some(3)));
        let counter_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counter_events.len(), crate::COUNTERS.len());
    }
}
