//! Serving: a fault-tolerant online scoring service over a fitted pool.
//!
//! Fits a small heterogeneous ensemble that includes one deliberately
//! chaotic model (clean at fit, panics at predict), starts the scoring
//! service, pushes concurrent score requests at it, and prints the
//! degradation diagnostics: the chaotic model faults, burns through its
//! failure budget, gets quarantined, and every request still gets
//! survivor-only scores.
//!
//! Run with:
//! ```sh
//! cargo run --release -p suod-serve --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;
use suod::prelude::*;
use suod_datasets::{registry, train_test_split};
use suod_serve::{ScoreOutcome, ScoreService, ServeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = registry::load("cardio", 42)?;
    let split = train_test_split(&ds, 0.4, 42)?;
    println!(
        "dataset: {} ({} train / {} test rows, {} features)",
        ds.name,
        split.x_train.nrows(),
        split.x_test.nrows(),
        ds.n_features(),
    );

    // A heterogeneous pool with one saboteur: ChaosMode::PanicOnPredict
    // fits cleanly, then panics on every decision_function call.
    let base_estimators = vec![
        ModelSpec::Knn {
            n_neighbors: 10,
            method: KnnMethod::Largest,
        },
        ModelSpec::Lof {
            n_neighbors: 20,
            metric: Metric::Euclidean,
        },
        ModelSpec::Hbos {
            n_bins: 10,
            tolerance: 0.3,
        },
        ModelSpec::IForest {
            n_estimators: 30,
            max_features: 1.0,
        },
        ModelSpec::Chaos {
            mode: ChaosMode::PanicOnPredict,
            n_neighbors: 5,
        },
    ];
    let mut clf = Suod::builder()
        .base_estimators(base_estimators)
        .n_workers(2)
        .seed(7)
        .build()?;
    clf.fit(&split.x_train)?;
    println!("fitted {} models", clf.surviving_models()?.len());

    // The saboteur's panics are caught at the task boundary; silence the
    // default hook so they don't drown the service output.
    std::panic::set_hook(Box::new(|_| {}));

    // Small batches so the saboteur faults repeatedly: it burns through
    // its 2-fault budget and is quarantined; serving continues as long
    // as 3 of the 5 models stay healthy.
    let config = ServeConfig {
        queue_capacity: 32,
        max_batch_rows: 32,
        batch_window: Duration::from_millis(1),
        predict_failure_budget: 2,
        min_healthy_fraction: 0.6,
        ..ServeConfig::default()
    };
    let mut service = ScoreService::new(clf, config)?;
    service.spawn_dispatcher();
    let service = Arc::new(service);

    // Concurrent clients: each scores a slice of the test split.
    let rows_per_request = 16usize;
    let n_requests = (split.x_test.nrows() / rows_per_request).min(12);
    let mut clients = Vec::new();
    for r in 0..n_requests {
        let service = Arc::clone(&service);
        let rows: Vec<Vec<f64>> = (r * rows_per_request..(r + 1) * rows_per_request)
            .map(|i| split.x_test.row(i).to_vec())
            .collect();
        clients.push(std::thread::spawn(move || {
            let query = suod_linalg::Matrix::from_rows(&rows).expect("rectangular request");
            let ticket = loop {
                match service.submit(query.clone()) {
                    Ok(t) => break t,
                    Err(suod_serve::SubmitError::Busy { .. }) => {
                        // Backpressure: the queue is full — back off.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("submit failed: {e}"),
                }
            };
            (r, ticket.wait())
        }));
    }

    let mut scored = 0usize;
    for client in clients {
        let (r, outcome) = client.join().expect("client thread");
        match outcome {
            ScoreOutcome::Scored(batch) => {
                scored += 1;
                if !batch.faults.is_empty() {
                    println!(
                        "request {r:2}: scored degraded ({}/{} models healthy): {}",
                        batch.healthy_models,
                        batch.total_models,
                        batch
                            .faults
                            .iter()
                            .map(|fault| {
                                format!(
                                    "{}#{}{}",
                                    fault.name,
                                    fault.pool_index,
                                    if fault.quarantined {
                                        " [quarantined]"
                                    } else {
                                        ""
                                    }
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                } else {
                    println!(
                        "request {r:2}: scored clean, top score {:.3}",
                        batch
                            .combined
                            .iter()
                            .cloned()
                            .fold(f64::NEG_INFINITY, f64::max)
                    );
                }
            }
            other => println!("request {r:2}: {other:?}"),
        }
    }

    println!("\n--- service report ---");
    println!("{}", service.report());
    println!("active models after chaos: {:?}", service.active_models());
    assert_eq!(scored, n_requests, "every request must be answered");
    Ok(())
}
