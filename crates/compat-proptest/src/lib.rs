#![warn(missing_docs)]

//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates-registry access, so property tests
//! run on a small, dependency-free re-implementation of the pieces the
//! test suites call: the [`proptest!`] macro, range/tuple/`vec`
//! strategies, `prop_map`/`prop_flat_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Unlike upstream proptest there is **no input
//! shrinking** — a failing case reports the generated inputs via the
//! assertion panic message instead.

/// Deterministic case-generation RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th generated test case (stable across runs).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x5EED_0BAD_F00D_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample empty range");
        self.next_u64() % n
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the `with_cases` knob.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Runs each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

/// Strategy combinators and range/tuple implementations.
pub mod strategy {
    use crate::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` returns for it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    let span = (e as i128 - s as i128) as u64 + 1;
                    (s as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            *self.start() + rng.next_f64() * (*self.end() - *self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((*self.end() - *self.start()) as u64 + 1) as usize
        }
    }

    /// Strategy for vectors of `element` values with lengths drawn from
    /// `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy value (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(case as u64);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unused_mut)]
                let mut case_fn = move || -> ::core::result::Result<(), ()> {
                    $body
                    Ok(())
                };
                let _ = case_fn();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..8).prop_flat_map(|n| ((n..n + 1), (-1.0f64..1.0)).prop_map(|(a, b)| (a, b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_in_bounds(n in 3usize..10, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        fn vec_lengths(v in crate::collection::vec(-1.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        fn flat_map_composes((n, x) in pair()) {
            prop_assert!((1..9).contains(&n));
            prop_assert!(x.abs() <= 1.0);
        }

        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        fn bools_vary(b in crate::bool::ANY) {
            let _ = b;
        }
    }
}
